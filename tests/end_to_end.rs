//! Cross-crate integration tests: whole simulations through the public
//! API, checking the paper's qualitative results hold end-to-end.

use picl_repro::sim::{run_experiments, Experiment, SchemeKind, Simulation, WorkloadSpec};
use picl_repro::trace::mixes::table_v_mixes;
use picl_repro::trace::spec::SpecBenchmark;
use picl_repro::types::SystemConfig;

fn quick_cfg(epoch: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = epoch;
    cfg
}

fn run(
    scheme: SchemeKind,
    bench: SpecBenchmark,
    epoch: u64,
    budget: u64,
) -> picl_repro::sim::RunReport {
    Simulation::builder(quick_cfg(epoch))
        .scheme(scheme)
        .workload(&[bench])
        .instructions_per_core(budget)
        .seed(42)
        .run()
        .expect("valid configuration")
}

/// The headline result: on a memory-bound workload PiCL stays within a few
/// percent of Ideal while every prior-work scheme costs noticeably more.
#[test]
fn picl_beats_prior_work_on_memory_bound_workload() {
    let epoch = 1_500_000;
    let budget = 4_500_000;
    let ideal = run(SchemeKind::Ideal, SpecBenchmark::Mcf, epoch, budget);
    let picl = run(SchemeKind::Picl, SpecBenchmark::Mcf, epoch, budget);
    let frm = run(SchemeKind::Frm, SpecBenchmark::Mcf, epoch, budget);
    let journaling = run(SchemeKind::Journaling, SpecBenchmark::Mcf, epoch, budget);

    let picl_overhead = picl.normalized_to(&ideal);
    let frm_overhead = frm.normalized_to(&ideal);
    let journaling_overhead = journaling.normalized_to(&ideal);

    assert!(picl_overhead < 1.10, "PiCL overhead {picl_overhead}");
    assert!(
        frm_overhead > picl_overhead + 0.05,
        "FRM {frm_overhead} vs PiCL {picl_overhead}"
    );
    assert!(
        journaling_overhead > picl_overhead + 0.2,
        "Journaling {journaling_overhead} vs PiCL {picl_overhead}"
    );
}

/// Compute-bound workloads show little overhead for everyone — the write
/// set fits the tables and the flush is small.
#[test]
fn compute_bound_workloads_are_cheap_for_all_schemes() {
    // Near-paper epoch length: short epochs would inflate flush overhead.
    let epoch = 10_000_000;
    let budget = 20_000_000;
    let ideal = run(SchemeKind::Ideal, SpecBenchmark::Gamess, epoch, budget);
    for kind in [SchemeKind::Journaling, SchemeKind::Shadow, SchemeKind::Picl] {
        let r = run(kind, SpecBenchmark::Gamess, epoch, budget);
        let overhead = r.normalized_to(&ideal);
        let limit = if kind == SchemeKind::Picl { 1.05 } else { 1.45 };
        assert!(
            overhead < limit,
            "{} overhead {overhead} on compute-bound gamess",
            kind.name()
        );
        assert_eq!(r.forced_commits, 0, "{}", kind.name());
    }
}

/// Fig. 11's mechanism: redo-based schemes commit early under large write
/// sets; undo-based schemes never do.
#[test]
fn translation_table_overflow_forces_early_commits() {
    let epoch = 3_000_000;
    let budget = 6_000_000;
    let journaling = run(SchemeKind::Journaling, SpecBenchmark::Mcf, epoch, budget);
    let picl = run(SchemeKind::Picl, SpecBenchmark::Mcf, epoch, budget);
    let frm = run(SchemeKind::Frm, SpecBenchmark::Mcf, epoch, budget);

    assert!(
        journaling.forced_commits > 10,
        "expected heavy forced commits, saw {}",
        journaling.forced_commits
    );
    assert_eq!(picl.forced_commits, 0);
    assert_eq!(frm.forced_commits, 0);
    assert!(journaling.commits > 10 * picl.commits);
}

/// PiCL never stalls; every prior-work scheme pays synchronous flushes.
#[test]
fn only_picl_is_stall_free() {
    let epoch = 1_000_000;
    let budget = 3_000_000;
    for kind in [
        SchemeKind::Journaling,
        SchemeKind::Shadow,
        SchemeKind::Frm,
        SchemeKind::ThyNvm,
    ] {
        let r = run(kind, SpecBenchmark::Bzip2, epoch, budget);
        assert!(r.stall_cycles > 0, "{} should stall", kind.name());
    }
    let picl = run(SchemeKind::Picl, SpecBenchmark::Bzip2, epoch, budget);
    assert_eq!(picl.stall_cycles, 0);
}

/// Shadow paging's page granularity beats Journaling on streaming writes
/// and loses on scattered ones (the paper's astar-vs-sequential contrast).
#[test]
fn page_granularity_tradeoff() {
    // The per-epoch dirty set must exceed the LLC so dirty lines evict
    // mid-epoch and exercise the translation tables.
    let epoch = 3_000_000;
    let budget = 9_000_000;
    // Streaming: libquantum walks lines sequentially; one page entry
    // covers 64 lines, so Shadow needs far fewer forced commits.
    let j_stream = run(
        SchemeKind::Journaling,
        SpecBenchmark::Libquantum,
        epoch,
        budget,
    );
    let s_stream = run(SchemeKind::Shadow, SpecBenchmark::Libquantum, epoch, budget);
    assert!(
        s_stream.forced_commits < j_stream.forced_commits,
        "Shadow {} vs Journaling {} forced commits on streaming",
        s_stream.forced_commits,
        j_stream.forced_commits
    );
    let ideal = run(SchemeKind::Ideal, SpecBenchmark::Libquantum, epoch, budget);
    assert!(s_stream.normalized_to(&ideal) < j_stream.normalized_to(&ideal));
}

/// Identical seeds reproduce identical results through the whole stack.
#[test]
fn end_to_end_determinism() {
    let a = run(SchemeKind::Picl, SpecBenchmark::Gcc, 1_000_000, 2_000_000);
    let b = run(SchemeKind::Picl, SpecBenchmark::Gcc, 1_000_000, 2_000_000);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(
        a.scheme_stats.log_bytes_written,
        b.scheme_stats.log_bytes_written
    );
    assert_eq!(a.nvm.total_ops(), b.nvm.total_ops());
}

/// An eight-core Table V mix runs end-to-end and PiCL still wins.
#[test]
fn multicore_mix_preserves_ordering() {
    let mixes = table_v_mixes();
    let mut experiments = Vec::new();
    for scheme in [SchemeKind::Ideal, SchemeKind::Picl, SchemeKind::Frm] {
        experiments.push(Experiment {
            cfg: quick_cfg(2_000_000),
            scheme,
            workload: WorkloadSpec::mix(&mixes[0]),
            instructions_per_core: 800_000,
            seed: 42,
            footprint_scale: 0.25,
        });
    }
    let reports = run_experiments(&experiments, 3);
    assert_eq!(reports[0].cores, 8);
    let picl = reports[1].normalized_to(&reports[0]);
    let frm = reports[2].normalized_to(&reports[0]);
    assert!(picl < frm, "PiCL {picl} vs FRM {frm} on W0");
}

/// Observed epoch length collapses for redo schemes at long epoch targets
/// (Fig. 14's mechanism) while PiCL sustains the full target.
#[test]
fn long_epoch_targets_collapse_for_redo_schemes() {
    let epoch = 20_000_000; // "long" relative to the write set
    let budget = 20_000_000;
    let j = run(
        SchemeKind::Journaling,
        SpecBenchmark::Omnetpp,
        epoch,
        budget,
    );
    let p = run(SchemeKind::Picl, SpecBenchmark::Omnetpp, epoch, budget);
    assert!(
        j.observed_epoch_len() < epoch as f64 / 4.0,
        "Journaling observed epoch {:.0}",
        j.observed_epoch_len()
    );
    assert!(
        p.observed_epoch_len() >= epoch as f64 * 0.9,
        "PiCL observed epoch {:.0}",
        p.observed_epoch_len()
    );
}
