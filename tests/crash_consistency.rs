//! Property-based crash-consistency tests: the reproduction's strongest
//! correctness evidence.
//!
//! For randomized workloads, crash points, scheme choices, and PiCL
//! parameters, a crash at *any* moment must recover main memory to exactly
//! the golden snapshot of the epoch the scheme claims — the invariant the
//! paper's FPGA prototype demonstrated with micro-benchmarks (§V).

use proptest::prelude::*;

use picl_repro::sim::{Machine, SchemeKind, Simulation, WorkloadSpec};
use picl_repro::trace::spec::SpecBenchmark;
use picl_repro::types::SystemConfig;

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Picl),
        Just(SchemeKind::Frm),
        Just(SchemeKind::Journaling),
        Just(SchemeKind::Shadow),
        Just(SchemeKind::ThyNvm),
    ]
}

fn bench_strategy() -> impl Strategy<Value = SpecBenchmark> {
    prop_oneof![
        Just(SpecBenchmark::Mcf),        // scattered writes
        Just(SpecBenchmark::Lbm),        // streaming writes
        Just(SpecBenchmark::Gamess),     // cache-resident
        Just(SpecBenchmark::Gcc),        // mixed
        Just(SpecBenchmark::Libquantum)  // sequential
    ]
}

fn machine(
    scheme: SchemeKind,
    bench: SpecBenchmark,
    epoch_len: u64,
    acs_gap: u64,
    seed: u64,
) -> Machine {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = epoch_len;
    cfg.epoch.acs_gap = acs_gap;
    Simulation::builder(cfg)
        .scheme(scheme)
        .workload_spec(WorkloadSpec::single(bench))
        .seed(seed)
        .footprint_scale(0.02) // small footprints -> high eviction churn
        .keep_snapshots(true)
        .into_machine()
        .expect("valid configuration")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash anywhere, with any scheme: recovery restores exactly the
    /// claimed checkpoint.
    #[test]
    fn any_scheme_recovers_exactly(
        scheme in scheme_strategy(),
        bench in bench_strategy(),
        epoch_len in 20_000u64..120_000,
        crash_after in 30_000u64..400_000,
        seed in 0u64..1_000,
    ) {
        let mut m = machine(scheme, bench, epoch_len, 3, seed);
        m.run(crash_after);
        let crash = m.crash();
        prop_assert_eq!(
            crash.consistent, Some(true),
            "{} on {} crashed at {} instr: mismatches {:?} (recovered to {})",
            scheme.name(), bench.name(), crash_after,
            crash.mismatches, crash.outcome.recovered_to
        );
    }

    /// PiCL specifically: every ACS-gap (including zero) recovers exactly,
    /// and the recovered epoch trails the last commit by at most the gap.
    #[test]
    fn picl_recovers_for_every_acs_gap(
        gap in 0u64..8,
        bench in bench_strategy(),
        crash_after in 50_000u64..300_000,
        seed in 0u64..1_000,
    ) {
        let mut m = machine(SchemeKind::Picl, bench, 30_000, gap, seed);
        m.run(crash_after);
        let committed = m.scheme().system_eid().raw() - 1;
        let crash = m.crash();
        prop_assert_eq!(crash.consistent, Some(true),
            "gap {} mismatches {:?}", gap, crash.mismatches);
        let recovered = crash.outcome.recovered_to.raw();
        prop_assert!(recovered + gap >= committed,
            "persistence lagged too far: recovered {} committed {}", recovered, committed);
    }

    /// Crash → recover → keep running → crash again: the second recovery
    /// must also be exact (recovery leaves durable state sound).
    #[test]
    fn double_crash_recovers_twice(
        scheme in scheme_strategy(),
        seed in 0u64..1_000,
    ) {
        let mut m = machine(scheme, SpecBenchmark::Gcc, 25_000, 2, seed);
        m.run(120_000);
        let first = m.crash();
        prop_assert_eq!(first.consistent, Some(true), "first crash {:?}", first.mismatches);
        // Execution resumes after recovery; run further and crash again.
        m.run(220_000);
        let second = m.crash();
        prop_assert_eq!(
            second.consistent, Some(true),
            "second crash: {} mismatches {:?} (recovered to {})",
            scheme.name(), second.mismatches, second.outcome.recovered_to
        );
        prop_assert!(second.outcome.recovered_to >= first.outcome.recovered_to);
    }
}

/// The unprotected baseline really is unprotected: under eviction pressure
/// a crash leaves memory matching no checkpoint (negative control for the
/// harness itself — if this fails, the consistency check is vacuous).
#[test]
fn ideal_nvm_corrupts_under_pressure() {
    let mut m = machine(SchemeKind::Ideal, SpecBenchmark::Mcf, 30_000, 3, 7);
    m.run(200_000);
    let crash = m.crash();
    assert_eq!(
        crash.consistent,
        Some(false),
        "Ideal NVM should not match the epoch-0 image after heavy writing"
    );
}
