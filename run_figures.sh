#!/bin/sh
# Regenerates every table and figure of the paper's evaluation.
# PICL_SCALE trades fidelity for time (1.0 = paper-faithful budgets).
set -e
SCALE="${PICL_SCALE:-1.0}"
export PICL_SCALE="$SCALE"
OUT="${1:-results}"
mkdir -p "$OUT"
for bin in table2_features table3_hw_overheads table4_config \
           fig09_single_core fig10_multicore fig11_commits fig12_iops \
           fig13_log_size fig14_long_epochs fig15_cache_sweep \
           fig16_nvm_latency recovery_latency ablation_picl; do
  echo "== $bin (PICL_SCALE=$SCALE) =="
  cargo run --release -q -p picl-bench --bin "$bin" > "$OUT/$bin.txt" 2>&1
  echo "   -> $OUT/$bin.txt"
done
