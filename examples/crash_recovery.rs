//! Crash recovery demo: the paper's doubly-linked-list corruption example.
//!
//! The introduction's motivating failure: appending to a doubly linked
//! list updates two pointers in *different* cache lines. If a power
//! failure lands after one pointer reached NVM but not the other, memory
//! is irreversibly corrupted. This example drives exactly that workload,
//! pulls the plug, and compares:
//!
//! * **Ideal NVM** (no consistency) — post-crash memory matches *no* epoch
//!   snapshot: the list is torn.
//! * **PiCL** — recovery replays the multi-undo log and memory matches the
//!   persisted checkpoint bit-for-bit.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use picl_repro::sim::{Machine, SchemeKind};
use picl_repro::trace::{AccessKind, TraceEvent, TraceSource};
use picl_repro::types::{Address, EpochId, Rng, SystemConfig};

/// A writer appending nodes to a doubly linked list, with enough random
/// read traffic to force dirty lines out to NVM mid-epoch (the hazard).
struct ListAppender {
    rng: Rng,
    next_node: u64,
    pending: Vec<TraceEvent>,
}

impl ListAppender {
    fn new(seed: u64) -> Self {
        ListAppender {
            rng: Rng::new(seed),
            next_node: 1,
            pending: Vec::new(),
        }
    }
}

impl TraceSource for ListAppender {
    fn next_event(&mut self) -> TraceEvent {
        if let Some(ev) = self.pending.pop() {
            return ev;
        }
        // One append = store the new node's line (prev/next pointers) and
        // store the old tail's line (its next pointer): two lines, one
        // logical operation that must be atomic across crashes.
        let node_line = |n: u64| Address::new((1_000_000 + n) * 64);
        let n = self.next_node;
        self.next_node += 1;
        self.pending.push(TraceEvent {
            gap_instructions: 8,
            kind: AccessKind::Store,
            addr: node_line(n - 1), // old tail's next pointer
        });
        // Interleave cache-thrashing reads so dirty lines evict to NVM at
        // unpredictable times.
        for _ in 0..6 {
            self.pending.push(TraceEvent {
                gap_instructions: 2,
                kind: AccessKind::Load,
                addr: Address::new(self.rng.below(1 << 24) * 64),
            });
        }
        TraceEvent {
            gap_instructions: 8,
            kind: AccessKind::Store,
            addr: node_line(n), // new node's pointers
        }
    }

    fn label(&self) -> &str {
        "list-appender"
    }
}

fn run_and_crash(kind: SchemeKind) {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = 50_000;
    let scheme = kind.build(&cfg);
    let mut machine = Machine::new(
        cfg,
        scheme,
        vec![Box::new(ListAppender::new(7))],
        "linked-list",
        true, // keep golden snapshots for the comparison
    );
    machine.run(400_000);

    println!("--- {} ---", kind.name());
    println!(
        "ran {} instructions, {} epochs committed; pulling the plug…",
        machine.instructions(),
        machine.scheme().system_eid().raw() - 1
    );
    let committed = machine.scheme().system_eid().raw() - 1;
    let crash = machine.crash();
    println!(
        "recovery: target {}, {} undo entries applied",
        crash.outcome.recovered_to, crash.outcome.entries_applied
    );
    match crash.consistent {
        Some(true) => println!(
            "memory matches the {} checkpoint exactly — the list is intact\n",
            crash.outcome.recovered_to
        ),
        _ => {
            // Show that *no* checkpoint matches: the list is torn.
            let matching = (0..=committed)
                .filter(|&e| {
                    machine
                        .snapshot(EpochId(e))
                        .map(|s| s.diff(machine.memory().state()).is_empty())
                        .unwrap_or(false)
                })
                .count();
            println!(
                "memory matches {} of {} checkpoints — the list is corrupted\n",
                matching,
                committed + 1
            );
        }
    }
}

fn main() {
    println!("Appending to a doubly linked list, then crashing mid-run.\n");
    run_and_crash(SchemeKind::Ideal);
    run_and_crash(SchemeKind::Picl);
}
