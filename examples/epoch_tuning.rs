//! Tuning PiCL's epoch length and ACS-gap: the performance ↔ durability
//! trade-off of §III and §IV-C.
//!
//! A longer ACS-gap defers persistence (better coalescing, but I/O writes
//! wait longer: checkpoint-persist latency = epoch length × gap); longer
//! epochs amortize boundary work but enlarge the undo log. This example
//! sweeps both knobs and also demonstrates the bulk-ACS extension that
//! releases pending I/O early.
//!
//! ```sh
//! cargo run --release --example epoch_tuning
//! ```

use picl_repro::core::os::IoBuffer;
use picl_repro::sim::{SchemeKind, Simulation};
use picl_repro::trace::spec::SpecBenchmark;
use picl_repro::types::stats::format_bytes;
use picl_repro::types::{EpochId, SystemConfig};

fn main() {
    let bench = SpecBenchmark::Gcc;
    let budget = 8_000_000u64;

    println!("PiCL tuning on {bench} ({budget} instructions)\n");
    println!(
        "{:<14}{:>9}{:>12}{:>14}{:>16}",
        "epoch(instr)", "acs-gap", "norm.", "log written", "persist-lag"
    );

    for epoch_len in [500_000u64, 1_000_000, 2_000_000] {
        for gap in [0u64, 1, 3, 7] {
            let mut cfg = SystemConfig::paper_single_core();
            cfg.epoch.epoch_len_instructions = epoch_len;
            cfg.epoch.acs_gap = gap;
            let ideal = Simulation::builder(cfg.clone())
                .scheme(SchemeKind::Ideal)
                .workload(&[bench])
                .instructions_per_core(budget)
                .run()
                .expect("valid configuration");
            let picl = Simulation::builder(cfg)
                .scheme(SchemeKind::Picl)
                .workload(&[bench])
                .instructions_per_core(budget)
                .run()
                .expect("valid configuration");
            println!(
                "{:<14}{:>9}{:>12.3}{:>14}{:>13.1} Mi",
                epoch_len,
                gap,
                picl.normalized_to(&ideal),
                format_bytes(picl.scheme_stats.log_bytes_written),
                // Persist latency in instructions: epoch length × (gap+1).
                (epoch_len * (gap + 1)) as f64 / 1e6
            );
        }
    }

    // I/O buffering: writes issued in epoch E release once E persists.
    println!("\nI/O write buffering at the OS (ACS-gap 3):");
    let mut io = IoBuffer::new();
    for (id, epoch) in [(1u64, 2u64), (2, 2), (3, 4), (4, 5)] {
        io.submit(id, EpochId(epoch));
    }
    println!(
        "  submitted 4 I/O writes across epochs 2..5; persisted = 1 → pending {}",
        io.pending()
    );
    let released = io.release_persisted(EpochId(2));
    println!(
        "  epoch 2 persists → released {:?}, pending {}",
        released.iter().map(|p| p.id).collect::<Vec<_>>(),
        io.pending()
    );
    let released = io.release_persisted(EpochId(5));
    println!(
        "  bulk ACS persists through epoch 5 → released {:?}, pending {}",
        released.iter().map(|p| p.id).collect::<Vec<_>>(),
        io.pending()
    );
}
