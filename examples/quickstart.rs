//! Quickstart: run PiCL on one workload and read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use picl_repro::sim::{SchemeKind, Simulation};
use picl_repro::trace::spec::SpecBenchmark;
use picl_repro::types::stats::format_bytes;
use picl_repro::types::SystemConfig;

fn main() {
    // Table IV's single-core system: 2 GHz in-order core, 32 KB L1,
    // 256 KB L2, 2 MB LLC, closed-page NVM with 128/368 ns row misses,
    // 30 M-instruction epochs, ACS-gap 3.
    let mut cfg = SystemConfig::paper_single_core();
    // Keep the demo snappy: 2 M-instruction epochs, 10 M instructions.
    cfg.epoch.epoch_len_instructions = 2_000_000;

    let report = Simulation::builder(cfg)
        .scheme(SchemeKind::Picl)
        .workload(&[SpecBenchmark::Bzip2])
        .instructions_per_core(10_000_000)
        .seed(42)
        .run()
        .expect("paper configuration is valid");

    println!("{report}");
    println!(
        "undo log: {} live of {} written, {} buffer flushes ({} forced by bloom hits)",
        format_bytes(report.scheme_stats.log_bytes_live),
        format_bytes(report.scheme_stats.log_bytes_written),
        report.scheme_stats.buffer_flushes,
        report.scheme_stats.buffer_flushes_forced,
    );
    println!(
        "epochs committed: {} (zero stall cycles: {})",
        report.commits,
        report.stall_cycles == 0
    );
}
