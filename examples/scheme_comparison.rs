//! Compare all six consistency schemes on one workload: execution time,
//! stalls, commits, and NVM traffic mix.
//!
//! ```sh
//! cargo run --release --example scheme_comparison [benchmark]
//! ```
//!
//! Pass any benchmark name from the paper's figures (default: `mcf`).

use picl_repro::nvm::TrafficCategory;
use picl_repro::sim::{SchemeKind, Simulation};
use picl_repro::trace::spec::SpecBenchmark;
use picl_repro::types::SystemConfig;

fn main() {
    let bench: SpecBenchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mcf".to_owned())
        .parse()
        .expect("benchmark name from the paper's figures (e.g. mcf, lbm, povray)");

    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = 3_000_000;
    let budget = 9_000_000;

    println!("scheme comparison on {bench} ({budget} instructions, 3 M-instr epochs)\n");
    println!(
        "{:<12}{:>8}{:>10}{:>9}{:>12}{:>10}{:>10}",
        "scheme", "norm.", "commits", "forced", "stall-cyc", "seq-log", "rnd-log"
    );

    let mut baseline_cycles = None;
    for kind in SchemeKind::ALL {
        let report = Simulation::builder(cfg.clone())
            .scheme(kind)
            .workload(&[bench])
            .instructions_per_core(budget)
            .seed(42)
            .run()
            .expect("valid configuration");
        let base = *baseline_cycles.get_or_insert(report.total_cycles.raw());
        println!(
            "{:<12}{:>8.3}{:>10}{:>9}{:>12}{:>10}{:>10}",
            report.scheme,
            report.total_cycles.raw() as f64 / base as f64,
            report.commits,
            report.forced_commits,
            report.stall_cycles,
            report
                .nvm
                .ops_in_category(TrafficCategory::SequentialLogging),
            report.nvm.ops_in_category(TrafficCategory::RandomLogging),
        );
    }
    println!("\nnorm. = execution time relative to Ideal NVM (lower is better)");
}
