//! Property: kill the store at *every* persist-op boundary of a seeded
//! workload; every death must recover to a prefix-consistent epoch
//! snapshot within the in-order-window RPO bound.
//!
//! "Prefix-consistent epoch snapshot" is the paper's §II guarantee made
//! executable: the recovered KV contents must equal the in-memory model
//! after exactly `recovered_to × ops_per_epoch` operations — never a torn
//! mid-epoch state, never a reordering. The RPO bound is §IV-A's window:
//! `recovered_to >= last observed commit - window`.

use std::sync::Arc;

use picl_store::{
    apply_to_model, generate, layout::Geometry, model_after, CountingMedium, EngineConfig, Kv,
    Model, Op, PersistOps, StoreError,
};
use picl_telemetry::Telemetry;
use proptest::prelude::*;

const LINES: u32 = 64;
const LOG_BLOCKS: u32 = 32;
const KEY_SPACE: u64 = 12;

fn cfg(window: u64, sabotage: bool) -> EngineConfig {
    EngineConfig {
        lines: LINES,
        log_blocks: LOG_BLOCKS,
        window,
        persist_stall_ms: 0,
        sabotage_skip_drain: sabotage,
    }
}

fn medium() -> Arc<CountingMedium> {
    let g = Geometry {
        lines: LINES,
        log_blocks: LOG_BLOCKS,
    };
    Arc::new(CountingMedium::new(g.total_len()))
}

/// Runs the seeded workload until the medium dies (or ops run out).
/// Returns `(ops completed, last commit the caller observed)`.
fn run_until_death(kv: &mut Kv, ops: &[Op]) -> (u64, u64) {
    let mut completed = 0u64;
    let mut observed_commit = 0u64;
    for op in ops {
        let result = match op {
            Op::Put(k, v) => kv.put(k, v),
            Op::Delete(k) => kv.delete(k).map(|(_, c)| c),
            Op::Get(k) => kv.get(k).map(|_| None),
        };
        match result {
            Ok(Some(eid)) => {
                observed_commit = eid;
                completed += 1;
            }
            Ok(None) => completed += 1,
            Err(_) => break,
        }
    }
    (completed, observed_commit)
}

/// One full kill-and-recover trial at medium-op index `kill_at`
/// (`None` = let the run finish cleanly). Returns an error message on
/// any oracle violation.
fn trial(
    seed: u64,
    count: u64,
    ops_per_epoch: u64,
    window: u64,
    kill_at: Option<u64>,
    sabotage: bool,
) -> Result<(), String> {
    let ops = generate(seed, count, KEY_SPACE);
    let m = medium();
    let (mut kv, _) = Kv::open(
        Arc::clone(&m) as _,
        cfg(window, sabotage),
        Telemetry::off(),
        ops_per_epoch,
    )
    .map_err(|e| format!("open: {e}"))?;
    if let Some(op) = kill_at {
        m.kill_at_op(op);
    }
    let (_, observed_commit) = run_until_death(&mut kv, &ops);
    // The armed kill may fire during close()'s backlog drain — that is a
    // crash-at-shutdown, not a harness error.
    match kv.close() {
        Ok(_) => {}
        Err(_) if m.is_dead() => {}
        Err(e) => return Err(format!("clean close: {e}")),
    }
    let survivor = Arc::new(CountingMedium::from_image(m.surviving_image()));
    let (kv, report) = Kv::open(
        survivor,
        cfg(window, false),
        Telemetry::off(),
        ops_per_epoch,
    )
    .map_err(|e| format!("recovery open: {e}"))?;
    let recovered_to = report.recovered_to;

    // RPO: at most `window` observed-committed epochs may be lost.
    if recovered_to + window < observed_commit {
        return Err(format!(
            "RPO violated: recovered to {recovered_to}, observed commit {observed_commit}, window {window}"
        ));
    }
    // Prefix consistency: recovered contents == the model at exactly the
    // recovered epoch boundary.
    let expect: Model = model_after(seed, recovered_to * ops_per_epoch, KEY_SPACE);
    let got = kv.scan().map_err(|e| format!("scan: {e}"))?;
    let want: Vec<(Vec<u8>, Vec<u8>)> = expect.into_iter().collect();
    if got != want {
        return Err(format!(
            "state mismatch at recovered epoch {recovered_to} (kill_at {kill_at:?}): {} live keys, expected {}",
            got.len(),
            want.len()
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every persist-op boundary of a seeded run is a survivable crash
    /// point.
    #[test]
    fn every_kill_point_recovers_prefix_consistent(
        seed in 0u64..10_000,
        count in 24u64..56,
        ops_per_epoch in 1u64..6,
        window in 1u64..3,
    ) {
        // Dry run to learn how many medium ops a clean execution needs.
        let m = medium();
        {
            let (mut kv, _) = Kv::open(
                Arc::clone(&m) as _,
                cfg(window, false),
                Telemetry::off(),
                ops_per_epoch,
            ).unwrap();
            let ops = generate(seed, count, KEY_SPACE);
            run_until_death(&mut kv, &ops);
            kv.close().unwrap();
        }
        let total_ops = m.stats().persists + m.stats().fences;
        prop_assert!(total_ops > 0);
        // Kill at every boundary (the persister interleaves differently
        // run to run, so each k probes a real, possibly novel, schedule).
        for k in 0..total_ops {
            if let Err(msg) = trial(seed, count, ops_per_epoch, window, Some(k), false) {
                return Err(TestCaseError::fail(format!("kill at op {k}/{total_ops}: {msg}")));
            }
        }
        // And the clean run recovers everything committed.
        if let Err(msg) = trial(seed, count, ops_per_epoch, window, None, false) {
            return Err(TestCaseError::fail(format!("clean run: {msg}")));
        }
    }
}

/// The oracle is not vacuous: a store that silently discards its undo
/// buffer (no durable log) fails the prefix-consistency check for some
/// kill point.
#[test]
fn sabotaged_store_is_caught() {
    let seed = 42;
    let count = 48;
    let ops_per_epoch = 3;
    let m = medium();
    {
        let (mut kv, _) = Kv::open(
            Arc::clone(&m) as _,
            cfg(1, false),
            Telemetry::off(),
            ops_per_epoch,
        )
        .unwrap();
        let ops = generate(seed, count, KEY_SPACE);
        run_until_death(&mut kv, &ops);
        kv.close().unwrap();
    }
    let total_ops = m.stats().persists + m.stats().fences;
    let caught =
        (0..total_ops).any(|k| trial(seed, count, ops_per_epoch, 1, Some(k), true).is_err());
    assert!(
        caught,
        "no kill point caught the sabotaged (drain-skipping) store"
    );
}

/// Deterministic spot-check of the oracle plumbing itself: a model built
/// op-by-op matches `model_after` at every epoch boundary.
#[test]
fn model_oracle_agrees_with_incremental_replay() {
    let ops = generate(7, 60, KEY_SPACE);
    let mut model = Model::new();
    for (i, op) in ops.iter().enumerate() {
        apply_to_model(&mut model, op);
        let n = (i + 1) as u64;
        if n.is_multiple_of(5) {
            assert_eq!(model, model_after(7, n, KEY_SPACE));
        }
    }
    // StoreError is part of the public surface the harness matches on.
    let e = StoreError::Io("x".into());
    assert!(e.to_string().contains("medium error"));
}
