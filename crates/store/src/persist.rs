//! The persistence boundary: [`PersistOps`] and its three media.
//!
//! The engine never touches its backing medium directly; every durable
//! byte flows through this trait, which models the x86 persistence
//! primitives the paper assumes:
//!
//! * [`PersistOps::persist`] — `clflush`/`clwb` of a byte range: the write
//!   is *issued* but not yet guaranteed durable;
//! * [`PersistOps::fence`] — `sfence` + drain: everything persisted before
//!   the fence is durable once it returns.
//!
//! Three interchangeable media implement the trait:
//!
//! * [`FileMedium`] — a plain file: `persist` is a positioned write into
//!   the page cache, `fence` is `fdatasync`. The moral equivalent of an
//!   msync-backed mmap without requiring libc.
//! * [`LatencyMedium`] — wraps any medium and spin-waits a configured
//!   number of nanoseconds per operation, the way Makalu's
//!   `emulate_latency_ns` models PCM write latency on DRAM.
//! * [`CountingMedium`] — in-memory, counts every operation, and can be
//!   scheduled to *die* at an exact operation index. Writes issued after
//!   the last fence are discarded at death, which is the adversarial
//!   power-failure model: a kill between fences loses exactly the
//!   unfenced suffix. Recovery tests run against the surviving image.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Operation counters every medium keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// `persist` calls issued.
    pub persists: u64,
    /// `fence` calls issued.
    pub fences: u64,
    /// Bytes written across all persists.
    pub bytes_persisted: u64,
}

/// The pluggable `clflush`/`sfence` emulation layer.
pub trait PersistOps: Send + Sync {
    /// Issues a write of `data` at byte `offset`. Durability is only
    /// guaranteed after a subsequent [`PersistOps::fence`].
    ///
    /// # Errors
    ///
    /// Fails if the medium is dead or the backing store rejects the write.
    fn persist(&self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Drains all previously issued writes to durable media.
    ///
    /// # Errors
    ///
    /// Fails if the medium is dead or the sync fails.
    fn fence(&self) -> io::Result<()>;

    /// Reads `buf.len()` bytes at `offset` (used only at open/recovery).
    ///
    /// # Errors
    ///
    /// Fails if the medium is dead or the read is out of range.
    fn read(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Total capacity in bytes.
    fn len(&self) -> u64;

    /// Whether the medium holds zero bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters so far.
    fn stats(&self) -> PersistStats;
}

fn range_check(offset: u64, len: usize, cap: u64) -> io::Result<()> {
    let end = offset
        .checked_add(len as u64)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "offset overflow"))?;
    if end > cap {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("access [{offset}, {end}) beyond medium of {cap} bytes"),
        ));
    }
    Ok(())
}

/// A plain file as the NVM region: positioned writes + `fdatasync`.
#[derive(Debug)]
pub struct FileMedium {
    file: std::fs::File,
    len: u64,
    persists: AtomicU64,
    fences: AtomicU64,
    bytes: AtomicU64,
}

impl FileMedium {
    /// Opens (creating if absent) `path` and sizes it to exactly `len`
    /// bytes. A fresh file reads as zeros.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened or resized.
    pub fn open(path: &std::path::Path, len: u64) -> io::Result<FileMedium> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if file.metadata()?.len() != len {
            file.set_len(len)?;
        }
        Ok(FileMedium {
            file,
            len,
            persists: AtomicU64::new(0),
            fences: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        })
    }

    /// Opens an existing file at whatever size it has.
    ///
    /// # Errors
    ///
    /// Fails if the file does not exist or cannot be opened read-write.
    pub fn open_existing(path: &std::path::Path) -> io::Result<FileMedium> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileMedium {
            file,
            len,
            persists: AtomicU64::new(0),
            fences: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        })
    }
}

impl PersistOps for FileMedium {
    fn persist(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        range_check(offset, data.len(), self.len)?;
        self.file.write_all_at(data, offset)?;
        self.persists.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn fence(&self) -> io::Result<()> {
        self.file.sync_data()?;
        self.fences.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn read(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        range_check(offset, buf.len(), self.len)?;
        self.file.read_exact_at(buf, offset)
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn stats(&self) -> PersistStats {
        PersistStats {
            persists: self.persists.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            bytes_persisted: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Injected NVM latencies, after Makalu's `emulate_latency_ns`: a spin
/// (not a sleep — sleeps have far coarser granularity than PCM writes)
/// charged per persist and per fence.
#[derive(Debug)]
pub struct LatencyMedium<M> {
    inner: M,
    /// Nanoseconds charged per `persist` (Makalu charges 340 ns per
    /// `clflush` in PCM mode).
    pub persist_ns: u64,
    /// Nanoseconds charged per `fence` (Makalu charges 500 ns per
    /// `mfence` in PCM mode).
    pub fence_ns: u64,
}

impl<M: PersistOps> LatencyMedium<M> {
    /// Wraps `inner`, charging the given latencies.
    pub fn new(inner: M, persist_ns: u64, fence_ns: u64) -> Self {
        LatencyMedium {
            inner,
            persist_ns,
            fence_ns,
        }
    }

    fn spin(ns: u64) {
        if ns == 0 {
            return;
        }
        let start = std::time::Instant::now();
        let target = std::time::Duration::from_nanos(ns);
        while start.elapsed() < target {
            std::hint::spin_loop();
        }
    }
}

impl<M: PersistOps> PersistOps for LatencyMedium<M> {
    fn persist(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.inner.persist(offset, data)?;
        Self::spin(self.persist_ns);
        Ok(())
    }

    fn fence(&self) -> io::Result<()> {
        self.inner.fence()?;
        Self::spin(self.fence_ns);
        Ok(())
    }

    fn read(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn stats(&self) -> PersistStats {
        self.inner.stats()
    }
}

#[derive(Debug)]
struct CountingState {
    /// Durable image: reflects everything up to the last fence.
    image: Vec<u8>,
    /// Writes issued since the last fence, in order. Lost if the medium
    /// dies before the next fence.
    pending: Vec<(u64, Vec<u8>)>,
    stats: PersistStats,
    /// Die when the (persist + fence) op counter reaches this value.
    kill_at_op: Option<u64>,
    dead: bool,
}

/// In-memory medium with exact operation counting and scheduled death.
///
/// Death semantics are the adversarial power-failure model: at the fatal
/// operation the medium stops accepting work *and discards every write
/// issued since the last completed fence*. [`CountingMedium::surviving_image`]
/// is what a recovery sees.
#[derive(Debug)]
pub struct CountingMedium {
    state: Mutex<CountingState>,
}

impl CountingMedium {
    /// A zero-filled medium of `len` bytes.
    pub fn new(len: u64) -> CountingMedium {
        CountingMedium::from_image(vec![0u8; len as usize])
    }

    /// A medium whose durable image starts as `image` (e.g. the survivor
    /// of an earlier death, for recovery testing).
    pub fn from_image(image: Vec<u8>) -> CountingMedium {
        CountingMedium {
            state: Mutex::new(CountingState {
                image,
                pending: Vec::new(),
                stats: PersistStats::default(),
                kill_at_op: None,
                dead: false,
            }),
        }
    }

    /// Schedules death at operation index `op` (0-based over the combined
    /// persist+fence sequence): the op that would be number `op` fails
    /// instead of executing, and unfenced writes are dropped.
    pub fn kill_at_op(&self, op: u64) {
        self.state
            .lock()
            .expect("counting medium poisoned")
            .kill_at_op = Some(op);
    }

    /// Whether the scheduled death has occurred.
    pub fn is_dead(&self) -> bool {
        self.state.lock().expect("counting medium poisoned").dead
    }

    /// The durable bytes (everything fenced before death or now).
    pub fn surviving_image(&self) -> Vec<u8> {
        self.state
            .lock()
            .expect("counting medium poisoned")
            .image
            .clone()
    }

    fn begin_op(state: &mut CountingState) -> io::Result<()> {
        if state.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "medium is dead (injected power failure)",
            ));
        }
        let op_index = state.stats.persists + state.stats.fences;
        if state.kill_at_op == Some(op_index) {
            state.dead = true;
            state.pending.clear();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                format!("injected power failure at persist-op {op_index}"),
            ));
        }
        Ok(())
    }
}

impl PersistOps for CountingMedium {
    fn persist(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().expect("counting medium poisoned");
        Self::begin_op(&mut state)?;
        range_check(offset, data.len(), state.image.len() as u64)?;
        state.pending.push((offset, data.to_vec()));
        state.stats.persists += 1;
        state.stats.bytes_persisted += data.len() as u64;
        Ok(())
    }

    fn fence(&self) -> io::Result<()> {
        let mut state = self.state.lock().expect("counting medium poisoned");
        Self::begin_op(&mut state)?;
        let pending = std::mem::take(&mut state.pending);
        for (offset, data) in pending {
            let at = offset as usize;
            state.image[at..at + data.len()].copy_from_slice(&data);
        }
        state.stats.fences += 1;
        Ok(())
    }

    fn read(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let state = self.state.lock().expect("counting medium poisoned");
        if state.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "medium is dead (injected power failure)",
            ));
        }
        range_check(offset, buf.len(), state.image.len() as u64)?;
        // Reads see issued-but-unfenced writes, like a CPU reading its own
        // store buffer; only *durability* waits for the fence.
        let at = offset as usize;
        buf.copy_from_slice(&state.image[at..at + buf.len()]);
        for (woff, data) in &state.pending {
            let (a, b) = (*woff, woff + data.len() as u64);
            let (ra, rb) = (offset, offset + buf.len() as u64);
            if b <= ra || a >= rb {
                continue;
            }
            let from = a.max(ra);
            let to = b.min(rb);
            buf[(from - ra) as usize..(to - ra) as usize]
                .copy_from_slice(&data[(from - a) as usize..(to - a) as usize]);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.state
            .lock()
            .expect("counting medium poisoned")
            .image
            .len() as u64
    }

    fn stats(&self) -> PersistStats {
        self.state.lock().expect("counting medium poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_medium_fences_make_writes_durable() {
        let m = CountingMedium::new(128);
        m.persist(0, &[1, 2, 3]).unwrap();
        assert_eq!(m.surviving_image()[0], 0, "unfenced write not durable");
        m.fence().unwrap();
        assert_eq!(&m.surviving_image()[..3], &[1, 2, 3]);
        assert_eq!(
            m.stats(),
            PersistStats {
                persists: 1,
                fences: 1,
                bytes_persisted: 3
            }
        );
    }

    #[test]
    fn counting_medium_death_drops_unfenced_suffix() {
        let m = CountingMedium::new(64);
        m.persist(0, &[7; 8]).unwrap();
        m.fence().unwrap();
        m.persist(8, &[9; 8]).unwrap();
        m.kill_at_op(3); // ops 0..=2 done; op 3 (the fence below) dies
        assert!(m.fence().is_err());
        assert!(m.is_dead());
        assert!(m.persist(0, &[0]).is_err(), "dead medium rejects work");
        let image = m.surviving_image();
        assert_eq!(&image[..8], &[7; 8], "fenced write survives");
        assert_eq!(&image[8..16], &[0; 8], "unfenced write dropped");
    }

    #[test]
    fn counting_medium_reads_see_pending_writes() {
        let m = CountingMedium::new(16);
        m.persist(4, &[5, 6]).unwrap();
        let mut buf = [0u8; 8];
        m.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0, 0, 5, 6, 0, 0]);
    }

    #[test]
    fn counting_medium_rejects_out_of_range() {
        let m = CountingMedium::new(8);
        assert!(m.persist(4, &[0; 8]).is_err());
        let mut buf = [0u8; 16];
        assert!(m.read(0, &mut buf).is_err());
    }

    #[test]
    fn file_medium_round_trips_and_counts() {
        let dir = std::env::temp_dir().join("picl_store_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.nvm");
        let m = FileMedium::open(&path, 256).unwrap();
        m.persist(10, b"hello").unwrap();
        m.fence().unwrap();
        let mut buf = [0u8; 5];
        m.read(10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(m.stats().persists, 1);
        assert_eq!(m.stats().fences, 1);
        drop(m);
        let again = FileMedium::open_existing(&path).unwrap();
        assert_eq!(again.len(), 256);
        let mut buf = [0u8; 5];
        again.read(10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn latency_medium_delegates() {
        let m = LatencyMedium::new(CountingMedium::new(32), 100, 100);
        m.persist(0, &[1]).unwrap();
        m.fence().unwrap();
        let mut buf = [0u8; 1];
        m.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
        assert_eq!(m.stats().persists, 1);
        assert!(!m.is_empty());
    }
}
