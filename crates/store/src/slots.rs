//! Slot-level record layout: open addressing with multi-slot spanning
//! values.
//!
//! A record's head slot holds the key, up to 16 value bytes, and explicit
//! pointers to up to four continuation slots of 60 value bytes each — so
//! values span `16 + 4*60 = 256` bytes of capacity, capped at
//! [`MAX_VALUE_BYTES`] (255, the reach of the one-byte length field):
//!
//! ```text
//! head: [ state u8 | klen u8 | vlen u8 | ver u8 | key 28B | 4 x u32 cont ptrs | value 16B ]
//! cont: [ state u8 | seq  u8 | len  u8 | ver u8 |               payload 60B             ]
//! ```
//!
//! Heads are probed linearly from `fnv1a_64(key) % lines`; continuation
//! slots are allocated from any free slot and reached only through the
//! head's pointers, never by probing. Turning an `EMPTY` slot into a
//! `CONT` can lengthen probe chains but never shorten one (no transition
//! ever re-creates `EMPTY`), so probes stay correct.
//!
//! Mutation functions assume *per-record* exclusion — no two writers
//! mutate the same key at once (the embedded [`crate::kv::Kv`] is
//! `&mut self`; the serving layer locks the shard of the key's
//! [`home_line`]). Writers for *different* keys may run concurrently as
//! long as free-line claims never collide: a writer confined via
//! [`put_within`] only turns `EMPTY`/`TOMBSTONE` lines into record state
//! inside its own locked range and escalates (retries under full
//! exclusion) otherwise, while writes to lines a record already owns are
//! safe anywhere because only that record's writer touches them.
//! `lookup` is safe *concurrently with* those writers: it validates each
//! continuation against the
//! head's version byte and re-reads the head before returning, reporting
//! [`Lookup::Contended`] when a racing mutation is detected so the caller
//! can retry or fall back to excluding the writer (the serving layer
//! takes the key's shard lock). (As with any seqlock, a
//! reader that stalls across exactly 256 mutations of one record could
//! miss the version wrap; reads are a handful of slot copies and writers
//! take a lock per mutation, so the window is not reachable in practice.)
//!
//! Crash atomicity is *not* this module's job: the engine's undo log
//! rolls the whole table back to an epoch boundary, and callers keep
//! every multi-slot mutation inside one epoch, so recovery never sees a
//! half-written record.

use picl_types::hash::fnv1a_64;
use picl_types::LINE_BYTES;

use crate::engine::{Engine, StoreError};

const LINE: usize = LINE_BYTES as usize;

/// Slot states.
pub const SLOT_EMPTY: u8 = 0;
/// A record head.
pub const SLOT_LIVE: u8 = 1;
/// A freed slot (still non-terminating for probes).
pub const SLOT_TOMBSTONE: u8 = 2;
/// A continuation slot, reached only via head pointers.
pub const SLOT_CONT: u8 = 3;

/// Maximum key length a head slot can hold.
pub const MAX_KEY_BYTES: usize = 28;
/// Value bytes stored in the head slot itself.
pub const HEAD_VALUE_BYTES: usize = 16;
/// Value bytes per continuation slot.
pub const CONT_VALUE_BYTES: usize = 60;
/// Maximum continuation slots per record.
pub const MAX_CONTS: usize = 4;
/// Maximum value length: one byte of length, so 255 even though the slot
/// chain could carry 256.
pub const MAX_VALUE_BYTES: usize = 255;

const KEY_AT: usize = 4;
const PTRS_AT: usize = KEY_AT + MAX_KEY_BYTES;
const HEAD_VAL_AT: usize = PTRS_AT + 4 * MAX_CONTS;
const CONT_VAL_AT: usize = 4;
/// Pointer slot value for "no continuation".
const NO_CONT: u32 = u32::MAX;

/// Line-granularity access to the slot table. Implemented by the engine
/// (undo-logged persistent lines) and by test/baseline backings.
pub trait Lines {
    /// Slots in the table.
    fn line_count(&self) -> u32;
    /// Reads one slot (atomically with respect to concurrent writes).
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures.
    fn read_slot(&self, line: u32) -> Result<[u8; LINE], StoreError>;
    /// Writes one slot.
    ///
    /// # Errors
    ///
    /// Propagates backing-store failures.
    fn write_slot(&self, line: u32, data: &[u8; LINE]) -> Result<(), StoreError>;
}

impl Lines for Engine {
    fn line_count(&self) -> u32 {
        self.geometry().lines
    }

    fn read_slot(&self, line: u32) -> Result<[u8; LINE], StoreError> {
        self.read_line(line)
    }

    fn write_slot(&self, line: u32, data: &[u8; LINE]) -> Result<(), StoreError> {
        self.write_line(line, data)
    }
}

/// Rejects an unusable key.
///
/// # Errors
///
/// Empty and oversized keys are invalid.
pub fn check_key(key: &[u8]) -> Result<(), StoreError> {
    if key.is_empty() || key.len() > MAX_KEY_BYTES {
        return Err(StoreError::Invalid(format!(
            "key length {} not in 1..={MAX_KEY_BYTES}",
            key.len()
        )));
    }
    Ok(())
}

/// Rejects an oversized value.
///
/// # Errors
///
/// Values longer than [`MAX_VALUE_BYTES`] are invalid.
pub fn check_value(value: &[u8]) -> Result<(), StoreError> {
    if value.len() > MAX_VALUE_BYTES {
        return Err(StoreError::Invalid(format!(
            "value length {} exceeds {MAX_VALUE_BYTES}",
            value.len()
        )));
    }
    Ok(())
}

/// Continuation slots a value of `vlen` bytes needs.
fn cont_count(vlen: usize) -> usize {
    vlen.saturating_sub(HEAD_VALUE_BYTES)
        .div_ceil(CONT_VALUE_BYTES)
}

fn head_key(slot: &[u8; LINE]) -> &[u8] {
    let klen = (slot[1] as usize).min(MAX_KEY_BYTES);
    &slot[KEY_AT..KEY_AT + klen]
}

fn ptr_at(slot: &[u8; LINE], i: usize) -> u32 {
    let at = PTRS_AT + 4 * i;
    u32::from_le_bytes(slot[at..at + 4].try_into().expect("4 bytes"))
}

fn encode_head(key: &[u8], value: &[u8], ptrs: &[u32], ver: u8) -> [u8; LINE] {
    let mut slot = [0u8; LINE];
    slot[0] = SLOT_LIVE;
    slot[1] = key.len() as u8;
    slot[2] = value.len() as u8;
    slot[3] = ver;
    slot[KEY_AT..KEY_AT + key.len()].copy_from_slice(key);
    for i in 0..MAX_CONTS {
        let ptr = ptrs.get(i).copied().unwrap_or(NO_CONT);
        let at = PTRS_AT + 4 * i;
        slot[at..at + 4].copy_from_slice(&ptr.to_le_bytes());
    }
    let take = value.len().min(HEAD_VALUE_BYTES);
    slot[HEAD_VAL_AT..HEAD_VAL_AT + take].copy_from_slice(&value[..take]);
    slot
}

fn encode_cont(seq: usize, chunk: &[u8], ver: u8) -> [u8; LINE] {
    let mut slot = [0u8; LINE];
    slot[0] = SLOT_CONT;
    slot[1] = seq as u8;
    slot[2] = chunk.len() as u8;
    slot[3] = ver;
    slot[CONT_VAL_AT..CONT_VAL_AT + chunk.len()].copy_from_slice(chunk);
    slot
}

/// Frees one slot, preserving (and bumping) its version byte so readers
/// parked on the old contents always see a change.
fn write_tombstone(store: &impl Lines, line: u32) -> Result<(), StoreError> {
    let old = store.read_slot(line)?;
    let mut slot = [0u8; LINE];
    slot[0] = SLOT_TOMBSTONE;
    slot[3] = old[3].wrapping_add(1);
    store.write_slot(line, &slot)
}

/// The line where `key`'s linear probe starts — its natural head
/// position. The serving layer keys its shard locks off this line, so
/// the hash must stay in lockstep with [`probe`].
pub fn home_line(lines: u32, key: &[u8]) -> u32 {
    (fnv1a_64(key) % u64::from(lines)) as u32
}

/// Where a probe for a key ended.
#[derive(Debug)]
pub enum Probe {
    /// The live head slot holding the key, with its snapshot.
    Found {
        /// Head slot line.
        line: u32,
        /// The head slot's contents at probe time.
        slot: [u8; LINE],
    },
    /// Not present; `line` is where an insert would land (first reusable
    /// tombstone, else the terminating empty slot).
    Free {
        /// Insertion slot line.
        line: u32,
    },
}

/// Probes linearly for `key`'s head slot.
///
/// # Errors
///
/// Propagates backing-store failures; a table with no empty or reusable
/// slot left is `Invalid`.
pub fn probe(store: &impl Lines, key: &[u8]) -> Result<Probe, StoreError> {
    let lines = store.line_count();
    let start = home_line(lines, key);
    let mut first_tombstone: Option<u32> = None;
    for i in 0..lines {
        let line = (start + i) % lines;
        let slot = store.read_slot(line)?;
        match slot[0] {
            SLOT_LIVE if head_key(&slot) == key => return Ok(Probe::Found { line, slot }),
            SLOT_EMPTY => {
                return Ok(Probe::Free {
                    line: first_tombstone.unwrap_or(line),
                })
            }
            SLOT_TOMBSTONE if first_tombstone.is_none() => first_tombstone = Some(line),
            _ => {}
        }
    }
    match first_tombstone {
        Some(line) => Ok(Probe::Free { line }),
        None => Err(StoreError::Invalid("table full".into())),
    }
}

/// Reassembles the value behind a head snapshot. Returns `None` when a
/// concurrent mutation raced the read (version/state mismatch on a
/// continuation, or the head changed before the final re-read).
fn assemble(
    store: &impl Lines,
    line: u32,
    head: &[u8; LINE],
) -> Result<Option<Vec<u8>>, StoreError> {
    let vlen = head[2] as usize;
    if vlen > MAX_VALUE_BYTES {
        return Ok(None);
    }
    let ver = head[3];
    let take = vlen.min(HEAD_VALUE_BYTES);
    let mut value = head[HEAD_VAL_AT..HEAD_VAL_AT + take].to_vec();
    let mut remaining = vlen - take;
    for i in 0..cont_count(vlen) {
        let ptr = ptr_at(head, i);
        if ptr == NO_CONT || ptr >= store.line_count() {
            return Ok(None);
        }
        let cont = store.read_slot(ptr)?;
        let chunk = remaining.min(CONT_VALUE_BYTES);
        if cont[0] != SLOT_CONT
            || cont[1] as usize != i + 1
            || cont[2] as usize != chunk
            || cont[3] != ver
        {
            return Ok(None);
        }
        value.extend_from_slice(&cont[CONT_VAL_AT..CONT_VAL_AT + chunk]);
        remaining -= chunk;
    }
    if store.read_slot(line)? != *head {
        return Ok(None);
    }
    Ok(Some(value))
}

/// What one optimistic lookup attempt observed.
#[derive(Debug)]
pub enum Lookup {
    /// The key's value, read consistently.
    Found {
        /// Head slot line.
        line: u32,
        /// The assembled value.
        value: Vec<u8>,
    },
    /// Consistently absent; `line` is the probe's terminal slot.
    Missing {
        /// Terminal probe slot.
        line: u32,
    },
    /// A concurrent mutation raced this read; retry (or serialize).
    Contended,
}

/// One optimistic lookup attempt. Safe concurrently with one writer.
///
/// # Errors
///
/// Propagates backing-store failures and invalid keys.
pub fn lookup(store: &impl Lines, key: &[u8]) -> Result<Lookup, StoreError> {
    check_key(key)?;
    match probe(store, key)? {
        Probe::Free { line } => Ok(Lookup::Missing { line }),
        Probe::Found { line, slot } => match assemble(store, line, &slot)? {
            Some(value) => Ok(Lookup::Found { line, value }),
            None => Ok(Lookup::Contended),
        },
    }
}

/// True when `line` is inside the `[start, end)` confinement range (or
/// there is no confinement).
fn in_range(allowed: Option<(u32, u32)>, line: u32) -> bool {
    allowed.is_none_or(|(start, end)| line >= start && line < end)
}

/// Allocates `n` continuation slots, scanning from the head. Free means
/// `EMPTY` or `TOMBSTONE`; slots in `taken` (reused pointers) are
/// skipped. With `allowed` set, only lines inside that range qualify —
/// `Ok(None)` means the range could not satisfy the request (the caller
/// escalates to an unconfined retry under stronger locking); the hard
/// table-full error is reserved for unconfined allocation.
fn alloc_conts(
    store: &impl Lines,
    head_line: u32,
    taken: &[u32],
    n: usize,
    allowed: Option<(u32, u32)>,
) -> Result<Option<Vec<u32>>, StoreError> {
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return Ok(Some(out));
    }
    let lines = store.line_count();
    for step in 1..lines {
        let line = (head_line + step) % lines;
        if !in_range(allowed, line) || taken.contains(&line) || out.contains(&line) {
            continue;
        }
        let state = store.read_slot(line)?[0];
        if state == SLOT_EMPTY || state == SLOT_TOMBSTONE {
            out.push(line);
            if out.len() == n {
                return Ok(Some(out));
            }
        }
    }
    if allowed.is_some() {
        return Ok(None);
    }
    Err(StoreError::Invalid(
        "table full (no free slots for a spanning value)".into(),
    ))
}

/// Writes a record: continuations first, then the head. A concurrent
/// reader either holds the old head (and trips on the bumped version in
/// any rewritten continuation) or picks up the new head over the already
/// written new continuations.
fn write_record(
    store: &impl Lines,
    head_line: u32,
    key: &[u8],
    value: &[u8],
    ptrs: &[u32],
    ver: u8,
) -> Result<(), StoreError> {
    let mut rest = &value[value.len().min(HEAD_VALUE_BYTES)..];
    for (i, &ptr) in ptrs.iter().enumerate() {
        let chunk = rest.len().min(CONT_VALUE_BYTES);
        store.write_slot(ptr, &encode_cont(i + 1, &rest[..chunk], ver))?;
        rest = &rest[chunk..];
    }
    debug_assert!(rest.is_empty());
    store.write_slot(head_line, &encode_head(key, value, ptrs, ver))
}

/// Outcome of a range-confined [`put_within`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The record was written; the head slot line.
    Done(u32),
    /// The write needs to claim a free line outside the allowed range
    /// (insertion target or continuation allocation); retry unconfined
    /// under locking that excludes every other writer.
    Escalate,
}

/// Inserts or overwrites `key`, reusing the old record's continuation
/// slots where possible and tombstoning the surplus. Requires the single
/// writer. Returns the head slot line.
///
/// # Errors
///
/// Rejects oversized keys/values and a table too full to hold the
/// record; propagates backing-store failures.
pub fn put(store: &impl Lines, key: &[u8], value: &[u8]) -> Result<u32, StoreError> {
    match put_within(store, key, value, None)? {
        Placement::Done(line) => Ok(line),
        Placement::Escalate => unreachable!("unconfined puts never escalate"),
    }
}

/// [`put`] with its *free-line claims* confined to the `allowed`
/// `[start, end)` line range. Writes to slots the record already owns
/// (its head, its continuation slots, surplus tombstones) may land
/// anywhere — only turning an `EMPTY`/`TOMBSTONE` line into part of this
/// record is restricted, because that is the one action that races a
/// concurrent writer confined to a different range. Returns
/// [`Placement::Escalate`] when the insertion target falls outside the
/// range or the range has too few free lines for the value's
/// continuations; the caller retries unconfined while excluding all
/// other writers.
///
/// # Errors
///
/// As [`put`].
pub fn put_within(
    store: &impl Lines,
    key: &[u8],
    value: &[u8],
    allowed: Option<(u32, u32)>,
) -> Result<Placement, StoreError> {
    check_key(key)?;
    check_value(value)?;
    let new_conts = cont_count(value.len());
    match probe(store, key)? {
        Probe::Found { line, slot } => {
            let old_conts = cont_count(slot[2] as usize);
            let old_ptrs: Vec<u32> = (0..old_conts).map(|i| ptr_at(&slot, i)).collect();
            let ver = slot[3].wrapping_add(1);
            let mut ptrs: Vec<u32> = old_ptrs.iter().copied().take(new_conts).collect();
            if new_conts > old_conts {
                match alloc_conts(store, line, &ptrs, new_conts - old_conts, allowed)? {
                    Some(extra) => ptrs.extend(extra),
                    None => return Ok(Placement::Escalate),
                }
            }
            write_record(store, line, key, value, &ptrs, ver)?;
            for &surplus in &old_ptrs[new_conts.min(old_conts)..] {
                if surplus != NO_CONT && surplus < store.line_count() {
                    write_tombstone(store, surplus)?;
                }
            }
            Ok(Placement::Done(line))
        }
        Probe::Free { line } => {
            if !in_range(allowed, line) {
                return Ok(Placement::Escalate);
            }
            let ver = store.read_slot(line)?[3].wrapping_add(1);
            match alloc_conts(store, line, &[], new_conts, allowed)? {
                Some(ptrs) => {
                    write_record(store, line, key, value, &ptrs, ver)?;
                    Ok(Placement::Done(line))
                }
                None => Ok(Placement::Escalate),
            }
        }
    }
}

/// How a delete resolved.
#[derive(Debug)]
pub enum Deletion {
    /// The key was present; its head slot was tombstoned.
    Deleted {
        /// Head slot line.
        line: u32,
    },
    /// The key was absent; `line` is the probe's terminal slot.
    Missing {
        /// Terminal probe slot.
        line: u32,
    },
}

/// Deletes `key` if present: head slot first (the key vanishes in one
/// slot write), then its continuations. Requires the single writer.
///
/// # Errors
///
/// Propagates backing-store failures and invalid keys.
pub fn delete(store: &impl Lines, key: &[u8]) -> Result<Deletion, StoreError> {
    check_key(key)?;
    match probe(store, key)? {
        Probe::Found { line, slot } => {
            write_tombstone(store, line)?;
            for i in 0..cont_count(slot[2] as usize) {
                let ptr = ptr_at(&slot, i);
                if ptr != NO_CONT && ptr < store.line_count() {
                    write_tombstone(store, ptr)?;
                }
            }
            Ok(Deletion::Deleted { line })
        }
        Probe::Free { line } => Ok(Deletion::Missing { line }),
    }
}

/// All live pairs, sorted by key. Requires exclusive access (no
/// concurrent writer): a torn record here means corruption, not
/// contention.
///
/// # Errors
///
/// Propagates backing-store failures; reports torn records as `Corrupt`.
pub fn scan(store: &impl Lines) -> Result<crate::kv::KvPairs, StoreError> {
    let mut out = Vec::new();
    for line in 0..store.line_count() {
        let slot = store.read_slot(line)?;
        if slot[0] != SLOT_LIVE {
            continue;
        }
        match assemble(store, line, &slot)? {
            Some(value) => out.push((head_key(&slot).to_vec(), value)),
            None => {
                return Err(StoreError::Corrupt(format!(
                    "torn record at slot {line} during exclusive scan"
                )))
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A plain in-memory slot table (single-threaded test backing).
    struct MemLines(RefCell<Vec<[u8; LINE]>>);

    impl MemLines {
        fn new(lines: u32) -> MemLines {
            MemLines(RefCell::new(vec![[0u8; LINE]; lines as usize]))
        }
    }

    impl Lines for MemLines {
        fn line_count(&self) -> u32 {
            self.0.borrow().len() as u32
        }

        fn read_slot(&self, line: u32) -> Result<[u8; LINE], StoreError> {
            Ok(self.0.borrow()[line as usize])
        }

        fn write_slot(&self, line: u32, data: &[u8; LINE]) -> Result<(), StoreError> {
            self.0.borrow_mut()[line as usize] = *data;
            Ok(())
        }
    }

    fn value_of(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    fn get(store: &impl Lines, key: &[u8]) -> Option<Vec<u8>> {
        match lookup(store, key).unwrap() {
            Lookup::Found { value, .. } => Some(value),
            Lookup::Missing { .. } => None,
            Lookup::Contended => panic!("contended without concurrency"),
        }
    }

    #[test]
    fn spanning_round_trip_at_every_boundary() {
        let store = MemLines::new(64);
        for len in [0, 1, 15, 16, 17, 76, 77, 136, 196, 224, 254, 255] {
            let key = format!("k{len}");
            put(&store, key.as_bytes(), &value_of(len)).unwrap();
            assert_eq!(
                get(&store, key.as_bytes()),
                Some(value_of(len)),
                "len {len}"
            );
        }
        assert!(put(&store, b"big", &value_of(256)).is_err());
    }

    #[test]
    fn overwrite_grows_and_shrinks_cont_chains() {
        let store = MemLines::new(32);
        put(&store, b"k", &value_of(255)).unwrap();
        put(&store, b"other", &value_of(200)).unwrap();
        // Shrink to a single slot: four continuations must come free.
        put(&store, b"k", &value_of(5)).unwrap();
        assert_eq!(get(&store, b"k"), Some(value_of(5)));
        // Grow again; the freed slots are reusable.
        put(&store, b"k", &value_of(230)).unwrap();
        assert_eq!(get(&store, b"k"), Some(value_of(230)));
        assert_eq!(get(&store, b"other"), Some(value_of(200)));
        let pairs = scan(&store).unwrap();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn delete_frees_spanned_slots() {
        // 6 slots: one 255-byte record consumes 5 of them.
        let store = MemLines::new(6);
        put(&store, b"a", &value_of(255)).unwrap();
        assert!(put(&store, b"b", &value_of(100)).is_err(), "table is full");
        match delete(&store, b"a").unwrap() {
            Deletion::Deleted { .. } => {}
            Deletion::Missing { .. } => panic!("a was present"),
        }
        assert_eq!(get(&store, b"a"), None);
        put(&store, b"b", &value_of(255)).unwrap();
        assert_eq!(get(&store, b"b"), Some(value_of(255)));
    }

    #[test]
    fn confined_put_escalates_instead_of_claiming_foreign_lines() {
        let store = MemLines::new(64);
        let key = b"confined";
        let home = home_line(64, key);
        // A fresh table: the home slot is empty, so a single-slot value
        // fits inside a one-line range.
        let r = put_within(&store, key, &value_of(4), Some((home, home + 1))).unwrap();
        assert_eq!(r, Placement::Done(home));
        // Growing to a spanning value needs continuation lines the range
        // cannot provide: escalate, mutating nothing.
        let r = put_within(&store, key, &value_of(255), Some((home, home + 1))).unwrap();
        assert_eq!(r, Placement::Escalate);
        assert_eq!(get(&store, key), Some(value_of(4)), "escalation is a no-op");
        // The unconfined retry (what the caller does under full locks)
        // places it.
        assert!(matches!(
            put_within(&store, key, &value_of(255), None).unwrap(),
            Placement::Done(_)
        ));
        assert_eq!(get(&store, key), Some(value_of(255)));
        // An insert whose home line lies outside the allowed range must
        // escalate rather than claim a foreign head slot.
        let other = b"elsewhere";
        let oh = home_line(64, other);
        let far = if oh >= 2 { (0, 1) } else { (4, 5) };
        assert_eq!(
            put_within(&store, other, b"v", Some(far)).unwrap(),
            Placement::Escalate
        );
        assert_eq!(get(&store, other), None);
    }

    #[test]
    fn cont_slots_do_not_break_probe_chains() {
        // Force everything to hash-collide into a tiny table so probes
        // must walk across CONT and TOMBSTONE slots.
        let store = MemLines::new(8);
        put(&store, b"a", &value_of(60)).unwrap(); // head + 1 cont
        put(&store, b"b", &value_of(1)).unwrap();
        put(&store, b"c", &value_of(100)).unwrap(); // head + 2 conts
        assert_eq!(get(&store, b"a"), Some(value_of(60)));
        assert_eq!(get(&store, b"b"), Some(value_of(1)));
        assert_eq!(get(&store, b"c"), Some(value_of(100)));
        delete(&store, b"b").unwrap();
        assert_eq!(
            get(&store, b"c"),
            Some(value_of(100)),
            "probes pass tombstones"
        );
        let pairs = scan(&store).unwrap();
        assert_eq!(
            pairs.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            vec![b"a".to_vec(), b"c".to_vec()]
        );
    }
}
