//! The PiCL protocol as running software: epoch-tagged lines, a 2 KB
//! coalescing undo buffer, a circular multi-undo log, and a background
//! persister closing epochs on the §IV-A in-order window.
//!
//! # Protocol
//!
//! The *volatile image* (a heap buffer) plays the cache hierarchy: every
//! write lands there immediately. The first write to a line in each epoch
//! appends a `(ValidFrom, ValidTill)` undo entry carrying the line's
//! pre-image to the coalescing buffer; a full buffer (or an epoch
//! boundary) drains as one bulk 4 KB log-block write, fenced before the
//! drain returns. The background persister is the ACS: it walks the dirty
//! lines of the oldest committed epoch, forces a drain when a line still
//! has a volatile undo entry (the bloom-probe-before-eviction rule), and
//! writes lines *in place* — always ordered behind their undo entries.
//! Once every line of epoch `E` is in place it fences, advances the
//! superblock's persist frontier, and wakes writers stalled on the
//! in-order window (`committed - persisted <= window`), which is what
//! bounds the RPO to `window` epochs.
//!
//! # Recovery
//!
//! Open reads the superblock, loads the data region, scans the log for
//! valid blocks of the current generation, and applies every entry
//! covering the persist frontier `P` (`ValidFrom <= P < ValidTill`) — the
//! multi-undo rollback. The restored lines are persisted, then one
//! superblock write bumps the *generation*, atomically discarding the
//! rolled-back timeline's log (its epoch numbers are about to be reused).
//! Execution resumes at epoch `P + 1`.
//!
//! # Concurrency
//!
//! The engine serves multiple front-end sessions at once. Protocol state
//! (frontiers, tags, the undo buffer, the log window) lives under one
//! *protocol mutex* with a logical tick clock — every telemetry emission
//! happens under it, so the exported event stream is totally ordered and
//! passes `picl audit` even with real threads racing. The volatile image
//! itself is split out into sharded `RwLock`s: reads take only their
//! shard's read lock (no protocol mutex at all), writes take the
//! protocol mutex for the whole operation (the undo append and the image
//! update must be atomic against a commit), and the persister does its
//! media I/O with *no* locks held — it bloom-probes and snapshots each
//! line under the protocol mutex, then writes the snapshots back off to
//! the side while the front end keeps executing. The snapshot discipline
//! keeps undo-before-writeback intact: every undo entry covering a
//! snapshotted line is durable (forced drain) at snapshot time, and any
//! image write landing after the snapshot logs a pre-image that chains
//! from the snapshot value, so rollback to the advancing frontier is
//! correct whether or not those later entries survive. Lock order is
//! protocol mutex, then shard.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock};

use picl_telemetry::{EventKind, Telemetry};
use picl_types::hash::FastSet;
use picl_types::{Cycle, EpochId, LineAddr, LINE_BYTES};

use crate::layout::{
    decode_log_block, encode_log_block, Geometry, LogBlock, Superblock, UndoEntry, DATA_OFFSET,
    ENTRIES_PER_BLOCK, LOG_BLOCK_BYTES, SB_BYTES, UNDO_BUFFER_ENTRIES,
};
use crate::persist::PersistOps;

const LINE: usize = LINE_BYTES as usize;

/// Anything that can go wrong talking to a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The backing medium failed (for [`crate::persist::CountingMedium`],
    /// usually the injected power failure).
    Io(String),
    /// The file is not a valid store (bad magic/checksum/geometry).
    Corrupt(String),
    /// A configuration was rejected before any I/O.
    Config(String),
    /// A KV operation could not find room or fit its payload.
    Invalid(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "medium error: {m}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StoreError::Config(m) => write!(f, "invalid configuration: {m}"),
            StoreError::Invalid(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e.to_string())
    }
}

/// Engine tuning knobs (geometry lives in the superblock once created).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Data-region capacity in 64-byte lines (used only when creating).
    pub lines: u32,
    /// Log capacity in 4 KB blocks (used only when creating).
    pub log_blocks: u32,
    /// §IV-A in-order window: max committed-but-unpersisted epochs. The
    /// RPO bound. Must be >= 1.
    pub window: u64,
    /// Testing knob: make the persister sleep this long halfway through
    /// each epoch's in-place writes, holding the crash window open for
    /// the kill -9 harness. `0` disables.
    pub persist_stall_ms: u64,
    /// Sabotage knob: silently discard undo entries instead of draining
    /// them. Crashes then lose data — proves the torture oracle is not
    /// vacuous (the `broken-noundo` of the storage engine).
    pub sabotage_skip_drain: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            lines: 1024,
            log_blocks: 160,
            window: 1,
            persist_stall_ms: 0,
            sabotage_skip_drain: false,
        }
    }
}

impl EngineConfig {
    /// Validates the knobs and derived geometry.
    ///
    /// # Errors
    ///
    /// Rejects degenerate geometry and a log too small to always make
    /// forward progress (the live window must fit `window + 2` epochs of
    /// worst-case undo traffic).
    pub fn validate(&self) -> Result<(), StoreError> {
        if self.lines == 0 {
            return Err(StoreError::Config("need at least one line".into()));
        }
        if self.window == 0 {
            return Err(StoreError::Config("window must be >= 1".into()));
        }
        let blocks_per_epoch = u64::from(self.lines).div_ceil(UNDO_BUFFER_ENTRIES as u64) + 1;
        let needed = (self.window + 2) * blocks_per_epoch + 2;
        if u64::from(self.log_blocks) < needed {
            return Err(StoreError::Config(format!(
                "log of {} blocks can wedge: {} lines at window {} need >= {} blocks",
                self.log_blocks, self.lines, self.window, needed
            )));
        }
        Ok(())
    }
}

/// Protocol counters, monotone over the engine's life.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Undo entries appended (first-write-per-line-per-epoch).
    pub undo_entries: u64,
    /// Buffer drains (bulk log-block writes).
    pub drains: u64,
    /// Drains forced by the persister hitting a volatile line.
    pub forced_drains: u64,
    /// Log blocks written.
    pub log_blocks_written: u64,
    /// Epoch commits.
    pub commits: u64,
    /// Epoch persists (frontier advances).
    pub persists: u64,
    /// In-place line write-backs by the persister.
    pub line_writebacks: u64,
    /// Persister probes that found a volatile undo entry.
    pub bloom_hits: u64,
    /// Cycles (logical ticks) writers spent stalled on the in-order
    /// window.
    pub window_stalls: u64,
}

/// What `open` did: fresh format or a recovery, with its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenReport {
    /// Whether an existing store was opened (vs freshly formatted).
    pub recovered: bool,
    /// The epoch execution resumed after (`0` for a fresh store).
    pub recovered_to: u64,
    /// Undo entries applied during rollback.
    pub entries_applied: u64,
    /// Distinct lines rolled back.
    pub lines_restored: u64,
    /// Wall-clock recovery latency in nanoseconds (log scan + rollback +
    /// generation bump).
    pub recovery_ns: u64,
}

struct EpochWork {
    eid: u64,
    lines: Vec<u32>,
}

/// Phase-one receipt from [`Engine::commit_epoch_async`]: the epoch is
/// committed and its dirty lines are queued for the persister.
#[derive(Debug, Clone, Copy)]
pub struct CommitTicket {
    /// The epoch that just committed.
    pub eid: u64,
    /// Whether `committed - persisted` exceeded the in-order window at
    /// the boundary; if so the committer owes an [`Engine::wait_window`]
    /// before the RPO bound covers further commits.
    pub window_full: bool,
}

/// How many `RwLock` shards the volatile image splits into. Sixteen is
/// plenty to keep reader collisions rare at the session counts a single
/// store serves, while keeping the persister's snapshot loop cheap.
const IMAGE_SHARDS: usize = 16;

/// The volatile image, sharded so concurrent readers never touch the
/// protocol mutex. Each shard owns a contiguous line range.
struct ImageShards {
    lines_per_shard: usize,
    shards: Vec<RwLock<Vec<u8>>>,
}

impl ImageShards {
    fn new(lines: u32, mut image: Vec<u8>) -> ImageShards {
        let lines = lines as usize;
        debug_assert_eq!(image.len(), lines * LINE);
        let shard_count = IMAGE_SHARDS.min(lines.max(1));
        let lines_per_shard = lines.div_ceil(shard_count);
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let take = (lines_per_shard * LINE).min(image.len());
            let rest = image.split_off(take);
            shards.push(RwLock::new(image));
            image = rest;
        }
        ImageShards {
            lines_per_shard,
            shards,
        }
    }

    fn locate(&self, line: u32) -> (usize, usize) {
        let line = line as usize;
        (
            line / self.lines_per_shard,
            (line % self.lines_per_shard) * LINE,
        )
    }

    fn read(&self, line: u32) -> [u8; LINE] {
        let (shard, at) = self.locate(line);
        let data = self.shards[shard].read().expect("image shard poisoned");
        let mut out = [0u8; LINE];
        out.copy_from_slice(&data[at..at + LINE]);
        out
    }

    fn write(&self, line: u32, data: &[u8; LINE]) {
        let (shard, at) = self.locate(line);
        let mut shard = self.shards[shard].write().expect("image shard poisoned");
        shard[at..at + LINE].copy_from_slice(data);
    }
}

struct Inner {
    sys_eid: u64,
    committed: u64,
    persisted: u64,
    generation: u64,
    /// Lower bound for `ValidFrom` of lines with no tag (the persist
    /// frontier at open; their current value is at least that old).
    floor: u64,
    /// Per-line epoch tag: last epoch whose first write logged an undo
    /// entry for the line (`0` = untagged).
    tags: Vec<u64>,
    buffer: Vec<UndoEntry>,
    buffer_lines: FastSet<u32>,
    dirty_cur: FastSet<u32>,
    queue: VecDeque<EpochWork>,
    log_head_seq: u64,
    log_start_seq: u64,
    /// `(seq, max_valid_till)` of live log blocks, oldest first, for GC.
    live_blocks: VecDeque<(u64, u64)>,
    tick: u64,
    stats: EngineStats,
    dead: Option<String>,
    shutdown: bool,
}

struct Shared {
    medium: Arc<dyn PersistOps>,
    geometry: Geometry,
    cfg: EngineConfig,
    telemetry: Telemetry,
    state: Mutex<Inner>,
    /// The volatile image, sharded for lock-free-of-the-mutex reads.
    image: ImageShards,
    /// Mirrors `Inner::dead` so the read path can check for death
    /// without taking the protocol mutex.
    dead_flag: AtomicBool,
    /// Wakes the persister (new committed epoch, or shutdown).
    work: Condvar,
    /// Wakes writers (persist frontier advanced, log space freed, death).
    done: Condvar,
    /// Observability instruments, attached at most once by
    /// [`Engine::enable_obs`]. Hot paths pay one relaxed load when unset.
    obs: OnceLock<crate::obs::StoreObs>,
}

impl Shared {
    fn emit(&self, st: &mut Inner, kind: EventKind) {
        st.tick += 1;
        self.telemetry.record(Cycle(st.tick), None, kind);
    }

    fn die(&self, st: &mut Inner, msg: String) -> StoreError {
        if st.dead.is_none() {
            st.dead = Some(msg.clone());
        }
        self.dead_flag.store(true, Ordering::Release);
        self.work.notify_all();
        self.done.notify_all();
        StoreError::Io(msg)
    }

    fn check_alive(&self, st: &Inner) -> Result<(), StoreError> {
        match &st.dead {
            Some(m) => Err(StoreError::Io(m.clone())),
            None => Ok(()),
        }
    }

    /// Pushes the epoch-pipeline gauges from the protocol state. Called
    /// at the boundaries that move them (commit, drain, persist cycle);
    /// one relaxed load when obs is not attached.
    fn publish_gauges(&self, st: &Inner) {
        if let Some(obs) = self.obs.get() {
            obs.open_epochs.set(st.sys_eid - st.persisted);
            obs.window_occupancy.set(st.committed - st.persisted);
            obs.undo_buffer_fill.set(st.buffer.len() as u64);
            obs.log_blocks_live.set(st.log_head_seq - st.log_start_seq);
        }
    }

    /// Drops dead log blocks off the front of the live window.
    fn gc(&self, st: &mut Inner) {
        while let Some(&(seq, max_till)) = st.live_blocks.front() {
            if max_till <= st.persisted {
                st.live_blocks.pop_front();
                debug_assert_eq!(seq, st.log_start_seq);
                st.log_start_seq = seq + 1;
            } else {
                break;
            }
        }
    }

    /// Drains the coalescing buffer as one bulk log-block write + fence.
    /// Caller must have reserved log space (writers gate on
    /// `log_blocks - 1`, leaving the last slot for the persister's forced
    /// drains).
    fn drain(&self, st: &mut Inner, forced: bool) -> Result<(), StoreError> {
        if st.buffer.is_empty() {
            return Ok(());
        }
        let entries = std::mem::take(&mut st.buffer);
        st.buffer_lines.clear();
        if self.cfg.sabotage_skip_drain {
            // Sabotage: pretend the drain happened. The entries are gone;
            // a crash now cannot roll their lines back.
            self.emit(
                st,
                EventKind::UndoDrain {
                    entries: entries.len() as u64,
                    bytes: (entries.len() * crate::layout::ENTRY_BYTES) as u64,
                    forced,
                },
            );
            st.stats.drains += 1;
            return Ok(());
        }
        debug_assert!(entries.len() <= ENTRIES_PER_BLOCK);
        let seq = st.log_head_seq;
        debug_assert!(
            seq - st.log_start_seq < u64::from(self.geometry.log_blocks),
            "log overrun: [{}, {seq}] in {} blocks",
            st.log_start_seq,
            self.geometry.log_blocks
        );
        let block = encode_log_block(st.generation, seq, &entries);
        let max_till = entries.iter().map(|e| e.valid_till).max().unwrap_or(0);
        let off = self.geometry.log_slot_off(seq);
        self.medium
            .persist(off, &block)
            .and_then(|()| self.medium.fence())
            .map_err(|e| self.die(st, e.to_string()))?;
        st.log_head_seq = seq + 1;
        st.live_blocks.push_back((seq, max_till));
        st.stats.drains += 1;
        if forced {
            st.stats.forced_drains += 1;
        }
        st.stats.log_blocks_written += 1;
        self.emit(
            st,
            EventKind::UndoDrain {
                entries: entries.len() as u64,
                bytes: LOG_BLOCK_BYTES,
                forced,
            },
        );
        if let Some(obs) = self.obs.get() {
            obs.fences.inc();
            if forced {
                obs.forced_drains.inc();
            }
        }
        self.publish_gauges(st);
        Ok(())
    }

    fn superblock(&self, st: &Inner) -> Superblock {
        Superblock {
            geometry: self.geometry,
            persisted_eid: st.persisted,
            generation: st.generation,
            log_start_seq: st.log_start_seq,
            log_head_seq: st.log_head_seq,
        }
    }

    /// Persists a run of consecutive committed epochs in three phases.
    /// Phase 1, under the protocol mutex: per line, bloom-probe the undo
    /// buffer (forced drain on a hit — undo-before-eviction) and
    /// snapshot the line's image bytes. Phase 2, with no locks held:
    /// write every snapshot in place and fence, while the front end
    /// keeps executing — this is where the stall knob and the real media
    /// latency live. Phase 3, relocked: advance the superblock's persist
    /// frontier and wake stalled writers.
    ///
    /// Taking the whole queued backlog per cycle is the group-persist
    /// half of the serving layer's pipelined group commit: the line
    /// fence and the superblock fence amortize over every backlogged
    /// epoch, so when commits outrun the medium the frontier catches up
    /// in one cycle instead of paying two fences per epoch — which is
    /// what bounds a commit leader's in-order-window wait.
    ///
    /// Persisting the *snapshots* (not the live lines) is what keeps
    /// this safe off-lock: all undo entries covering a snapshotted line
    /// are durable at snapshot time, and any image write that lands
    /// after the snapshot logs a pre-image chaining from the snapshot
    /// value, so recovery to any epoch in the run rolls the line to its
    /// end-of-epoch value whether or not those later entries survive
    /// the crash.
    fn persist_epochs(&self, works: Vec<EpochWork>) -> Result<(), StoreError> {
        let cycle_started = std::time::Instant::now();
        let total: usize = works.iter().map(|w| w.lines.len()).sum();
        let mut batch: Vec<(u32, [u8; LINE])> = Vec::with_capacity(total);
        // `(lines, snapshot tick)` per epoch, for the per-epoch events.
        let mut spans: Vec<(u64, u64)> = Vec::with_capacity(works.len());
        {
            let mut st = self.state.lock().expect("store engine poisoned");
            self.check_alive(&st)?;
            for (i, work) in works.iter().enumerate() {
                debug_assert_eq!(
                    work.eid,
                    st.persisted + 1 + i as u64,
                    "epochs persist in order"
                );
                let started = st.tick + 1;
                for &line in &work.lines {
                    if st.buffer_lines.contains(&line) {
                        // The line's newest undo entry is still volatile:
                        // writing the (possibly newer) image in place
                        // first would break undo-before-eviction. Probe +
                        // forced drain, as the hardware does on a bloom
                        // hit.
                        self.emit(
                            &mut st,
                            EventKind::BloomCheck {
                                addr: LineAddr::new(u64::from(line)),
                                hit: true,
                            },
                        );
                        st.stats.bloom_hits += 1;
                        self.drain(&mut st, true)?;
                    }
                    batch.push((line, self.image.read(line)));
                    st.stats.line_writebacks += 1;
                    self.emit(
                        &mut st,
                        EventKind::AcsLineWriteback {
                            addr: LineAddr::new(u64::from(line)),
                        },
                    );
                }
                spans.push((work.lines.len() as u64, started));
            }
        }
        let stall_at = batch.len() / 2;
        let mut io: Result<(), std::io::Error> = Ok(());
        for (i, (line, data)) in batch.iter().enumerate() {
            if let Err(e) = self.medium.persist(self.geometry.data_off(*line), data) {
                io = Err(e);
                break;
            }
            if self.cfg.persist_stall_ms > 0 && i + 1 == stall_at {
                // Hold the mid-persist crash window open (data partially
                // in place, frontier not yet advanced) for the kill
                // harness. The front end is NOT blocked: no locks held.
                std::thread::sleep(std::time::Duration::from_millis(self.cfg.persist_stall_ms));
            }
        }
        if io.is_ok() {
            io = self.medium.fence();
        }
        let mut st = self.state.lock().expect("store engine poisoned");
        if let Err(e) = io {
            return Err(self.die(&mut st, e.to_string()));
        }
        self.check_alive(&st)?;
        let prev = st.persisted;
        let last = works.last().map_or(prev, |w| w.eid);
        st.persisted = last;
        let sb = self.superblock(&st).encode();
        let sb_result = self
            .medium
            .persist(0, &sb)
            .and_then(|()| self.medium.fence());
        if let Err(e) = sb_result {
            st.persisted = prev;
            return Err(self.die(&mut st, e.to_string()));
        }
        for (work, (lines, started)) in works.iter().zip(&spans) {
            st.stats.persists += 1;
            self.emit(
                &mut st,
                EventKind::AcsScan {
                    target: EpochId(work.eid),
                    lines: *lines,
                    started: Cycle(*started),
                },
            );
            self.emit(
                &mut st,
                EventKind::EpochPersist {
                    eid: EpochId(work.eid),
                },
            );
        }
        self.gc(&mut st);
        if let Some(obs) = self.obs.get() {
            obs.cycle_ns
                .record(cycle_started.elapsed().as_nanos() as u64);
            obs.backlog_epochs.record(works.len() as u64);
            obs.lines_written.add(batch.len() as u64);
            // The line-batch fence plus the superblock fence (forced
            // drains along the way count their own).
            obs.fences.add(2);
        }
        self.publish_gauges(&st);
        self.done.notify_all();
        Ok(())
    }

    fn persister_loop(self: &Arc<Self>) {
        loop {
            let works: Vec<EpochWork> = {
                let mut st = self.state.lock().expect("store engine poisoned");
                loop {
                    if st.dead.is_some() {
                        return;
                    }
                    if !st.queue.is_empty() {
                        break st.queue.drain(..).collect();
                    }
                    if st.shutdown {
                        return;
                    }
                    st = self.work.wait(st).expect("store engine poisoned");
                }
            };
            if self.persist_epochs(works).is_err() {
                return;
            }
        }
    }
}

/// The running engine: line-granularity reads/writes, epoch commits, and
/// a background persister. One per open store file.
pub struct Engine {
    shared: Arc<Shared>,
    persister: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("geometry", &self.shared.geometry)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Opens (formatting if blank, recovering if not) the store on
    /// `medium`, then starts the persister.
    ///
    /// # Errors
    ///
    /// Fails on invalid configuration, medium errors, or a corrupt
    /// superblock.
    pub fn open(
        medium: Arc<dyn PersistOps>,
        cfg: EngineConfig,
        telemetry: Telemetry,
    ) -> Result<(Engine, OpenReport), StoreError> {
        cfg.validate()?;
        let mut head = [0u8; SB_BYTES as usize];
        medium.read(0, &mut head)?;
        let blank = head.iter().all(|&b| b == 0);
        let started = std::time::Instant::now();
        let (geometry, mut inner, image, report) = if blank {
            let geometry = Geometry {
                lines: cfg.lines,
                log_blocks: cfg.log_blocks,
            };
            if medium.len() < geometry.total_len() {
                return Err(StoreError::Config(format!(
                    "medium of {} bytes is too small for geometry needing {}",
                    medium.len(),
                    geometry.total_len()
                )));
            }
            let inner = Inner {
                sys_eid: 1,
                committed: 0,
                persisted: 0,
                generation: 1,
                floor: 0,
                tags: vec![0; geometry.lines as usize],
                buffer: Vec::new(),
                buffer_lines: FastSet::default(),
                dirty_cur: FastSet::default(),
                queue: VecDeque::new(),
                log_head_seq: 0,
                log_start_seq: 0,
                live_blocks: VecDeque::new(),
                tick: 0,
                stats: EngineStats::default(),
                dead: None,
                shutdown: false,
            };
            let sb = Superblock {
                geometry,
                persisted_eid: 0,
                generation: 1,
                log_start_seq: 0,
                log_head_seq: 0,
            };
            medium.persist(0, &sb.encode())?;
            medium.fence()?;
            let report = OpenReport {
                recovered: false,
                recovered_to: 0,
                entries_applied: 0,
                lines_restored: 0,
                recovery_ns: 0,
            };
            let image = vec![0u8; geometry.lines as usize * LINE];
            (geometry, inner, image, report)
        } else {
            let sb = Superblock::decode(&head).map_err(StoreError::Corrupt)?;
            let geometry = sb.geometry;
            if medium.len() < geometry.total_len() {
                return Err(StoreError::Corrupt(format!(
                    "medium of {} bytes truncates geometry needing {}",
                    medium.len(),
                    geometry.total_len()
                )));
            }
            let mut image = vec![0u8; geometry.lines as usize * LINE];
            medium.read(DATA_OFFSET, &mut image)?;
            let blocks = scan_log(medium.as_ref(), &sb)?;
            let point = sb.persisted_eid;
            let telemetry_tick = |n: &mut u64| -> Cycle {
                *n += 1;
                Cycle(*n)
            };
            let mut tick = 0u64;
            telemetry.record(telemetry_tick(&mut tick), None, EventKind::RecoveryStart);
            let mut restored: FastSet<u32> = FastSet::default();
            let mut applied = 0u64;
            for block in blocks.iter().rev() {
                if block.max_valid_till <= point {
                    continue;
                }
                for entry in block.entries.iter().rev() {
                    if entry.covers(point) {
                        let at = entry.line as usize * LINE;
                        image[at..at + LINE].copy_from_slice(&entry.data);
                        restored.insert(entry.line);
                        applied += 1;
                    }
                }
            }
            // Persist the rollback, then bump the generation: one
            // superblock write atomically discards the dead timeline's
            // log. A crash anywhere in here redoes the same idempotent
            // rollback from the old generation's log.
            let mut lines_restored: Vec<u32> = restored.iter().copied().collect();
            lines_restored.sort_unstable();
            for &line in &lines_restored {
                let at = line as usize * LINE;
                let mut data = [0u8; LINE];
                data.copy_from_slice(&image[at..at + LINE]);
                medium.persist(geometry.data_off(line), &data)?;
            }
            medium.fence()?;
            let new_sb = Superblock {
                geometry,
                persisted_eid: point,
                generation: sb.generation + 1,
                log_start_seq: 0,
                log_head_seq: 0,
            };
            medium.persist(0, &new_sb.encode())?;
            medium.fence()?;
            telemetry.record(
                telemetry_tick(&mut tick),
                None,
                EventKind::RecoveryDone {
                    recovered_to: EpochId(point),
                    entries: applied,
                },
            );
            let inner = Inner {
                sys_eid: point + 1,
                committed: point,
                persisted: point,
                generation: new_sb.generation,
                floor: point,
                tags: vec![0; geometry.lines as usize],
                buffer: Vec::new(),
                buffer_lines: FastSet::default(),
                dirty_cur: FastSet::default(),
                queue: VecDeque::new(),
                log_head_seq: 0,
                log_start_seq: 0,
                live_blocks: VecDeque::new(),
                tick,
                stats: EngineStats::default(),
                dead: None,
                shutdown: false,
            };
            let report = OpenReport {
                recovered: true,
                recovered_to: point,
                entries_applied: applied,
                lines_restored: lines_restored.len() as u64,
                recovery_ns: started.elapsed().as_nanos() as u64,
            };
            (geometry, inner, image, report)
        };
        let begin = EventKind::EpochBegin {
            eid: EpochId(inner.sys_eid),
        };
        inner.tick += 1;
        telemetry.record(Cycle(inner.tick), None, begin);
        let shared = Arc::new(Shared {
            medium,
            geometry,
            cfg,
            telemetry,
            state: Mutex::new(inner),
            image: ImageShards::new(geometry.lines, image),
            dead_flag: AtomicBool::new(false),
            work: Condvar::new(),
            done: Condvar::new(),
            obs: OnceLock::new(),
        });
        let worker = Arc::clone(&shared);
        let persister = std::thread::Builder::new()
            .name("picl-store-persister".into())
            .spawn(move || worker.persister_loop())
            .map_err(|e| StoreError::Io(format!("cannot spawn persister: {e}")))?;
        Ok((
            Engine {
                shared,
                persister: Some(persister),
            },
            report,
        ))
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.shared.state.lock().expect("store engine poisoned")
    }

    /// Store geometry.
    pub fn geometry(&self) -> Geometry {
        self.shared.geometry
    }

    /// Reads one line from the volatile image. Takes only the line's
    /// image-shard read lock — never the protocol mutex — so concurrent
    /// sessions read in parallel with writers and the persister.
    ///
    /// # Errors
    ///
    /// Fails after the medium has died.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn read_line(&self, line: u32) -> Result<[u8; LINE], StoreError> {
        if self.shared.dead_flag.load(Ordering::Acquire) {
            let st = self.lock();
            self.shared.check_alive(&st)?;
        }
        Ok(self.shared.image.read(line))
    }

    /// Writes one line: logs the pre-image on the epoch's first touch,
    /// then updates the volatile image.
    ///
    /// # Errors
    ///
    /// Fails after the medium has died.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn write_line(&self, line: u32, data: &[u8; LINE]) -> Result<(), StoreError> {
        let mut st = self.lock();
        self.shared.check_alive(&st)?;
        if st.tags[line as usize] != st.sys_eid {
            // Gate on log space first, keeping one slot in reserve for
            // the persister's forced drains.
            loop {
                self.shared.gc(&mut st);
                let live = st.log_head_seq - st.log_start_seq;
                if live < u64::from(self.shared.geometry.log_blocks) - 1 {
                    break;
                }
                st = self.shared.done.wait(st).expect("store engine poisoned");
                self.shared.check_alive(&st)?;
            }
            let valid_from = st.tags[line as usize].max(st.floor);
            let valid_till = st.sys_eid;
            let pre = self.shared.image.read(line);
            st.buffer.push(UndoEntry {
                line,
                valid_from,
                valid_till,
                data: pre,
            });
            st.buffer_lines.insert(line);
            st.tags[line as usize] = valid_till;
            st.dirty_cur.insert(line);
            st.stats.undo_entries += 1;
            self.shared.emit(
                &mut st,
                EventKind::UndoEntryAppended {
                    addr: LineAddr::new(u64::from(line)),
                    valid_from: EpochId(valid_from),
                    valid_till: EpochId(valid_till),
                },
            );
            if let Some(obs) = self.shared.obs.get() {
                obs.undo_buffer_fill.set(st.buffer.len() as u64);
            }
            if st.buffer.len() >= UNDO_BUFFER_ENTRIES {
                self.shared.drain(&mut st, false)?;
            }
        }
        // Still under the protocol mutex: the undo append and the image
        // update must be atomic against a commit boundary, or a crash
        // could recover a torn prefix.
        self.shared.image.write(line, data);
        Ok(())
    }

    /// Commits the executing epoch: drains the buffer, hands the epoch's
    /// dirty lines to the persister, begins the next epoch, and stalls on
    /// the in-order window. Returns the committed epoch id.
    ///
    /// This is [`Engine::commit_epoch_async`] followed by
    /// [`Engine::wait_window`] when the ticket says the window was full —
    /// callers that can overlap the stall with other work (the serving
    /// layer's group commit) use the two phases directly.
    ///
    /// # Errors
    ///
    /// Fails after the medium has died.
    pub fn commit_epoch(&self) -> Result<u64, StoreError> {
        let ticket = self.commit_epoch_async()?;
        if ticket.window_full {
            self.wait_window(ticket)?;
        }
        Ok(ticket.eid)
    }

    /// Phase one of a commit, entirely under the protocol mutex and never
    /// blocking on media: drains the undo buffer, publishes the epoch
    /// boundary, hands the epoch's dirty lines to the persister, and
    /// begins the next executing epoch. The returned ticket says whether
    /// the §IV-A in-order window was full at the boundary — if so, a
    /// caller honoring the RPO bound must [`Engine::wait_window`] before
    /// treating the commit as flow-controlled, but it may do useful work
    /// (or let other writers run) first.
    ///
    /// # Errors
    ///
    /// Fails after the medium has died.
    pub fn commit_epoch_async(&self) -> Result<CommitTicket, StoreError> {
        let mut st = self.lock();
        self.shared.check_alive(&st)?;
        self.shared.drain(&mut st, false)?;
        let eid = st.sys_eid;
        st.committed = eid;
        st.stats.commits += 1;
        self.shared
            .emit(&mut st, EventKind::EpochCommit { eid: EpochId(eid) });
        let mut lines: Vec<u32> = st.dirty_cur.drain().collect();
        lines.sort_unstable();
        st.queue.push_back(EpochWork { eid, lines });
        self.shared.work.notify_one();
        st.sys_eid = eid + 1;
        self.shared.emit(
            &mut st,
            EventKind::EpochBegin {
                eid: EpochId(eid + 1),
            },
        );
        let window_full = st.committed - st.persisted > self.shared.cfg.window;
        self.shared.publish_gauges(&st);
        Ok(CommitTicket { eid, window_full })
    }

    /// Phase two of a commit: blocks until the in-order window has room
    /// again (`committed - persisted <= window`), i.e. until the persister
    /// has caught up enough that the RPO bound holds for further commits.
    /// Returns immediately if the persister already caught up since the
    /// ticket was issued.
    ///
    /// # Errors
    ///
    /// Fails after the medium has died.
    pub fn wait_window(&self, ticket: CommitTicket) -> Result<(), StoreError> {
        let mut st = self.lock();
        let mut waited: Option<std::time::Instant> = None;
        while st.committed - st.persisted > self.shared.cfg.window && st.dead.is_none() {
            waited.get_or_insert_with(std::time::Instant::now);
            st.stats.window_stalls += 1;
            self.shared.emit(
                &mut st,
                EventKind::Marker {
                    name: "inorder_window_stall",
                    value: ticket.eid,
                },
            );
            st = self.shared.done.wait(st).expect("store engine poisoned");
        }
        if let (Some(obs), Some(t0)) = (self.shared.obs.get(), waited) {
            obs.window_wait_ns.record(t0.elapsed().as_nanos() as u64);
        }
        self.shared.check_alive(&st)
    }

    /// How many shards the volatile image splits into. The serving layer
    /// reuses this granularity for its key-shard mutation locks.
    pub fn image_shard_count(&self) -> usize {
        self.shared.image.shards.len()
    }

    /// Which image shard owns `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn image_shard_of_line(&self, line: u32) -> usize {
        assert!(line < self.shared.geometry.lines, "line out of range");
        self.shared.image.locate(line).0
    }

    /// The `[start, end)` line range owned by `shard` (empty for the
    /// trailing shards of a table smaller than the shard count).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= image_shard_count()`.
    pub fn image_shard_span(&self, shard: usize) -> (u32, u32) {
        assert!(shard < self.shared.image.shards.len(), "shard out of range");
        let lines = self.shared.geometry.lines as usize;
        let per = self.shared.image.lines_per_shard;
        let start = (shard * per).min(lines);
        let end = ((shard + 1) * per).min(lines);
        (start as u32, end as u32)
    }

    /// Attaches observability instruments: persister cycle timing,
    /// fence/line counters, window-wait histogram, and the
    /// epoch-pipeline gauges (open epochs, window occupancy, undo-buffer
    /// fill, live log blocks). Idempotent per engine — the first
    /// registry wins; until called, instrumented paths cost one relaxed
    /// atomic load.
    pub fn enable_obs(&self, registry: &picl_obs::MetricsRegistry) {
        let _ = self
            .shared
            .obs
            .set(crate::obs::StoreObs::register(registry));
        self.shared.publish_gauges(&self.lock());
    }

    /// `(executing, committed, persisted)` epoch frontiers.
    pub fn frontiers(&self) -> (u64, u64, u64) {
        let st = self.lock();
        (st.sys_eid, st.committed, st.persisted)
    }

    /// Protocol counters so far.
    pub fn stats(&self) -> EngineStats {
        self.lock().stats
    }

    /// Blocks until every committed epoch has persisted (or the medium
    /// dies).
    ///
    /// # Errors
    ///
    /// Fails after the medium has died.
    pub fn drain_persister(&self) -> Result<(), StoreError> {
        let mut st = self.lock();
        while st.persisted < st.committed && st.dead.is_none() {
            st = self.shared.done.wait(st).expect("store engine poisoned");
        }
        self.shared.check_alive(&st)
    }

    /// Stops the persister after it finishes the committed backlog, and
    /// returns the final counters. Work in the executing (uncommitted)
    /// epoch is deliberately left volatile — exactly what a crash would
    /// lose.
    ///
    /// # Errors
    ///
    /// Fails (after still shutting down) if the medium died.
    pub fn close(mut self) -> Result<EngineStats, StoreError> {
        let result = {
            let mut st = self.lock();
            st.shutdown = true;
            self.shared.work.notify_all();
            self.shared.check_alive(&st).map(|()| st.stats)
        };
        if let Some(handle) = self.persister.take() {
            let _ = handle.join();
        }
        // Death may have happened while the backlog drained.
        let st = self.lock();
        self.shared.check_alive(&st)?;
        result
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if let Some(handle) = self.persister.take() {
            {
                let mut st = self.lock();
                st.shutdown = true;
                self.shared.work.notify_all();
            }
            let _ = handle.join();
        }
    }
}

/// Collects every valid log block of the superblock's generation whose
/// sequence number is still inside the live window, sorted by sequence.
fn scan_log(medium: &dyn PersistOps, sb: &Superblock) -> Result<Vec<LogBlock>, StoreError> {
    let mut blocks = Vec::new();
    let mut buf = vec![0u8; LOG_BLOCK_BYTES as usize];
    for slot in 0..sb.geometry.log_blocks {
        let off = sb.geometry.log_slot_off(u64::from(slot));
        medium.read(off, &mut buf)?;
        if let Some(block) = decode_log_block(&buf, sb.generation) {
            if block.seq >= sb.log_start_seq {
                blocks.push(block);
            }
        }
    }
    blocks.sort_by_key(|b| b.seq);
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::CountingMedium;

    fn small_cfg() -> EngineConfig {
        EngineConfig {
            lines: 64,
            log_blocks: 16,
            ..EngineConfig::default()
        }
    }

    fn medium_for(cfg: &EngineConfig) -> Arc<CountingMedium> {
        let g = Geometry {
            lines: cfg.lines,
            log_blocks: cfg.log_blocks,
        };
        Arc::new(CountingMedium::new(g.total_len()))
    }

    fn line_of(b: u8) -> [u8; LINE] {
        [b; LINE]
    }

    #[test]
    fn config_validation_rejects_wedgeable_logs() {
        assert!(EngineConfig::default().validate().is_ok());
        let tiny = EngineConfig {
            lines: 4096,
            log_blocks: 8,
            ..EngineConfig::default()
        };
        assert!(matches!(tiny.validate(), Err(StoreError::Config(_))));
        let no_window = EngineConfig {
            window: 0,
            ..EngineConfig::default()
        };
        assert!(no_window.validate().is_err());
    }

    #[test]
    fn fresh_store_reads_zeros_and_commits() {
        let cfg = small_cfg();
        let medium = medium_for(&cfg);
        let (engine, report) = Engine::open(medium, cfg, Telemetry::off()).unwrap();
        assert!(!report.recovered);
        assert_eq!(engine.read_line(7).unwrap(), [0u8; LINE]);
        engine.write_line(7, &line_of(0xAB)).unwrap();
        assert_eq!(engine.read_line(7).unwrap(), line_of(0xAB));
        let eid = engine.commit_epoch().unwrap();
        assert_eq!(eid, 1);
        engine.drain_persister().unwrap();
        let (sys, committed, persisted) = engine.frontiers();
        assert_eq!((sys, committed, persisted), (2, 1, 1));
        let stats = engine.close().unwrap();
        assert_eq!(stats.undo_entries, 1);
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.persists, 1);
        assert_eq!(stats.line_writebacks, 1);
    }

    #[test]
    fn clean_reopen_recovers_everything_committed() {
        let cfg = small_cfg();
        let medium = medium_for(&cfg);
        {
            let (engine, _) =
                Engine::open(Arc::clone(&medium) as _, cfg.clone(), Telemetry::off()).unwrap();
            for e in 0..3u8 {
                engine.write_line(u32::from(e), &line_of(e + 1)).unwrap();
                engine.commit_epoch().unwrap();
            }
            engine.close().unwrap();
        }
        let survivor = Arc::new(CountingMedium::from_image(medium.surviving_image()));
        let (engine, report) = Engine::open(survivor, cfg, Telemetry::off()).unwrap();
        assert!(report.recovered);
        assert_eq!(report.recovered_to, 3);
        for e in 0..3u8 {
            assert_eq!(engine.read_line(u32::from(e)).unwrap(), line_of(e + 1));
        }
        let (sys, _, persisted) = engine.frontiers();
        assert_eq!(sys, 4);
        assert_eq!(persisted, 3);
    }

    #[test]
    fn uncommitted_epoch_rolls_back_on_recovery() {
        let cfg = small_cfg();
        let medium = medium_for(&cfg);
        {
            let (engine, _) =
                Engine::open(Arc::clone(&medium) as _, cfg.clone(), Telemetry::off()).unwrap();
            engine.write_line(0, &line_of(1)).unwrap();
            engine.commit_epoch().unwrap();
            engine.drain_persister().unwrap();
            // Epoch 2 dirties line 0 again but never commits; the forced
            // persister writeback of epoch 1 already put epoch-2 bytes in
            // place, so recovery must roll them back via the undo log.
            engine.write_line(0, &line_of(9)).unwrap();
            // Force the entry durable so the crash has something to undo.
            let mut st = engine.lock();
            engine.shared.drain(&mut st, true).unwrap();
            drop(st);
            // Simulate the torn state: persist line 0's volatile (epoch 2)
            // bytes in place, as a later ACS pass would.
            engine
                .shared
                .medium
                .persist(engine.geometry().data_off(0), &line_of(9))
                .unwrap();
            engine.shared.medium.fence().unwrap();
            // Abandon without close: the kill.
        }
        let survivor = Arc::new(CountingMedium::from_image(medium.surviving_image()));
        let (engine, report) = Engine::open(survivor, cfg, Telemetry::off()).unwrap();
        assert!(report.recovered);
        assert_eq!(report.recovered_to, 1);
        assert!(report.entries_applied >= 1);
        assert_eq!(engine.read_line(0).unwrap(), line_of(1), "epoch 2 undone");
    }

    #[test]
    fn window_bounds_commit_minus_persist() {
        let cfg = EngineConfig {
            window: 2,
            log_blocks: 32,
            ..small_cfg()
        };
        let medium = medium_for(&cfg);
        let (engine, _) = Engine::open(medium, cfg, Telemetry::off()).unwrap();
        for e in 0..20u32 {
            engine.write_line(e % 8, &line_of(e as u8)).unwrap();
            engine.commit_epoch().unwrap();
            let (_, committed, persisted) = engine.frontiers();
            assert!(
                committed - persisted <= 2,
                "window violated: committed {committed}, persisted {persisted}"
            );
        }
        engine.close().unwrap();
    }

    #[test]
    fn async_commit_defers_the_window_wait() {
        let cfg = EngineConfig {
            window: 2,
            log_blocks: 32,
            persist_stall_ms: 20,
            ..small_cfg()
        };
        let medium = medium_for(&cfg);
        let (engine, _) = Engine::open(medium, cfg, Telemetry::off()).unwrap();
        // With the persister stalled 20 ms per epoch (the stall needs a
        // batch of at least two lines), phase-one commits must return
        // immediately and report when the window fills; only wait_window
        // blocks.
        let mut full_seen = false;
        for e in 0..6u32 {
            engine.write_line(e % 8, &line_of(e as u8)).unwrap();
            engine.write_line((e + 1) % 8, &line_of(e as u8)).unwrap();
            let t0 = std::time::Instant::now();
            let ticket = engine.commit_epoch_async().unwrap();
            assert_eq!(ticket.eid, u64::from(e) + 1);
            assert!(
                t0.elapsed() < std::time::Duration::from_millis(15),
                "phase one stalled on the persister"
            );
            if ticket.window_full {
                full_seen = true;
                engine.wait_window(ticket).unwrap();
                let (_, committed, persisted) = engine.frontiers();
                assert!(committed - persisted <= 2, "wait_window under-waited");
            }
        }
        assert!(full_seen, "a 20 ms persist stall never filled window 2");
        // A ticket whose window already drained returns immediately.
        engine.drain_persister().unwrap();
        let ticket = engine.commit_epoch_async().unwrap();
        engine.wait_window(ticket).unwrap();
        engine.close().unwrap();
    }

    #[test]
    fn image_shard_spans_tile_the_table() {
        let cfg = small_cfg();
        let medium = medium_for(&cfg);
        let (engine, _) = Engine::open(medium, cfg.clone(), Telemetry::off()).unwrap();
        let mut next = 0u32;
        for shard in 0..engine.image_shard_count() {
            let (start, end) = engine.image_shard_span(shard);
            assert_eq!(start, next, "spans must tile contiguously");
            assert!(end >= start);
            for line in start..end {
                assert_eq!(engine.image_shard_of_line(line), shard);
            }
            next = end;
        }
        assert_eq!(next, cfg.lines, "spans must cover every line");
        engine.close().unwrap();
    }

    #[test]
    fn medium_death_surfaces_as_errors_everywhere() {
        let cfg = small_cfg();
        let medium = medium_for(&cfg);
        let (engine, _) = Engine::open(Arc::clone(&medium) as _, cfg, Telemetry::off()).unwrap();
        engine.write_line(0, &line_of(1)).unwrap();
        engine.commit_epoch().unwrap();
        engine.drain_persister().unwrap();
        let ops_so_far = medium.stats().persists + medium.stats().fences;
        medium.kill_at_op(ops_so_far); // the very next medium op dies
        engine.write_line(1, &line_of(2)).unwrap();
        let err = engine.commit_epoch();
        // The commit itself (drain) or the persister hits the dead medium;
        // either way the engine is now wedged and says so.
        let wedged = err.is_err() || engine.drain_persister().is_err();
        assert!(wedged, "death not observed");
        assert!(matches!(engine.close(), Err(StoreError::Io(_))));
    }

    #[test]
    fn corrupt_superblock_is_rejected() {
        let cfg = small_cfg();
        let medium = medium_for(&cfg);
        medium.persist(0, &[0xFFu8; 64]).unwrap();
        medium.fence().unwrap();
        let err = Engine::open(medium, cfg, Telemetry::off()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn telemetry_stream_is_ordered_and_complete() {
        let cfg = small_cfg();
        let medium = medium_for(&cfg);
        let telemetry = Telemetry::new(0, 1 << 14);
        let (engine, _) = Engine::open(medium, cfg, telemetry.clone()).unwrap();
        for e in 0..4u32 {
            engine.write_line(e, &line_of(1)).unwrap();
            engine.write_line(e, &line_of(2)).unwrap(); // second write: no new entry
            engine.commit_epoch().unwrap();
        }
        engine.drain_persister().unwrap();
        engine.close().unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.dropped, 0);
        let mut last = 0;
        for ev in &snap.events {
            assert!(ev.at.raw() > last, "ticks strictly increase");
            last = ev.at.raw();
        }
        let count = |pred: &dyn Fn(&EventKind) -> bool| {
            snap.events.iter().filter(|e| pred(&e.kind)).count()
        };
        assert_eq!(count(&|k| matches!(k, EventKind::EpochCommit { .. })), 4);
        assert_eq!(count(&|k| matches!(k, EventKind::EpochPersist { .. })), 4);
        assert_eq!(
            count(&|k| matches!(k, EventKind::UndoEntryAppended { .. })),
            4,
            "one entry per (line, epoch) despite double writes"
        );
    }
}
