//! Seeded KV workloads and the in-memory model oracle.
//!
//! Torture testing needs three things to agree: the operations a store
//! executes, the operations the crash-recovery oracle replays, and the
//! operations the simulator adapter lowers to a trace. All three draw
//! from [`generate`], which is a pure function of `(seed, op index)` —
//! a killed child and its examining parent reconstruct the identical
//! stream independently.

use std::collections::BTreeMap;

use picl_types::rng::Rng;

use crate::engine::StoreError;
use crate::kv::Kv;

/// One logical KV operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert or overwrite.
    Put(Vec<u8>, Vec<u8>),
    /// Remove if present.
    Delete(Vec<u8>),
    /// Lookup.
    Get(Vec<u8>),
}

/// The key a workload's `i`-th slot name maps to. Small keyspace on
/// purpose: overwrites and delete-then-reinsert are the interesting
/// undo-log cases.
fn key(idx: u64) -> Vec<u8> {
    format!("key-{idx:04}").into_bytes()
}

/// Generates `count` seeded operations over `key_space` distinct keys.
/// Mix: ~55% put, ~15% delete, ~30% get. Values encode `(seed, op index)`
/// so any torn or misplaced write is visible to the oracle. Values stay
/// within one slot's head capacity (the seed is folded to 24 bits) so
/// the store-vs-simulator differential sees exactly one dirty line per
/// op; spanning records are exercised by the serve-layer streams.
pub fn generate(seed: u64, count: u64, key_space: u64) -> Vec<Op> {
    assert!(key_space > 0, "need at least one key");
    let mut rng = Rng::new(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut ops = Vec::with_capacity(count as usize);
    for i in 0..count {
        let k = key(rng.below(key_space));
        let roll = rng.below(100);
        if roll < 55 {
            let v = format!("s{:06x}-i{i:06}", seed & 0xFF_FFFF).into_bytes();
            ops.push(Op::Put(k, v));
        } else if roll < 70 {
            ops.push(Op::Delete(k));
        } else {
            ops.push(Op::Get(k));
        }
    }
    ops
}

/// The in-memory reference state: what a correct KV holds after a prefix
/// of operations.
pub type Model = BTreeMap<Vec<u8>, Vec<u8>>;

/// Applies one operation to the model.
pub fn apply_to_model(model: &mut Model, op: &Op) {
    match op {
        Op::Put(k, v) => {
            model.insert(k.clone(), v.clone());
        }
        Op::Delete(k) => {
            model.remove(k);
        }
        Op::Get(_) => {}
    }
}

/// The model after the first `count` operations of a seeded workload.
pub fn model_after(seed: u64, count: u64, key_space: u64) -> Model {
    let mut model = Model::new();
    for op in generate(seed, count, key_space) {
        apply_to_model(&mut model, &op);
    }
    model
}

/// Runs one operation against a live store.
///
/// # Errors
///
/// Propagates store failures (including injected medium death).
pub fn apply_to_store(kv: &mut Kv, op: &Op) -> Result<(), StoreError> {
    match op {
        Op::Put(k, v) => kv.put(k, v).map(|_| ()),
        Op::Delete(k) => kv.delete(k).map(|_| ()),
        Op::Get(k) => kv.get(k).map(|_| ()),
    }
}

/// Parses a workload file: one operation per line, `put KEY VALUE` /
/// `del KEY` / `get KEY`, with `#` comments and blank lines ignored.
/// Keys and values are the literal (whitespace-free) tokens.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input.
pub fn parse_workload(text: &str) -> Result<Vec<Op>, String> {
    let mut ops = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let verb = parts.next().unwrap_or_default();
        let op = match verb {
            "put" => {
                let k = parts.next();
                let v = parts.next();
                match (k, v) {
                    (Some(k), Some(v)) => Op::Put(k.into(), v.into()),
                    _ => return Err(format!("line {}: put needs KEY VALUE", lineno + 1)),
                }
            }
            "del" | "delete" => match parts.next() {
                Some(k) => Op::Delete(k.into()),
                None => return Err(format!("line {}: {verb} needs KEY", lineno + 1)),
            },
            "get" => match parts.next() {
                Some(k) => Op::Get(k.into()),
                None => return Err(format!("line {}: get needs KEY", lineno + 1)),
            },
            other => {
                return Err(format!(
                    "line {}: unknown operation {other:?} (want put/del/get)",
                    lineno + 1
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("line {}: trailing tokens", lineno + 1));
        }
        ops.push(op);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7, 500, 32);
        let b = generate(7, 500, 32);
        assert_eq!(a, b);
        let c = generate(8, 500, 32);
        assert_ne!(a, c);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn mix_contains_all_op_kinds() {
        let ops = generate(1, 1000, 16);
        let puts = ops.iter().filter(|o| matches!(o, Op::Put(..))).count();
        let dels = ops.iter().filter(|o| matches!(o, Op::Delete(..))).count();
        let gets = ops.iter().filter(|o| matches!(o, Op::Get(..))).count();
        assert!(
            puts > 400 && dels > 50 && gets > 150,
            "{puts}/{dels}/{gets}"
        );
    }

    #[test]
    fn model_prefix_is_monotone_in_count() {
        // model_after(n) must equal replaying n ops from scratch — the
        // generator is a pure function of the prefix length.
        let full = generate(3, 200, 8);
        let mut incremental = Model::new();
        for (i, op) in full.iter().enumerate() {
            apply_to_model(&mut incremental, op);
            if (i + 1) % 50 == 0 {
                assert_eq!(incremental, model_after(3, (i + 1) as u64, 8));
            }
        }
    }

    #[test]
    fn workload_file_round_trip() {
        let text = "\
# demo
put alpha one

get alpha
del alpha
";
        let ops = parse_workload(text).unwrap();
        assert_eq!(
            ops,
            vec![
                Op::Put(b"alpha".to_vec(), b"one".to_vec()),
                Op::Get(b"alpha".to_vec()),
                Op::Delete(b"alpha".to_vec()),
            ]
        );
        assert!(parse_workload("put onlykey").is_err());
        assert!(parse_workload("frobnicate x").is_err());
        assert!(parse_workload("get a b").is_err());
    }
}
