//! An embedded key-value API over the PiCL engine.
//!
//! Software transparency is the point of the paper, so the KV layer does
//! nothing clever for persistence: the hash table — slot states, keys,
//! values, tombstones — lives *in* the persistent line array and is
//! mutated with plain [`Engine::write_line`] calls, exactly as a legacy
//! in-memory store would mutate DRAM. Durability and crash consistency
//! come entirely from the engine's undo logging underneath; recovery
//! brings back the whole table (index included) at the persist frontier
//! with no KV-level replay.
//!
//! Each 64-byte line is one open-addressing slot:
//!
//! ```text
//! [ state u8 | klen u8 | vlen u8 | pad u8 | key 28B | value 32B ]
//! ```
//!
//! probed linearly from `fnv1a_64(key) % lines`.

use std::sync::Arc;

use picl_telemetry::Telemetry;
use picl_types::hash::fnv1a_64;
use picl_types::LINE_BYTES;

use crate::engine::{Engine, EngineConfig, EngineStats, OpenReport, StoreError};
use crate::persist::PersistOps;

const LINE: usize = LINE_BYTES as usize;

const SLOT_EMPTY: u8 = 0;
const SLOT_LIVE: u8 = 1;
const SLOT_TOMBSTONE: u8 = 2;

/// Maximum key length a slot can hold.
pub const MAX_KEY_BYTES: usize = 28;
/// Maximum value length a slot can hold.
pub const MAX_VALUE_BYTES: usize = 32;

const KEY_AT: usize = 4;
const VAL_AT: usize = KEY_AT + MAX_KEY_BYTES;

/// Sorted `(key, value)` pairs as returned by [`Kv::scan`].
pub type KvPairs = Vec<(Vec<u8>, Vec<u8>)>;

/// One logical access the KV layer made, for the trace adapter: the slot
/// line an operation landed on and whether it wrote it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Slot line the operation terminated at.
    pub line: u32,
    /// Whether the slot was written (put/delete) vs only probed (get).
    pub write: bool,
}

/// The embedded store: a KV API with epoch commits every
/// `ops_per_epoch` operations.
pub struct Kv {
    engine: Engine,
    lines: u32,
    ops_per_epoch: u64,
    ops: u64,
    access_log: Option<Vec<Access>>,
}

impl std::fmt::Debug for Kv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kv")
            .field("lines", &self.lines)
            .field("ops_per_epoch", &self.ops_per_epoch)
            .field("ops", &self.ops)
            .finish_non_exhaustive()
    }
}

impl Kv {
    /// Opens a store and wraps it in the KV API. `ops_per_epoch` sets the
    /// epoch granularity: every that-many operations (gets included — an
    /// epoch is a slice of *execution*, not of mutations) one epoch
    /// commits and the next begins.
    ///
    /// # Errors
    ///
    /// Propagates engine open/recovery failures; rejects
    /// `ops_per_epoch == 0`.
    pub fn open(
        medium: Arc<dyn PersistOps>,
        cfg: EngineConfig,
        telemetry: Telemetry,
        ops_per_epoch: u64,
    ) -> Result<(Kv, OpenReport), StoreError> {
        if ops_per_epoch == 0 {
            return Err(StoreError::Config("ops_per_epoch must be >= 1".into()));
        }
        let (engine, report) = Engine::open(medium, cfg, telemetry)?;
        let lines = engine.geometry().lines;
        Ok((
            Kv {
                engine,
                lines,
                ops_per_epoch,
                ops: 0,
                access_log: None,
            },
            report,
        ))
    }

    /// Starts recording one [`Access`] per operation (for the
    /// store-vs-simulator adapter).
    pub fn enable_access_log(&mut self) {
        self.access_log = Some(Vec::new());
    }

    /// Takes the recorded accesses, leaving the log enabled and empty.
    pub fn take_access_log(&mut self) -> Vec<Access> {
        match &mut self.access_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// The underlying engine (frontiers, stats, manual commits).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Operations executed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    fn slot_of(&self, key: &[u8]) -> u32 {
        (fnv1a_64(key) % u64::from(self.lines)) as u32
    }

    fn decode_slot(slot: &[u8; LINE]) -> (u8, &[u8], &[u8]) {
        let klen = (slot[1] as usize).min(MAX_KEY_BYTES);
        let vlen = (slot[2] as usize).min(MAX_VALUE_BYTES);
        (
            slot[0],
            &slot[KEY_AT..KEY_AT + klen],
            &slot[VAL_AT..VAL_AT + vlen],
        )
    }

    fn check_key(key: &[u8]) -> Result<(), StoreError> {
        if key.is_empty() || key.len() > MAX_KEY_BYTES {
            return Err(StoreError::Invalid(format!(
                "key length {} not in 1..={MAX_KEY_BYTES}",
                key.len()
            )));
        }
        Ok(())
    }

    /// Probes for `key`. Returns `(line, Some(value))` of the live slot
    /// holding it, or `(line, None)` where `line` is the terminating slot
    /// (first empty, or first tombstone usable for insert).
    fn probe(&self, key: &[u8]) -> Result<(u32, Option<Vec<u8>>), StoreError> {
        let start = self.slot_of(key);
        let mut first_tombstone: Option<u32> = None;
        for i in 0..self.lines {
            let line = (start + i) % self.lines;
            let slot = self.engine.read_line(line)?;
            let (state, k, v) = Self::decode_slot(&slot);
            match state {
                SLOT_LIVE if k == key => return Ok((line, Some(v.to_vec()))),
                SLOT_EMPTY => return Ok((first_tombstone.unwrap_or(line), None)),
                SLOT_TOMBSTONE if first_tombstone.is_none() => first_tombstone = Some(line),
                _ => {}
            }
        }
        match first_tombstone {
            Some(line) => Ok((line, None)),
            None => Err(StoreError::Invalid("table full".into())),
        }
    }

    fn note(&mut self, line: u32, write: bool) {
        if let Some(log) = &mut self.access_log {
            log.push(Access { line, write });
        }
    }

    fn tick_epoch(&mut self) -> Result<Option<u64>, StoreError> {
        self.ops += 1;
        if self.ops.is_multiple_of(self.ops_per_epoch) {
            return self.engine.commit_epoch().map(Some);
        }
        Ok(None)
    }

    /// Inserts or overwrites `key`. Returns the epoch committed by this
    /// operation, if it fell on a boundary.
    ///
    /// # Errors
    ///
    /// Rejects oversized keys/values and a full table; propagates engine
    /// failures.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<Option<u64>, StoreError> {
        Self::check_key(key)?;
        if value.len() > MAX_VALUE_BYTES {
            return Err(StoreError::Invalid(format!(
                "value length {} exceeds {MAX_VALUE_BYTES}",
                value.len()
            )));
        }
        let (line, _) = self.probe(key)?;
        let mut slot = [0u8; LINE];
        slot[0] = SLOT_LIVE;
        slot[1] = key.len() as u8;
        slot[2] = value.len() as u8;
        slot[KEY_AT..KEY_AT + key.len()].copy_from_slice(key);
        slot[VAL_AT..VAL_AT + value.len()].copy_from_slice(value);
        self.engine.write_line(line, &slot)?;
        self.note(line, true);
        self.tick_epoch()
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        Self::check_key(key)?;
        let (line, found) = self.probe(key)?;
        self.note(line, false);
        self.tick_epoch()?;
        Ok(found)
    }

    /// Deletes `key` if present. Returns `(was_present, committed)`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn delete(&mut self, key: &[u8]) -> Result<(bool, Option<u64>), StoreError> {
        Self::check_key(key)?;
        let (line, found) = self.probe(key)?;
        if found.is_some() {
            let mut slot = self.engine.read_line(line)?;
            slot[0] = SLOT_TOMBSTONE;
            self.engine.write_line(line, &slot)?;
            self.note(line, true);
        } else {
            self.note(line, false);
        }
        let committed = self.tick_epoch()?;
        Ok((found.is_some(), committed))
    }

    /// All live pairs, sorted by key. Reads the volatile image directly —
    /// a scan is not a logical operation and does not advance the epoch
    /// clock.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn scan(&self) -> Result<KvPairs, StoreError> {
        let mut out = Vec::new();
        for line in 0..self.lines {
            let slot = self.engine.read_line(line)?;
            let (state, k, v) = Self::decode_slot(&slot);
            if state == SLOT_LIVE {
                out.push((k.to_vec(), v.to_vec()));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Commits the executing epoch regardless of the op counter, and
    /// realigns the counter to the boundary.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn commit(&mut self) -> Result<u64, StoreError> {
        self.ops = self.ops.next_multiple_of(self.ops_per_epoch);
        self.engine.commit_epoch()
    }

    /// Closes the store (persists the committed backlog).
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn close(self) -> Result<EngineStats, StoreError> {
        self.engine.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Geometry;
    use crate::persist::CountingMedium;

    fn open_kv(lines: u32, ops_per_epoch: u64) -> (Kv, Arc<CountingMedium>) {
        let cfg = EngineConfig {
            lines,
            log_blocks: 32,
            ..EngineConfig::default()
        };
        let g = Geometry {
            lines,
            log_blocks: cfg.log_blocks,
        };
        let medium = Arc::new(CountingMedium::new(g.total_len()));
        let (kv, _) = Kv::open(
            Arc::clone(&medium) as _,
            cfg,
            Telemetry::off(),
            ops_per_epoch,
        )
        .unwrap();
        (kv, medium)
    }

    #[test]
    fn put_get_delete_round_trip() {
        let (mut kv, _) = open_kv(64, 8);
        assert_eq!(kv.get(b"missing").unwrap(), None);
        kv.put(b"alpha", b"one").unwrap();
        kv.put(b"beta", b"two").unwrap();
        assert_eq!(kv.get(b"alpha").unwrap(), Some(b"one".to_vec()));
        kv.put(b"alpha", b"uno").unwrap();
        assert_eq!(kv.get(b"alpha").unwrap(), Some(b"uno".to_vec()));
        let (present, _) = kv.delete(b"alpha").unwrap();
        assert!(present);
        assert_eq!(kv.get(b"alpha").unwrap(), None);
        let (present, _) = kv.delete(b"alpha").unwrap();
        assert!(!present);
        assert_eq!(
            kv.scan().unwrap(),
            vec![(b"beta".to_vec(), b"two".to_vec())]
        );
    }

    #[test]
    fn epochs_commit_every_n_ops() {
        let (mut kv, _) = open_kv(64, 4);
        let mut commits = Vec::new();
        for i in 0..12u8 {
            if let Some(eid) = kv.put(format!("k{i}").as_bytes(), b"v").unwrap() {
                commits.push(eid);
            }
        }
        assert_eq!(commits, vec![1, 2, 3]);
    }

    #[test]
    fn collisions_probe_and_tombstones_reuse() {
        // A 4-slot table forces collisions fast.
        let (mut kv, _) = open_kv(4, 100);
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        kv.put(b"c", b"3").unwrap();
        assert_eq!(kv.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(kv.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(kv.get(b"c").unwrap(), Some(b"3".to_vec()));
        kv.delete(b"b").unwrap();
        // c may live past b's tombstone; lookups must keep probing.
        assert_eq!(kv.get(b"c").unwrap(), Some(b"3".to_vec()));
        kv.put(b"d", b"4").unwrap();
        assert_eq!(kv.get(b"d").unwrap(), Some(b"4".to_vec()));
        // Full table rejects a fifth key.
        kv.put(b"e", b"5").unwrap();
        assert!(matches!(kv.put(b"f", b"6"), Err(StoreError::Invalid(_))));
    }

    #[test]
    fn oversized_keys_and_values_rejected() {
        let (mut kv, _) = open_kv(64, 8);
        assert!(kv.put(&[b'k'; 29], b"v").is_err());
        assert!(kv.put(b"k", &[b'v'; 33]).is_err());
        assert!(kv.put(b"", b"v").is_err());
        assert!(kv.put(&[b'k'; 28], &[b'v'; 32]).is_ok());
    }

    #[test]
    fn kv_survives_reopen() {
        let cfg = EngineConfig {
            lines: 64,
            log_blocks: 32,
            ..EngineConfig::default()
        };
        let g = Geometry {
            lines: 64,
            log_blocks: 32,
        };
        let medium = Arc::new(CountingMedium::new(g.total_len()));
        {
            let (mut kv, _) =
                Kv::open(Arc::clone(&medium) as _, cfg.clone(), Telemetry::off(), 4).unwrap();
            kv.put(b"persist", b"me").unwrap();
            kv.commit().unwrap();
            kv.close().unwrap();
        }
        let survivor = Arc::new(CountingMedium::from_image(medium.surviving_image()));
        let (mut kv, report) = Kv::open(survivor, cfg, Telemetry::off(), 4).unwrap();
        assert!(report.recovered);
        assert_eq!(kv.get(b"persist").unwrap(), Some(b"me".to_vec()));
    }

    #[test]
    fn access_log_records_one_entry_per_op() {
        let (mut kv, _) = open_kv(64, 100);
        kv.enable_access_log();
        kv.put(b"a", b"1").unwrap();
        kv.get(b"a").unwrap();
        kv.delete(b"a").unwrap();
        kv.get(b"a").unwrap();
        let log = kv.take_access_log();
        assert_eq!(log.len(), 4);
        assert!(log[0].write);
        assert!(!log[1].write);
        assert!(log[2].write);
        assert!(!log[3].write);
        assert_eq!(log[0].line, log[1].line);
    }
}
