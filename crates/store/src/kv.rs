//! An embedded key-value API over the PiCL engine.
//!
//! Software transparency is the point of the paper, so the KV layer does
//! nothing clever for persistence: the hash table — slot states, keys,
//! values, tombstones — lives *in* the persistent line array and is
//! mutated with plain [`Engine::write_line`] calls, exactly as a legacy
//! in-memory store would mutate DRAM. Durability and crash consistency
//! come entirely from the engine's undo logging underneath; recovery
//! brings back the whole table (index included) at the persist frontier
//! with no KV-level replay.
//!
//! The slot layout (open addressing, values spanning up to five slots
//! via explicit continuation pointers) lives in [`crate::slots`]; this
//! type adds the epoch clock — every `ops_per_epoch` operations one
//! epoch commits — and the per-op access log the trace adapter consumes.

use std::sync::Arc;

use picl_telemetry::Telemetry;

use crate::engine::{Engine, EngineConfig, EngineStats, OpenReport, StoreError};
use crate::persist::PersistOps;
use crate::slots::{self, Deletion, Lookup};

pub use crate::slots::{MAX_KEY_BYTES, MAX_VALUE_BYTES};

/// Sorted `(key, value)` pairs as returned by [`Kv::scan`].
pub type KvPairs = Vec<(Vec<u8>, Vec<u8>)>;

/// One logical access the KV layer made, for the trace adapter: the slot
/// line an operation landed on and whether it wrote it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Slot line the operation terminated at (a spanning record reports
    /// its head slot).
    pub line: u32,
    /// Whether the slot was written (put/delete) vs only probed (get).
    pub write: bool,
}

/// The embedded store: a KV API with epoch commits every
/// `ops_per_epoch` operations.
pub struct Kv {
    engine: Engine,
    ops_per_epoch: u64,
    ops: u64,
    access_log: Option<Vec<Access>>,
}

impl std::fmt::Debug for Kv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kv")
            .field("ops_per_epoch", &self.ops_per_epoch)
            .field("ops", &self.ops)
            .finish_non_exhaustive()
    }
}

impl Kv {
    /// Opens a store and wraps it in the KV API. `ops_per_epoch` sets the
    /// epoch granularity: every that-many operations (gets included — an
    /// epoch is a slice of *execution*, not of mutations) one epoch
    /// commits and the next begins.
    ///
    /// # Errors
    ///
    /// Propagates engine open/recovery failures; rejects
    /// `ops_per_epoch == 0`.
    pub fn open(
        medium: Arc<dyn PersistOps>,
        cfg: EngineConfig,
        telemetry: Telemetry,
        ops_per_epoch: u64,
    ) -> Result<(Kv, OpenReport), StoreError> {
        if ops_per_epoch == 0 {
            return Err(StoreError::Config("ops_per_epoch must be >= 1".into()));
        }
        let (engine, report) = Engine::open(medium, cfg, telemetry)?;
        Ok((
            Kv {
                engine,
                ops_per_epoch,
                ops: 0,
                access_log: None,
            },
            report,
        ))
    }

    /// Starts recording one [`Access`] per operation (for the
    /// store-vs-simulator adapter).
    pub fn enable_access_log(&mut self) {
        self.access_log = Some(Vec::new());
    }

    /// Takes the recorded accesses, leaving the log enabled and empty.
    pub fn take_access_log(&mut self) -> Vec<Access> {
        match &mut self.access_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// The underlying engine (frontiers, stats, manual commits).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Operations executed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    fn note(&mut self, line: u32, write: bool) {
        if let Some(log) = &mut self.access_log {
            log.push(Access { line, write });
        }
    }

    fn tick_epoch(&mut self) -> Result<Option<u64>, StoreError> {
        self.ops += 1;
        if self.ops.is_multiple_of(self.ops_per_epoch) {
            return self.engine.commit_epoch().map(Some);
        }
        Ok(None)
    }

    /// Inserts or overwrites `key`. Returns the epoch committed by this
    /// operation, if it fell on a boundary.
    ///
    /// # Errors
    ///
    /// Rejects oversized keys/values and a full table; propagates engine
    /// failures.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<Option<u64>, StoreError> {
        let line = slots::put(&self.engine, key, value)?;
        self.note(line, true);
        self.tick_epoch()
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        // `&mut self` means no concurrent writer, so a lookup can never
        // be contended; a torn record here is table corruption.
        let found = match slots::lookup(&self.engine, key)? {
            Lookup::Found { line, value } => {
                self.note(line, false);
                Some(value)
            }
            Lookup::Missing { line } => {
                self.note(line, false);
                None
            }
            Lookup::Contended => {
                return Err(StoreError::Corrupt(
                    "torn record under an exclusive reader".into(),
                ))
            }
        };
        self.tick_epoch()?;
        Ok(found)
    }

    /// Deletes `key` if present. Returns `(was_present, committed)`.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn delete(&mut self, key: &[u8]) -> Result<(bool, Option<u64>), StoreError> {
        let present = match slots::delete(&self.engine, key)? {
            Deletion::Deleted { line } => {
                self.note(line, true);
                true
            }
            Deletion::Missing { line } => {
                self.note(line, false);
                false
            }
        };
        let committed = self.tick_epoch()?;
        Ok((present, committed))
    }

    /// All live pairs, sorted by key. Reads the volatile image directly —
    /// a scan is not a logical operation and does not advance the epoch
    /// clock.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn scan(&self) -> Result<KvPairs, StoreError> {
        slots::scan(&self.engine)
    }

    /// Commits the executing epoch regardless of the op counter, and
    /// realigns the counter to the boundary.
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn commit(&mut self) -> Result<u64, StoreError> {
        self.ops = self.ops.next_multiple_of(self.ops_per_epoch);
        self.engine.commit_epoch()
    }

    /// Closes the store (persists the committed backlog).
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    pub fn close(self) -> Result<EngineStats, StoreError> {
        self.engine.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Geometry;
    use crate::persist::CountingMedium;

    fn open_kv(lines: u32, ops_per_epoch: u64) -> (Kv, Arc<CountingMedium>) {
        let cfg = EngineConfig {
            lines,
            log_blocks: 32,
            ..EngineConfig::default()
        };
        let g = Geometry {
            lines,
            log_blocks: cfg.log_blocks,
        };
        let medium = Arc::new(CountingMedium::new(g.total_len()));
        let (kv, _) = Kv::open(
            Arc::clone(&medium) as _,
            cfg,
            Telemetry::off(),
            ops_per_epoch,
        )
        .unwrap();
        (kv, medium)
    }

    #[test]
    fn put_get_delete_round_trip() {
        let (mut kv, _) = open_kv(64, 8);
        assert_eq!(kv.get(b"missing").unwrap(), None);
        kv.put(b"alpha", b"one").unwrap();
        kv.put(b"beta", b"two").unwrap();
        assert_eq!(kv.get(b"alpha").unwrap(), Some(b"one".to_vec()));
        kv.put(b"alpha", b"uno").unwrap();
        assert_eq!(kv.get(b"alpha").unwrap(), Some(b"uno".to_vec()));
        let (present, _) = kv.delete(b"alpha").unwrap();
        assert!(present);
        assert_eq!(kv.get(b"alpha").unwrap(), None);
        let (present, _) = kv.delete(b"alpha").unwrap();
        assert!(!present);
        assert_eq!(
            kv.scan().unwrap(),
            vec![(b"beta".to_vec(), b"two".to_vec())]
        );
    }

    #[test]
    fn epochs_commit_every_n_ops() {
        let (mut kv, _) = open_kv(64, 4);
        let mut commits = Vec::new();
        for i in 0..12u8 {
            if let Some(eid) = kv.put(format!("k{i}").as_bytes(), b"v").unwrap() {
                commits.push(eid);
            }
        }
        assert_eq!(commits, vec![1, 2, 3]);
    }

    #[test]
    fn collisions_probe_and_tombstones_reuse() {
        // A 4-slot table forces collisions fast.
        let (mut kv, _) = open_kv(4, 100);
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        kv.put(b"c", b"3").unwrap();
        assert_eq!(kv.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(kv.get(b"b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(kv.get(b"c").unwrap(), Some(b"3".to_vec()));
        kv.delete(b"b").unwrap();
        // c may live past b's tombstone; lookups must keep probing.
        assert_eq!(kv.get(b"c").unwrap(), Some(b"3".to_vec()));
        kv.put(b"d", b"4").unwrap();
        assert_eq!(kv.get(b"d").unwrap(), Some(b"4".to_vec()));
        // Full table rejects a fifth key.
        kv.put(b"e", b"5").unwrap();
        assert!(matches!(kv.put(b"f", b"6"), Err(StoreError::Invalid(_))));
    }

    #[test]
    fn oversized_keys_and_values_rejected() {
        let (mut kv, _) = open_kv(64, 8);
        assert!(kv.put(&[b'k'; 29], b"v").is_err());
        assert!(kv.put(b"k", &[b'v'; 256]).is_err());
        assert!(kv.put(b"", b"v").is_err());
        assert!(kv.put(&[b'k'; 28], &[b'v'; 255]).is_ok());
        assert_eq!(
            kv.get(&[b'k'; 28]).unwrap(),
            Some(vec![b'v'; 255]),
            "maximum-size record survives"
        );
    }

    #[test]
    fn spanning_values_round_trip_and_commit() {
        let (mut kv, _) = open_kv(64, 4);
        let big: Vec<u8> = (0..224).map(|i| (i % 250) as u8).collect();
        kv.put(b"big", &big).unwrap();
        kv.put(b"small", b"s").unwrap();
        assert_eq!(kv.get(b"big").unwrap(), Some(big.clone()));
        // Shrink in place, then grow past the old size.
        kv.put(b"big", b"tiny").unwrap();
        assert_eq!(kv.get(b"big").unwrap(), Some(b"tiny".to_vec()));
        let bigger: Vec<u8> = (0..255).map(|i| (i % 249) as u8).collect();
        kv.put(b"big", &bigger).unwrap();
        kv.commit().unwrap();
        assert_eq!(kv.get(b"big").unwrap(), Some(bigger.clone()));
        assert_eq!(
            kv.scan().unwrap(),
            vec![
                (b"big".to_vec(), bigger),
                (b"small".to_vec(), b"s".to_vec())
            ]
        );
    }

    #[test]
    fn kv_survives_reopen() {
        let cfg = EngineConfig {
            lines: 64,
            log_blocks: 32,
            ..EngineConfig::default()
        };
        let g = Geometry {
            lines: 64,
            log_blocks: 32,
        };
        let medium = Arc::new(CountingMedium::new(g.total_len()));
        {
            let (mut kv, _) =
                Kv::open(Arc::clone(&medium) as _, cfg.clone(), Telemetry::off(), 4).unwrap();
            kv.put(b"persist", b"me").unwrap();
            kv.commit().unwrap();
            kv.close().unwrap();
        }
        let survivor = Arc::new(CountingMedium::from_image(medium.surviving_image()));
        let (mut kv, report) = Kv::open(survivor, cfg, Telemetry::off(), 4).unwrap();
        assert!(report.recovered);
        assert_eq!(kv.get(b"persist").unwrap(), Some(b"me".to_vec()));
    }

    #[test]
    fn spanning_record_survives_reopen() {
        // Satellite regression: a committed multi-slot record (head + 4
        // continuations) must come back whole through crash recovery,
        // while an uncommitted overwrite of it rolls back.
        let cfg = EngineConfig {
            lines: 64,
            log_blocks: 32,
            ..EngineConfig::default()
        };
        let g = Geometry {
            lines: 64,
            log_blocks: 32,
        };
        let medium = Arc::new(CountingMedium::new(g.total_len()));
        let big: Vec<u8> = (0..255).map(|i| (i % 241) as u8).collect();
        {
            let (mut kv, _) =
                Kv::open(Arc::clone(&medium) as _, cfg.clone(), Telemetry::off(), 4).unwrap();
            kv.put(b"span", &big).unwrap();
            kv.commit().unwrap();
            kv.engine().drain_persister().unwrap();
            // Uncommitted epoch rewrites the record; dropping without
            // close leaves it volatile — the kill loses it.
            kv.put(b"span", b"short-lived").unwrap();
        }
        let survivor = Arc::new(CountingMedium::from_image(medium.surviving_image()));
        let (mut kv, report) = Kv::open(survivor, cfg, Telemetry::off(), 4).unwrap();
        assert!(report.recovered);
        assert_eq!(kv.get(b"span").unwrap(), Some(big), "chain recovered whole");
    }

    #[test]
    fn access_log_records_one_entry_per_op() {
        let (mut kv, _) = open_kv(64, 100);
        kv.enable_access_log();
        kv.put(b"a", b"1").unwrap();
        kv.get(b"a").unwrap();
        kv.delete(b"a").unwrap();
        kv.get(b"a").unwrap();
        let log = kv.take_access_log();
        assert_eq!(log.len(), 4);
        assert!(log[0].write);
        assert!(!log[1].write);
        assert!(log[2].write);
        assert!(!log[3].write);
        assert_eq!(log[0].line, log[1].line);
    }
}
