//! `picl-store`: the PiCL protocol as an executable storage engine.
//!
//! The simulator crates model PiCL's hardware — cache epochs, the
//! multi-undo log, the ACS — to measure it. This crate *runs* it: the
//! same protocol implemented in software against a file standing in for
//! NVM, so crash consistency claims can be tortured with real `kill -9`
//! instead of simulated power failures.
//!
//! Layered bottom-up:
//!
//! - [`persist`] — the NVM medium abstraction. [`persist::PersistOps`]
//!   is the `clflush`/`sfence` seam: a real msync-backed file
//!   ([`persist::FileMedium`]), a latency-injecting wrapper
//!   ([`persist::LatencyMedium`], after Makalu's `emulate_latency_ns`),
//!   and an in-memory counting medium ([`persist::CountingMedium`]) that
//!   models adversarial power failure by dropping unfenced writes.
//! - [`layout`] — the on-media format: superblock, circular log of 4 KB
//!   blocks holding 88-byte `(ValidFrom, ValidTill)` undo entries, and
//!   the checksums that make torn writes detectable.
//! - [`engine`] — the protocol: per-line epoch tags, the 2 KB coalescing
//!   undo buffer, the background persister (the ACS), the in-order
//!   persist window, and multi-undo rollback recovery.
//! - [`slots`] — the slot-level record layout: open addressing with
//!   values spanning up to five slots via explicit continuation
//!   pointers, plus the optimistic (seqlock-style) concurrent lookup
//!   the serving layer builds on.
//! - [`kv`] — an embedded get/put/delete/scan API whose hash table lives
//!   entirely in the persistent region (software transparency: the KV
//!   layer does nothing for durability).
//! - [`workload`] — seeded operation streams and the in-memory model
//!   oracle shared by the torture harness, the recovery proptest, and
//!   the store-vs-simulator adapter.
//!
//! Telemetry speaks the same [`picl_telemetry::EventKind`] vocabulary as
//! the simulator, so `picl audit` checks a store run against the same
//! protocol invariants, and the crashlab differential oracle compares
//! store and simulator epoch-by-epoch.

pub mod engine;
pub mod kv;
pub mod layout;
pub mod obs;
pub mod persist;
pub mod slots;
pub mod workload;

pub use engine::{CommitTicket, Engine, EngineConfig, EngineStats, OpenReport, StoreError};
pub use kv::{Access, Kv, MAX_KEY_BYTES, MAX_VALUE_BYTES};
pub use layout::{Geometry, UndoEntry, UNDO_BUFFER_BYTES, UNDO_BUFFER_ENTRIES};
pub use obs::StoreObs;
pub use persist::{CountingMedium, FileMedium, LatencyMedium, PersistOps, PersistStats};
pub use slots::Lines;
pub use workload::{
    apply_to_model, apply_to_store, generate, model_after, parse_workload, Model, Op,
};
