//! The on-media layout of a PiCL store file.
//!
//! ```text
//! offset 0        superblock (64 B, checksummed)
//! offset 4096     data region: `lines` x 64 B cache lines
//! after data      log region: `log_blocks` x 4 KB circular undo-log blocks
//! ```
//!
//! Log blocks are addressed by an ever-growing *sequence number*; block
//! `seq` lives at slot `seq % log_blocks`. Each block carries the store's
//! *generation* — recovery bumps the generation and resets the sequence
//! window, which atomically invalidates every block of the rolled-back
//! timeline (their epoch numbers are about to be reused, so replaying them
//! after a second crash would be unsound).
//!
//! All integers are little-endian; the superblock and every log block end
//! in an FNV-1a checksum so a torn or stale block reads as *absent*, never
//! as garbage.

use picl_types::hash::fnv1a_64;
use picl_types::LINE_BYTES;

/// Superblock magic: `PICLSTO1`.
pub const SB_MAGIC: u64 = u64::from_le_bytes(*b"PICLSTO1");
/// Log block magic: `PICLLOG1`.
pub const LOG_MAGIC: u64 = u64::from_le_bytes(*b"PICLLOG1");
/// Layout version.
pub const VERSION: u32 = 1;

/// Superblock size on media.
pub const SB_BYTES: u64 = 64;
/// Data region offset (superblock page).
pub const DATA_OFFSET: u64 = 4096;
/// One log block on media.
pub const LOG_BLOCK_BYTES: u64 = 4096;
/// Log block header size; entries follow.
pub const LOG_HEADER_BYTES: usize = 64;
/// One serialized undo entry: line u32 + pad + (ValidFrom, ValidTill) +
/// the 64-byte pre-image.
pub const ENTRY_BYTES: usize = 88;
/// Entries per 4 KB log block.
pub const ENTRIES_PER_BLOCK: usize = (LOG_BLOCK_BYTES as usize - LOG_HEADER_BYTES) / ENTRY_BYTES;
/// The paper's 2 KB coalescing undo buffer, in entries. (The hardware
/// packs 32 x 64 B; our entries carry the full 64 B pre-image plus
/// metadata, so 2 KB holds fewer.)
pub const UNDO_BUFFER_BYTES: usize = 2048;
/// Buffer capacity in entries.
pub const UNDO_BUFFER_ENTRIES: usize = UNDO_BUFFER_BYTES / ENTRY_BYTES;

// Geometry sanity, checked at compile time: the coalescing buffer holds a
// sensible number of full-line entries, and one 4 KB log block always has
// room for a full buffer drain.
const _: () = assert!(UNDO_BUFFER_ENTRIES >= 16);
const _: () = assert!(ENTRIES_PER_BLOCK >= UNDO_BUFFER_ENTRIES);

/// One multi-undo log entry: the pre-image `data` is the value the line
/// held from the end of epoch `valid_from` through the end of epoch
/// `valid_till - 1`; recovery to point `P` applies it iff
/// `valid_from <= P < valid_till`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndoEntry {
    /// Line index within the data region.
    pub line: u32,
    /// First epoch the pre-image is valid for.
    pub valid_from: u64,
    /// First epoch the pre-image is *not* valid for (the epoch whose
    /// first store displaced it).
    pub valid_till: u64,
    /// The 64-byte pre-image.
    pub data: [u8; LINE_BYTES as usize],
}

impl UndoEntry {
    /// Whether recovery to `point` must apply this entry.
    pub fn covers(&self, point: u64) -> bool {
        self.valid_from <= point && point < self.valid_till
    }
}

/// Static geometry of a store file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Data-region capacity in 64-byte lines.
    pub lines: u32,
    /// Log-region capacity in 4 KB blocks.
    pub log_blocks: u32,
}

impl Geometry {
    /// Total file length this geometry needs.
    pub fn total_len(&self) -> u64 {
        DATA_OFFSET
            + u64::from(self.lines) * LINE_BYTES
            + u64::from(self.log_blocks) * LOG_BLOCK_BYTES
    }

    /// Byte offset of data line `line`.
    pub fn data_off(&self, line: u32) -> u64 {
        debug_assert!(line < self.lines);
        DATA_OFFSET + u64::from(line) * LINE_BYTES
    }

    /// Byte offset of the log slot holding sequence number `seq`.
    pub fn log_slot_off(&self, seq: u64) -> u64 {
        DATA_OFFSET
            + u64::from(self.lines) * LINE_BYTES
            + (seq % u64::from(self.log_blocks)) * LOG_BLOCK_BYTES
    }
}

/// The durable root: geometry, frontiers, and the live log window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Data/log geometry (immutable after creation).
    pub geometry: Geometry,
    /// The persist frontier: every epoch `<= persisted_eid` is durable.
    pub persisted_eid: u64,
    /// Timeline generation; bumped by every recovery.
    pub generation: u64,
    /// Oldest possibly-live log sequence number.
    pub log_start_seq: u64,
    /// Next log sequence number to write (blocks `[start, head)` are the
    /// live window; `head` itself may be stale on media — recovery probes
    /// forward from `start`).
    pub log_head_seq: u64,
}

fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

impl Superblock {
    /// Serializes to the 64-byte on-media form (checksum in the last 8
    /// bytes).
    pub fn encode(&self) -> [u8; SB_BYTES as usize] {
        let mut buf = [0u8; SB_BYTES as usize];
        put_u64(&mut buf, 0, SB_MAGIC);
        put_u32(&mut buf, 8, VERSION);
        put_u32(&mut buf, 12, self.geometry.lines);
        put_u32(&mut buf, 16, self.geometry.log_blocks);
        put_u64(&mut buf, 24, self.persisted_eid);
        put_u64(&mut buf, 32, self.generation);
        put_u64(&mut buf, 40, self.log_start_seq);
        put_u64(&mut buf, 48, self.log_head_seq);
        let sum = fnv1a_64(&buf[..56]);
        put_u64(&mut buf, 56, sum);
        buf
    }

    /// Parses and validates the on-media form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first validation failure (bad magic,
    /// version, checksum, or degenerate geometry).
    pub fn decode(buf: &[u8]) -> Result<Superblock, String> {
        if buf.len() < SB_BYTES as usize {
            return Err(format!("superblock truncated to {} bytes", buf.len()));
        }
        if get_u64(buf, 0) != SB_MAGIC {
            return Err("bad superblock magic (not a PiCL store)".into());
        }
        if get_u32(buf, 8) != VERSION {
            return Err(format!("unsupported layout version {}", get_u32(buf, 8)));
        }
        if get_u64(buf, 56) != fnv1a_64(&buf[..56]) {
            return Err("superblock checksum mismatch".into());
        }
        let geometry = Geometry {
            lines: get_u32(buf, 12),
            log_blocks: get_u32(buf, 16),
        };
        if geometry.lines == 0 || geometry.log_blocks < 2 {
            return Err(format!(
                "degenerate geometry: {} lines, {} log blocks",
                geometry.lines, geometry.log_blocks
            ));
        }
        Ok(Superblock {
            geometry,
            persisted_eid: get_u64(buf, 24),
            generation: get_u64(buf, 32),
            log_start_seq: get_u64(buf, 40),
            log_head_seq: get_u64(buf, 48),
        })
    }
}

/// A decoded log block: its identity and its entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogBlock {
    /// Timeline generation the block was written in.
    pub generation: u64,
    /// Sequence number (position in the logical log).
    pub seq: u64,
    /// The block's entries, in append order.
    pub entries: Vec<UndoEntry>,
    /// Max `valid_till` across entries: the block is dead once the
    /// persist frontier reaches it.
    pub max_valid_till: u64,
}

/// Serializes one log block.
///
/// # Panics
///
/// Panics if `entries` exceeds [`ENTRIES_PER_BLOCK`] or is empty.
pub fn encode_log_block(generation: u64, seq: u64, entries: &[UndoEntry]) -> Vec<u8> {
    assert!(
        !entries.is_empty() && entries.len() <= ENTRIES_PER_BLOCK,
        "log block holds 1..={ENTRIES_PER_BLOCK} entries, got {}",
        entries.len()
    );
    let mut buf = vec![0u8; LOG_BLOCK_BYTES as usize];
    put_u64(&mut buf, 0, LOG_MAGIC);
    put_u64(&mut buf, 8, generation);
    put_u64(&mut buf, 16, seq);
    put_u32(&mut buf, 24, entries.len() as u32);
    let max_till = entries.iter().map(|e| e.valid_till).max().unwrap_or(0);
    put_u64(&mut buf, 32, max_till);
    for (i, e) in entries.iter().enumerate() {
        let at = LOG_HEADER_BYTES + i * ENTRY_BYTES;
        put_u32(&mut buf, at, e.line);
        put_u64(&mut buf, at + 8, e.valid_from);
        put_u64(&mut buf, at + 16, e.valid_till);
        buf[at + 24..at + 24 + LINE_BYTES as usize].copy_from_slice(&e.data);
    }
    let used = LOG_HEADER_BYTES + entries.len() * ENTRY_BYTES;
    let mut sum = fnv1a_64(&buf[..40]);
    sum ^= fnv1a_64(&buf[LOG_HEADER_BYTES..used]).rotate_left(1);
    put_u64(&mut buf, 40, sum);
    buf
}

/// Parses one log slot. Returns `None` for anything that is not a valid
/// block of generation `generation` (wrong magic, wrong generation, torn
/// contents): absent and corrupt are deliberately indistinguishable.
pub fn decode_log_block(buf: &[u8], generation: u64) -> Option<LogBlock> {
    if buf.len() < LOG_BLOCK_BYTES as usize || get_u64(buf, 0) != LOG_MAGIC {
        return None;
    }
    if get_u64(buf, 8) != generation {
        return None;
    }
    let count = get_u32(buf, 24) as usize;
    if count == 0 || count > ENTRIES_PER_BLOCK {
        return None;
    }
    let used = LOG_HEADER_BYTES + count * ENTRY_BYTES;
    let mut sum = fnv1a_64(&buf[..40]);
    sum ^= fnv1a_64(&buf[LOG_HEADER_BYTES..used]).rotate_left(1);
    if get_u64(buf, 40) != sum {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let at = LOG_HEADER_BYTES + i * ENTRY_BYTES;
        let mut data = [0u8; LINE_BYTES as usize];
        data.copy_from_slice(&buf[at + 24..at + 24 + LINE_BYTES as usize]);
        entries.push(UndoEntry {
            line: get_u32(buf, at),
            valid_from: get_u64(buf, at + 8),
            valid_till: get_u64(buf, at + 16),
            data,
        });
    }
    Some(LogBlock {
        generation,
        seq: get_u64(buf, 16),
        max_valid_till: get_u64(buf, 32),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(line: u32, from: u64, till: u64, fill: u8) -> UndoEntry {
        UndoEntry {
            line,
            valid_from: from,
            valid_till: till,
            data: [fill; 64],
        }
    }

    #[test]
    fn geometry_offsets_are_disjoint() {
        let g = Geometry {
            lines: 100,
            log_blocks: 4,
        };
        assert_eq!(g.data_off(0), DATA_OFFSET);
        assert_eq!(g.data_off(99), DATA_OFFSET + 99 * 64);
        let log_base = DATA_OFFSET + 100 * 64;
        assert_eq!(g.log_slot_off(0), log_base);
        assert_eq!(g.log_slot_off(5), log_base + LOG_BLOCK_BYTES); // 5 % 4 = 1
        assert_eq!(g.total_len(), log_base + 4 * LOG_BLOCK_BYTES);
    }

    #[test]
    fn superblock_round_trips() {
        let sb = Superblock {
            geometry: Geometry {
                lines: 512,
                log_blocks: 8,
            },
            persisted_eid: 17,
            generation: 3,
            log_start_seq: 40,
            log_head_seq: 45,
        };
        let buf = sb.encode();
        assert_eq!(Superblock::decode(&buf).unwrap(), sb);
    }

    #[test]
    fn superblock_rejects_corruption() {
        let sb = Superblock {
            geometry: Geometry {
                lines: 1,
                log_blocks: 2,
            },
            persisted_eid: 0,
            generation: 1,
            log_start_seq: 0,
            log_head_seq: 0,
        };
        let mut buf = sb.encode();
        buf[24] ^= 1; // flip a persisted_eid bit
        assert!(Superblock::decode(&buf).unwrap_err().contains("checksum"));
        assert!(Superblock::decode(&[0u8; 64])
            .unwrap_err()
            .contains("magic"));
        assert!(Superblock::decode(&buf[..10])
            .unwrap_err()
            .contains("truncated"));
    }

    #[test]
    fn log_block_round_trips() {
        let entries = vec![entry(3, 0, 2, 0xAA), entry(9, 1, 2, 0xBB)];
        let buf = encode_log_block(7, 41, &entries);
        let block = decode_log_block(&buf, 7).unwrap();
        assert_eq!(block.seq, 41);
        assert_eq!(block.generation, 7);
        assert_eq!(block.max_valid_till, 2);
        assert_eq!(block.entries, entries);
    }

    #[test]
    fn log_block_rejects_wrong_generation_and_corruption() {
        let buf = encode_log_block(7, 41, &[entry(0, 0, 1, 1)]);
        assert!(decode_log_block(&buf, 8).is_none(), "stale generation");
        let mut torn = buf.clone();
        torn[LOG_HEADER_BYTES + 30] ^= 0xFF; // flip a pre-image byte
        assert!(decode_log_block(&torn, 7).is_none(), "torn entry");
        let mut bad_count = buf;
        bad_count[24] = 0;
        assert!(decode_log_block(&bad_count, 7).is_none(), "zero count");
    }

    #[test]
    fn entry_covers_half_open_range() {
        let e = entry(0, 2, 5, 0);
        assert!(!e.covers(1));
        assert!(e.covers(2));
        assert!(e.covers(4));
        assert!(!e.covers(5));
    }

    #[test]
    fn buffer_and_block_capacities() {
        // Pin the derived capacities so a format change is a conscious one
        // (the >= relations are compile-time asserts next to the consts).
        assert_eq!(UNDO_BUFFER_ENTRIES, 23);
        assert_eq!(ENTRIES_PER_BLOCK, 45);
    }
}
