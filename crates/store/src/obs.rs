//! Engine-side observability: the persister and epoch-pipeline
//! instruments, registered into a [`picl_obs::MetricsRegistry`].
//!
//! The engine runs un-instrumented until [`crate::Engine::enable_obs`]
//! attaches a `StoreObs`; until then the hot paths pay one relaxed
//! `OnceLock` load per potential instrument touch.

use picl_obs::{Counter, Gauge, Histo, MetricsRegistry};

/// Handles for every engine instrument. One per engine, set once.
pub struct StoreObs {
    /// Wall time of one persister cycle (snapshot + in-place writes +
    /// fences + superblock), `picl_store_persister_cycle_ns`.
    pub cycle_ns: Histo,
    /// Committed epochs retired per persister cycle (the backlog the
    /// batched fence amortizes over), `picl_store_persister_backlog_epochs`.
    pub backlog_epochs: Histo,
    /// In-place line write-backs, `picl_store_persister_lines_total`.
    pub lines_written: Counter,
    /// Media fences issued (drains + persist cycles),
    /// `picl_store_fences_total`.
    pub fences: Counter,
    /// Drains forced by a persister bloom hit,
    /// `picl_store_forced_drains_total`.
    pub forced_drains: Counter,
    /// Time a committer spent blocked on the §IV-A in-order window,
    /// `picl_store_window_wait_ns`.
    pub window_wait_ns: Histo,
    /// Epochs not yet persisted, including the executing one
    /// (`sys_eid - persisted`), `picl_store_open_epochs`.
    pub open_epochs: Gauge,
    /// Committed-but-unpersisted epochs (`committed - persisted`, the
    /// quantity the window bounds), `picl_store_window_occupancy`.
    pub window_occupancy: Gauge,
    /// Undo entries sitting in the volatile coalescing buffer,
    /// `picl_store_undo_buffer_fill`.
    pub undo_buffer_fill: Gauge,
    /// Live (un-GCed) log blocks, `picl_store_log_blocks_live`.
    pub log_blocks_live: Gauge,
}

impl StoreObs {
    /// Registers the engine instrument set.
    pub fn register(reg: &MetricsRegistry) -> StoreObs {
        StoreObs {
            cycle_ns: reg.histogram(
                "picl_store_persister_cycle_ns",
                &[],
                "Wall time of one persister cycle (snapshot, in-place writes, fences, superblock).",
            ),
            backlog_epochs: reg.histogram(
                "picl_store_persister_backlog_epochs",
                &[],
                "Committed epochs retired per persister cycle.",
            ),
            lines_written: reg.counter(
                "picl_store_persister_lines_total",
                &[],
                "In-place line write-backs by the persister.",
            ),
            fences: reg.counter(
                "picl_store_fences_total",
                &[],
                "Media fences issued by drains and persist cycles.",
            ),
            forced_drains: reg.counter(
                "picl_store_forced_drains_total",
                &[],
                "Undo-buffer drains forced by a persister bloom hit.",
            ),
            window_wait_ns: reg.histogram(
                "picl_store_window_wait_ns",
                &[],
                "Time committers spent blocked on the in-order window.",
            ),
            open_epochs: reg.gauge(
                "picl_store_open_epochs",
                &[],
                "Epochs not yet persisted, including the executing one.",
            ),
            window_occupancy: reg.gauge(
                "picl_store_window_occupancy",
                &[],
                "Committed-but-unpersisted epochs (bounded by the in-order window).",
            ),
            undo_buffer_fill: reg.gauge(
                "picl_store_undo_buffer_fill",
                &[],
                "Undo entries in the volatile coalescing buffer.",
            ),
            log_blocks_live: reg.gauge(
                "picl_store_log_blocks_live",
                &[],
                "Live (un-garbage-collected) undo log blocks.",
            ),
        }
    }
}
