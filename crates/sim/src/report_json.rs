//! A dependency-free JSON codec for [`RunReport`].
//!
//! Campaign checkpointing needs completed reports to survive a process
//! restart **bit-identically** — a resumed figure sweep must produce the
//! same bytes as an uninterrupted one. Every counter therefore round-trips
//! as an exact `u64` (the parser keeps numbers as raw text; nothing is
//! routed through `f64`), and [`decode_report`] rebuilds the private-field
//! statistics types through their checked restore constructors
//! (`Histogram::from_saved`, `NvmStats::from_parts`).

use picl_cache::{HierarchyStats, SchemeStats};
use picl_campaign::json::Value;
use picl_campaign::CellPayload;
use picl_nvm::{AccessClass, NvmStats};
use picl_telemetry::json::escape;
use picl_types::stats::{Counter, Histogram};
use picl_types::Cycle;

use crate::report::RunReport;
use crate::runner::SchemeKind;

/// Encodes a report as one single-line JSON object.
pub fn encode_report(r: &RunReport) -> String {
    let ss = &r.scheme_stats;
    let scheme_stats = format!(
        "{{\"commits\": {}, \"forced_commits\": {}, \"log_entries\": {}, \
         \"log_bytes_written\": {}, \"log_bytes_live\": {}, \"buffer_flushes\": {}, \
         \"buffer_flushes_forced\": {}, \"stall_cycles\": {}}}",
        ss.commits,
        ss.forced_commits,
        ss.log_entries,
        ss.log_bytes_written,
        ss.log_bytes_live,
        ss.buffer_flushes,
        ss.buffer_flushes_forced,
        ss.stall_cycles
    );

    let join = |values: Vec<String>| values.join(", ");
    let ops = join(
        AccessClass::all()
            .iter()
            .map(|c| r.nvm.ops(*c).to_string())
            .collect(),
    );
    let bytes = join(
        AccessClass::all()
            .iter()
            .map(|c| r.nvm.bytes(*c).to_string())
            .collect(),
    );
    let qd = &r.nvm.queue_depth;
    let buckets = join(
        qd.nonzero_buckets()
            .map(|(bound, n)| format!("[{bound}, {n}]"))
            .collect(),
    );
    let queue_depth = format!(
        "{{\"buckets\": [{buckets}], \"count\": {}, \"sum\": {}, \"max\": {}}}",
        qd.count(),
        qd.sum(),
        qd.max().unwrap_or(0)
    );
    let nvm = format!(
        "{{\"ops\": [{ops}], \"bytes\": [{bytes}], \"row_hits\": {}, \"row_misses\": {}, \
         \"service_cycles\": {}, \"queue_depth\": {queue_depth}}}",
        r.nvm.row_hits.get(),
        r.nvm.row_misses.get(),
        r.nvm.service_cycles.get()
    );

    let h = &r.hierarchy;
    let hierarchy = format!(
        "{{\"l1_hits\": {}, \"l2_hits\": {}, \"llc_hits\": {}, \"memory_accesses\": {}, \
         \"dirty_evictions\": {}, \"clean_evictions\": {}, \"recalls\": {}, \
         \"back_invalidations\": {}, \"stores\": {}, \"loads\": {}}}",
        h.l1_hits.get(),
        h.l2_hits.get(),
        h.llc_hits.get(),
        h.memory_accesses.get(),
        h.dirty_evictions.get(),
        h.clean_evictions.get(),
        h.recalls.get(),
        h.back_invalidations.get(),
        h.stores.get(),
        h.loads.get()
    );

    format!(
        "{{\"scheme\": \"{}\", \"workload\": \"{}\", \"cores\": {}, \"instructions\": {}, \
         \"total_cycles\": {}, \"commits\": {}, \"forced_commits\": {}, \"stall_cycles\": {}, \
         \"scheme_stats\": {scheme_stats}, \"nvm\": {nvm}, \"hierarchy\": {hierarchy}}}",
        escape(r.scheme),
        escape(&r.workload),
        r.cores,
        r.instructions,
        r.total_cycles.raw(),
        r.commits,
        r.forced_commits,
        r.stall_cycles
    )
}

/// Maps a stored scheme name back to the simulator's canonical
/// `&'static str` for it.
fn scheme_static_name(name: &str) -> Result<&'static str, String> {
    SchemeKind::ALL
        .iter()
        .map(|k| k.name())
        .find(|n| *n == name)
        .ok_or_else(|| format!("unknown scheme name {name:?}"))
}

fn counter(value: u64) -> Counter {
    let mut c = Counter::new();
    c.add(value);
    c
}

fn decode_u64_array(v: &Value, key: &str) -> Result<Vec<u64>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing or non-array field {key:?}"))?
        .iter()
        .map(|item| {
            item.as_u64()
                .ok_or_else(|| format!("non-integer element in {key:?}"))
        })
        .collect()
}

fn decode_queue_depth(v: &Value) -> Result<Histogram, String> {
    let buckets = v
        .get("buckets")
        .and_then(Value::as_arr)
        .ok_or("queue_depth is missing its buckets")?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().filter(|p| p.len() == 2);
            match pair {
                Some([bound, n]) => match (bound.as_u64(), n.as_u64()) {
                    (Some(bound), Some(n)) => Ok((bound, n)),
                    _ => Err("non-integer histogram bucket".to_owned()),
                },
                _ => Err("histogram bucket is not a [bound, count] pair".to_owned()),
            }
        })
        .collect::<Result<Vec<(u64, u64)>, String>>()?;
    Histogram::from_saved(
        buckets,
        v.field_u64("count")?,
        v.field_u64("sum")?,
        v.field_u64("max")?,
    )
}

/// Decodes a report previously produced by [`encode_report`].
///
/// # Errors
///
/// Returns a message naming the first missing or malformed field. The
/// campaign executor treats this as a missing checkpoint and re-runs the
/// cell.
pub fn decode_report(v: &Value) -> Result<RunReport, String> {
    let ss = v.get("scheme_stats").ok_or("missing scheme_stats")?;
    let scheme_stats = SchemeStats {
        commits: ss.field_u64("commits")?,
        forced_commits: ss.field_u64("forced_commits")?,
        log_entries: ss.field_u64("log_entries")?,
        log_bytes_written: ss.field_u64("log_bytes_written")?,
        log_bytes_live: ss.field_u64("log_bytes_live")?,
        buffer_flushes: ss.field_u64("buffer_flushes")?,
        buffer_flushes_forced: ss.field_u64("buffer_flushes_forced")?,
        stall_cycles: ss.field_u64("stall_cycles")?,
    };

    let n = v.get("nvm").ok_or("missing nvm")?;
    let nvm = NvmStats::from_parts(
        &decode_u64_array(n, "ops")?,
        &decode_u64_array(n, "bytes")?,
        n.field_u64("row_hits")?,
        n.field_u64("row_misses")?,
        n.field_u64("service_cycles")?,
        decode_queue_depth(n.get("queue_depth").ok_or("missing queue_depth")?)?,
    )?;

    let h = v.get("hierarchy").ok_or("missing hierarchy")?;
    let hierarchy = HierarchyStats {
        l1_hits: counter(h.field_u64("l1_hits")?),
        l2_hits: counter(h.field_u64("l2_hits")?),
        llc_hits: counter(h.field_u64("llc_hits")?),
        memory_accesses: counter(h.field_u64("memory_accesses")?),
        dirty_evictions: counter(h.field_u64("dirty_evictions")?),
        clean_evictions: counter(h.field_u64("clean_evictions")?),
        recalls: counter(h.field_u64("recalls")?),
        back_invalidations: counter(h.field_u64("back_invalidations")?),
        stores: counter(h.field_u64("stores")?),
        loads: counter(h.field_u64("loads")?),
    };

    Ok(RunReport {
        scheme: scheme_static_name(v.field_str("scheme")?)?,
        workload: v.field_str("workload")?.to_owned(),
        cores: v
            .get("cores")
            .and_then(Value::as_usize)
            .ok_or("missing or non-integer field \"cores\"")?,
        instructions: v.field_u64("instructions")?,
        total_cycles: Cycle(v.field_u64("total_cycles")?),
        commits: v.field_u64("commits")?,
        forced_commits: v.field_u64("forced_commits")?,
        stall_cycles: v.field_u64("stall_cycles")?,
        scheme_stats,
        nvm,
        hierarchy,
    })
}

/// Reports checkpoint as their JSON encoding; the round trip is exact, so
/// resumed campaigns reproduce uninterrupted results bit-for-bit.
impl CellPayload for RunReport {
    fn encode(&self) -> String {
        encode_report(self)
    }

    fn decode(value: &Value) -> Result<RunReport, String> {
        decode_report(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Simulation;
    use picl_telemetry::json::validate_json;
    use picl_trace::spec::SpecBenchmark;
    use picl_types::SystemConfig;

    fn simulated_report(scheme: SchemeKind) -> RunReport {
        let mut cfg = SystemConfig::paper_single_core();
        cfg.epoch.epoch_len_instructions = 20_000;
        Simulation::builder(cfg)
            .scheme(scheme)
            .workload(&[SpecBenchmark::Hmmer])
            .instructions_per_core(50_000)
            .seed(11)
            .run()
            .expect("valid configuration")
    }

    #[test]
    fn real_reports_round_trip_bit_identically() {
        for scheme in [SchemeKind::Picl, SchemeKind::Frm, SchemeKind::Journaling] {
            let report = simulated_report(scheme);
            let encoded = encode_report(&report);
            assert!(!encoded.contains('\n'), "must be single-line");
            validate_json(&encoded).expect("encoder emits valid JSON");
            let decoded = decode_report(&Value::parse(&encoded).unwrap()).unwrap();
            assert_eq!(decoded, report, "round trip must be exact ({scheme:?})");
            // And the re-encoding is byte-identical, not just Eq.
            assert_eq!(encode_report(&decoded), encoded);
        }
    }

    #[test]
    fn extreme_counters_survive_the_round_trip() {
        let mut report = simulated_report(SchemeKind::Ideal);
        // Values above 2^53 would corrupt through an f64 path.
        report.instructions = u64::MAX - 3;
        report.scheme_stats.log_bytes_written = (1u64 << 53) + 1;
        let decoded = decode_report(&Value::parse(&encode_report(&report)).unwrap()).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn unknown_scheme_is_a_decode_error() {
        let report = simulated_report(SchemeKind::Picl);
        let encoded = encode_report(&report).replace("\"PiCL\"", "\"NotAScheme\"");
        let err = decode_report(&Value::parse(&encoded).unwrap()).unwrap_err();
        assert!(err.contains("NotAScheme"), "{err}");
    }

    #[test]
    fn missing_fields_are_descriptive_errors() {
        let err = decode_report(&Value::parse("{}").unwrap()).unwrap_err();
        assert!(err.contains("scheme_stats"), "{err}");
    }

    #[test]
    fn workload_names_with_specials_escape_cleanly() {
        let mut report = simulated_report(SchemeKind::Picl);
        report.workload = "mix \"a\"\\b".to_owned();
        let encoded = encode_report(&report);
        validate_json(&encoded).unwrap();
        let decoded = decode_report(&Value::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.workload, report.workload);
    }
}
