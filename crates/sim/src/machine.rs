//! The core simulation loop.
//!
//! A [`Machine`] owns the cache hierarchy, the NVM, one consistency scheme,
//! and one trace source per core. Cores advance on private clocks; the
//! laggard (smallest clock) executes next, which keeps shared-resource
//! contention causally ordered without a global event queue.
//!
//! Beyond timing, the machine maintains a *logical* memory image — the
//! values all committed and uncommitted stores have produced so far — and
//! snapshots it at every epoch commit. Crash injection invalidates all
//! volatile state, runs the scheme's recovery, and compares NVM contents
//! against the golden snapshot of the epoch the scheme claims to have
//! recovered — the end-to-end crash-consistency check the paper's FPGA
//! prototype performed with micro-benchmarks (§V).

use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;

use picl::os::boundary_handler_line;
use picl_cache::hierarchy::AccessType;
use picl_cache::{ConsistencyScheme, Hierarchy};
use picl_nvm::{DeltaSnapshots, MainMemory, Nvm};
use picl_telemetry::{EventKind, Sampler, Telemetry};
use picl_trace::{AccessKind, EventBatch, TraceEvent, TraceSource};
use picl_types::hash::FastMap;
use picl_types::{CoreId, Cycle, EpochId, LineAddr, SystemConfig};

use crate::report::RunReport;

/// Lines at or above this index belong to scheme-internal regions (undo
/// log, redo buffers, shadow pages) and are excluded from consistency
/// comparisons.
const WORKLOAD_LINE_LIMIT: u64 = 1 << 40;

/// Events decoded per [`TraceSource::fill`] call. Large enough to amortize
/// the per-batch virtual dispatch and channel traffic, small enough that
/// decode-ahead stays a few tens of KiB per core.
const DECODE_CHUNK: usize = 1024;

/// Where a core's decoded event batches come from.
enum Feed {
    /// Decode on the simulation thread, one chunk at a time.
    Inline(Box<dyn TraceSource + Send>),
    /// Batches are decoded ahead of time by a lane thread and arrive over
    /// a bounded channel; drained batches are sent back for reuse.
    Lane {
        rx: Receiver<EventBatch>,
        recycle: Sender<EventBatch>,
    },
    /// Detached during shutdown; no further events may be requested.
    Closed,
}

struct Core {
    clock: Cycle,
    instructions: u64,
    feed: Feed,
    batch: EventBatch,
    pos: usize,
}

impl Core {
    /// The next event of this core's stream, refilling the batch when the
    /// current one is exhausted. The canonical event order is identical
    /// whatever the feed: a core's stream is always decoded sequentially
    /// in chunk order by exactly one producer.
    #[inline]
    fn next_event(&mut self) -> TraceEvent {
        if self.pos == self.batch.len() {
            self.refill();
        }
        let ev = self.batch.get(self.pos);
        self.pos += 1;
        ev
    }

    #[cold]
    fn refill(&mut self) {
        match &mut self.feed {
            Feed::Inline(src) => src.fill(&mut self.batch, DECODE_CHUNK),
            Feed::Lane { rx, recycle } => {
                let fresh = rx.recv().expect("decode lane disconnected");
                let spent = std::mem::replace(&mut self.batch, fresh);
                // The lane may already have exited; a failed recycle only
                // costs the allocation.
                let _ = recycle.send(spent);
            }
            Feed::Closed => panic!("event requested from a closed feed"),
        }
        self.pos = 0;
    }
}

/// One decode lane's share of the cores: the trace source it advances plus
/// the channels to its consumer.
struct LaneCore {
    src: Box<dyn TraceSource + Send>,
    tx: SyncSender<EventBatch>,
    recycle: Receiver<EventBatch>,
    pending: Option<EventBatch>,
    closed: bool,
}

/// Decode-lane thread body: round-robin over the owned cores, keeping each
/// core's bounded channel topped up. Sends never block — a full channel
/// parks the batch in `pending` — so one budget-exhausted core can never
/// wedge a lane that other cores are still draining.
fn lane_main(mut cores: Vec<LaneCore>) {
    loop {
        let mut progressed = false;
        let mut live = 0usize;
        for lc in cores.iter_mut() {
            if lc.closed {
                continue;
            }
            live += 1;
            if lc.pending.is_none() {
                let mut batch = lc.recycle.try_recv().unwrap_or_default();
                lc.src.fill(&mut batch, DECODE_CHUNK);
                lc.pending = Some(batch);
            }
            let batch = lc.pending.take().expect("pending batch present");
            match lc.tx.try_send(batch) {
                Ok(()) => progressed = true,
                Err(mpsc::TrySendError::Full(b)) => lc.pending = Some(b),
                Err(mpsc::TrySendError::Disconnected(_)) => lc.closed = true,
            }
        }
        if live == 0 {
            break;
        }
        if !progressed {
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
    }
}

/// Golden-snapshot storage backing crash validation.
///
/// The default `Delta` store records one copy-on-write delta per commit
/// (O(lines written this epoch)) and reconstructs a full image only when
/// a crash needs one. `Full` keeps the original eager deep clone per
/// commit — the unoptimized reference `picl bench` diffs against.
enum SnapshotStore {
    /// Snapshots disabled; only the power-on image is reconstructible.
    Off,
    /// Copy-on-write per-epoch deltas (default).
    Delta(DeltaSnapshots),
    /// Eager full clone at every commit (reference mode).
    Full(FastMap<EpochId, MainMemory>),
}

impl SnapshotStore {
    /// The full image at `epoch`'s commit, if reconstructible.
    /// [`EpochId::ZERO`] (the power-on image) always is.
    fn get(&self, epoch: EpochId) -> Option<MainMemory> {
        match self {
            SnapshotStore::Off => (epoch == EpochId::ZERO).then(MainMemory::new),
            SnapshotStore::Delta(deltas) => deltas.reconstruct(epoch),
            SnapshotStore::Full(map) => map
                .get(&epoch)
                .cloned()
                .or_else(|| (epoch == EpochId::ZERO).then(MainMemory::new)),
        }
    }

    /// Drops every snapshot strictly after `epoch` (crash rewind).
    fn truncate_after(&mut self, epoch: EpochId) {
        match self {
            SnapshotStore::Off => {}
            SnapshotStore::Delta(deltas) => deltas.truncate_after(epoch),
            SnapshotStore::Full(map) => map.retain(|e, _| *e <= epoch),
        }
    }
}

/// Result of an injected crash and recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// What the scheme recovered (target epoch, entries applied, time).
    pub outcome: picl_cache::RecoveryOutcome,
    /// Whether post-recovery NVM contents exactly match the golden
    /// snapshot of the recovered epoch; `None` if snapshots were disabled
    /// or the epoch was never snapshotted.
    pub consistent: Option<bool>,
    /// Total number of mismatching lines (the sample below is capped).
    pub mismatch_count: usize,
    /// Mismatching lines (up to 16, for diagnostics).
    pub mismatches: Vec<LineAddr>,
}

/// A configured, running simulation.
pub struct Machine {
    cfg: SystemConfig,
    hier: Hierarchy,
    mem: Nvm,
    scheme: Box<dyn ConsistencyScheme + Send>,
    cores: Vec<Core>,
    logical: MainMemory,
    snapshots: SnapshotStore,
    /// `(line, token)` writes since the last commit — the next delta.
    /// Kept as a plain push list on the store fast path (duplicates fine);
    /// deduplication happens once per commit when the delta map is built,
    /// where later pushes overwrite earlier ones, matching the final
    /// logical value without a per-line image lookup.
    pending_dirty: Vec<(LineAddr, u64)>,
    /// Decode-lane threads, when enabled; joined on drop.
    lane_handles: Vec<JoinHandle<()>>,
    /// Reused across crash validations.
    diff_scratch: Vec<LineAddr>,
    token: u64,
    instr_since_boundary: u64,
    workload_label: String,
    telemetry: Telemetry,
    sampler: Option<Sampler>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("scheme", &self.scheme.name())
            .field("workload", &self.workload_label)
            .field("cores", &self.cores.len())
            .finish()
    }
}

impl Machine {
    /// Builds a machine: one trace source per core.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the trace count does not
    /// match `cfg.cores`.
    pub fn new(
        cfg: SystemConfig,
        scheme: Box<dyn ConsistencyScheme + Send>,
        traces: Vec<Box<dyn TraceSource + Send>>,
        workload_label: impl Into<String>,
        keep_snapshots: bool,
    ) -> Self {
        cfg.validate().expect("valid system configuration");
        assert_eq!(traces.len(), cfg.cores, "one trace per core required");
        let hier = Hierarchy::new(&cfg);
        // Epoch 0 (the pre-execution, all-initial image) is implicit in
        // every store variant; nothing to record up front.
        let snapshots = if keep_snapshots {
            SnapshotStore::Delta(DeltaSnapshots::new())
        } else {
            SnapshotStore::Off
        };
        Machine {
            mem: Nvm::new(cfg.nvm, cfg.clock()),
            hier,
            scheme,
            cores: traces
                .into_iter()
                .map(|trace| Core {
                    clock: Cycle::ZERO,
                    instructions: 0,
                    feed: Feed::Inline(trace),
                    batch: EventBatch::with_capacity(DECODE_CHUNK),
                    pos: 0,
                })
                .collect(),
            logical: MainMemory::new(),
            snapshots,
            pending_dirty: Vec::new(),
            lane_handles: Vec::new(),
            diff_scratch: Vec::new(),
            token: 0,
            instr_since_boundary: 0,
            workload_label: workload_label.into(),
            telemetry: Telemetry::off(),
            sampler: None,
            cfg,
        }
    }

    /// Moves trace decoding onto `lanes` background threads (clamped to
    /// the core count; 0 is a no-op that keeps decoding inline).
    ///
    /// Cores are assigned to lanes round-robin; each core's source is
    /// still advanced sequentially by exactly one producer and its batches
    /// arrive in decode order, so simulation results are bit-identical to
    /// inline decoding for every lane count. Call before running.
    ///
    /// # Panics
    ///
    /// Panics if lanes were already enabled on this machine.
    pub fn set_decode_lanes(&mut self, lanes: usize) {
        assert!(self.lane_handles.is_empty(), "decode lanes already enabled");
        if lanes == 0 {
            return;
        }
        let lanes = lanes.min(self.cores.len());
        let mut shares: Vec<Vec<LaneCore>> = (0..lanes).map(|_| Vec::new()).collect();
        for (i, core) in self.cores.iter_mut().enumerate() {
            let Feed::Inline(src) = std::mem::replace(&mut core.feed, Feed::Closed) else {
                unreachable!("fresh machine cores decode inline");
            };
            // Capacity 2 gives double buffering: the lane decodes the next
            // chunk while the simulator drains the current one. A partially
            // drained inline batch (if any) finishes first, so the stream
            // position is preserved across the switch.
            let (tx, rx) = mpsc::sync_channel(2);
            let (recycle_tx, recycle_rx) = mpsc::channel();
            core.feed = Feed::Lane {
                rx,
                recycle: recycle_tx,
            };
            shares[i % lanes].push(LaneCore {
                src,
                tx,
                recycle: recycle_rx,
                pending: None,
                closed: false,
            });
        }
        for share in shares {
            self.lane_handles
                .push(std::thread::spawn(move || lane_main(share)));
        }
    }

    /// Number of decode-lane threads currently attached (0 = inline).
    pub fn decode_lanes(&self) -> usize {
        self.lane_handles.len()
    }

    /// Turns tracing on: events from the scheme, the hierarchy, and the
    /// NVM flow into per-core rings of `ring_capacity` events each, and
    /// gauges (undo-buffer fill, NVM queue depth, LLC dirty-line census,
    /// open-epoch count) are sampled every `sample_interval` cycles.
    ///
    /// Returns a handle the caller snapshots to drain the recording.
    pub fn enable_telemetry(&mut self, ring_capacity: usize, sample_interval: u64) -> Telemetry {
        let telemetry = Telemetry::new(self.cores.len(), ring_capacity);
        self.hier.set_telemetry(telemetry.clone());
        self.mem.set_telemetry(telemetry.clone());
        self.scheme.attach_telemetry(telemetry.clone());
        telemetry.record(
            self.now(),
            None,
            EventKind::EpochBegin {
                eid: self.scheme.system_eid(),
            },
        );
        self.sampler = Some(Sampler::new(sample_interval));
        self.telemetry = telemetry.clone();
        telemetry
    }

    /// Attaches the online protocol auditor: every telemetry event is fed,
    /// in emission order, into a `picl-audit` checker. For the PiCL scheme
    /// the ACS-gap persist-scheduling invariant is armed from the machine
    /// configuration; other schemes are checked against the scheme-neutral
    /// rules only.
    ///
    /// If telemetry is not yet enabled, a recorder is created just for the
    /// audit tap (no gauge sampler); the sink sees every event regardless
    /// of ring capacity, so auditing stays exact even when the rings are
    /// small. Call *before* running; read the verdict through the returned
    /// handle at any point.
    pub fn enable_audit(&mut self) -> picl_audit::AuditHandle {
        let audit_cfg = picl_audit::AuditConfig {
            acs_gap: (self.scheme.name() == "PiCL").then_some(self.cfg.epoch.acs_gap),
        };
        if self.telemetry.is_enabled() {
            return picl_audit::AuditHandle::attach(&self.telemetry, audit_cfg);
        }
        let telemetry = Telemetry::new(self.cores.len(), 64);
        // The sink must be in place before the initial EpochBegin is
        // recorded, or the auditor would tap mid-lifecycle.
        let handle = picl_audit::AuditHandle::attach(&telemetry, audit_cfg);
        self.hier.set_telemetry(telemetry.clone());
        self.mem.set_telemetry(telemetry.clone());
        self.scheme.attach_telemetry(telemetry.clone());
        telemetry.record(
            self.now(),
            None,
            EventKind::EpochBegin {
                eid: self.scheme.system_eid(),
            },
        );
        self.telemetry = telemetry;
        handle
    }

    /// Snapshots every gauge into the recorder's time series.
    fn sample_gauges(&self, now: Cycle) {
        self.telemetry.sample(
            "nvm_queue_depth",
            now,
            self.mem.timing().queue_depth(now) as f64,
        );
        self.telemetry
            .sample("llc_dirty_lines", now, self.hier.dirty_line_count() as f64);
        self.telemetry.sample(
            "picl_lines_tagged",
            now,
            self.hier.tagged_dirty_count() as f64,
        );
        let open = self
            .scheme
            .system_eid()
            .raw()
            .saturating_sub(self.scheme.persisted_eid().raw());
        self.telemetry.sample("open_epochs", now, open as f64);
        for (name, value) in self.scheme.telemetry_gauges() {
            self.telemetry.sample(name, now, value);
        }
    }

    /// The scheme under test.
    pub fn scheme(&self) -> &dyn ConsistencyScheme {
        self.scheme.as_ref()
    }

    /// The memory system.
    pub fn memory(&self) -> &Nvm {
        &self.mem
    }

    /// The logical (all-stores-applied) memory image.
    pub fn logical_memory(&self) -> &MainMemory {
        &self.logical
    }

    /// The golden memory image at `epoch`'s commit, if reconstructible
    /// (reconstructed from deltas on demand; owned, not borrowed).
    pub fn snapshot(&self, epoch: EpochId) -> Option<MainMemory> {
        self.snapshots.get(epoch)
    }

    /// Switches every differential knob to the unoptimized reference
    /// implementation: the hierarchy's drains fall back to full scans and
    /// golden snapshots become eager deep clones. `picl bench` runs each
    /// cell both ways and requires identical reports.
    ///
    /// Call before running; switching discards previously taken snapshots.
    pub fn set_reference_mode(&mut self, on: bool) {
        self.hier.set_reference_scan(on);
        self.snapshots = match (&self.snapshots, on) {
            (SnapshotStore::Off, _) => SnapshotStore::Off,
            (_, true) => SnapshotStore::Full(FastMap::default()),
            (_, false) => SnapshotStore::Delta(DeltaSnapshots::new()),
        };
    }

    /// The value of `line` if it is resident anywhere in the hierarchy.
    pub fn hierarchy_cached_value(&self, line: LineAddr) -> Option<u64> {
        self.hier.cached_value(line)
    }

    /// Total instructions retired across all cores.
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Wall-clock time: the furthest core clock.
    pub fn now(&self) -> Cycle {
        self.cores
            .iter()
            .map(|c| c.clock)
            .fold(Cycle::ZERO, Cycle::max)
    }

    fn next_token(&mut self) -> u64 {
        self.token += 1;
        self.token
    }

    /// Applies a store to the logical image and marks the line for the
    /// next snapshot delta.
    fn logical_write(&mut self, line: LineAddr, token: u64) {
        self.logical.write_line(line, token);
        self.pending_dirty.push((line, token));
    }

    /// Records the golden snapshot for a just-committed epoch.
    fn commit_snapshot(&mut self, committed: EpochId) {
        match &mut self.snapshots {
            SnapshotStore::Off => self.pending_dirty.clear(),
            SnapshotStore::Delta(deltas) => {
                // Duplicate pushes collapse here; insertion order means the
                // last write to a line wins, which is its committed value.
                let delta: FastMap<LineAddr, u64> = self.pending_dirty.drain(..).collect();
                deltas.commit(committed, delta);
            }
            SnapshotStore::Full(map) => {
                map.insert(committed, self.logical.snapshot());
                self.pending_dirty.clear();
            }
        }
    }

    /// Executes one trace event on the core with the smallest clock among
    /// those with fewer than `budget_per_core` instructions. Returns
    /// `false` when every core has reached the budget.
    pub fn step(&mut self, budget_per_core: u64) -> bool {
        let idx = if self.cores.len() == 1 {
            // Single-core fast path: no laggard scan.
            if self.cores[0].instructions >= budget_per_core {
                return false;
            }
            0
        } else {
            let Some(idx) = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| c.instructions < budget_per_core)
                .min_by_key(|(_, c)| c.clock)
                .map(|(i, _)| i)
            else {
                return false;
            };
            idx
        };

        let core = &mut self.cores[idx];
        let ev = core.next_event();
        core.clock += u64::from(ev.gap_instructions);
        core.instructions += ev.instructions();
        self.instr_since_boundary += ev.instructions();
        let issue_at = core.clock;

        let line = ev.addr.line();
        let access = match ev.kind {
            AccessKind::Load => AccessType::Load,
            AccessKind::Store => {
                let token = self.next_token();
                self.logical_write(line, token);
                AccessType::Store { new_value: token }
            }
        };
        let result = self.hier.access(
            CoreId(idx),
            line,
            access,
            self.scheme.as_mut(),
            &mut self.mem,
            issue_at,
        );
        let core = &mut self.cores[idx];
        match ev.kind {
            // Loads block the in-order core until data returns.
            AccessKind::Load => core.clock = result.data_ready.max(core.clock + 1u64),
            // Stores retire through the store buffer (§IV-A).
            AccessKind::Store => core.clock += 1u64,
        }

        // The epoch timer is per-core work (a wall-clock proxy): with N
        // cores running concurrently, N x epoch_len instructions retire
        // per epoch interval.
        let epoch_budget = self.cfg.epoch.epoch_len_instructions * self.cores.len() as u64;
        if self.scheme.wants_early_commit() || self.instr_since_boundary >= epoch_budget {
            self.epoch_boundary();
        }

        if let Some(sampler) = &mut self.sampler {
            let now = self.cores[idx].clock;
            if sampler.due(now) {
                self.sample_gauges(now);
            }
        }
        true
    }

    /// Forces an epoch boundary now (the OS timer interrupt).
    pub fn epoch_boundary(&mut self) {
        // The OS boundary handler checkpoints each core's register file
        // with ordinary cacheable stores (§V-A) before the commit.
        for i in 0..self.cores.len() {
            let line = boundary_handler_line(CoreId(i));
            let token = self.next_token();
            self.logical_write(line, token);
            let at = self.cores[i].clock;
            self.hier.access(
                CoreId(i),
                line,
                AccessType::Store { new_value: token },
                self.scheme.as_mut(),
                &mut self.mem,
                at,
            );
            self.cores[i].clock += 1u64;
        }

        let now = self.now();
        let outcome = self
            .scheme
            .on_epoch_boundary(&mut self.hier, &mut self.mem, now);
        if let Some(stall) = outcome.stall_until {
            if stall > now {
                self.telemetry
                    .record(now, None, EventKind::BoundaryStall { until: stall });
            }
            // Stop-the-world: every core resumes after the flush.
            for core in &mut self.cores {
                core.clock = core.clock.max(stall);
            }
        }
        self.telemetry.record(
            outcome.stall_until.unwrap_or(now).max(now),
            None,
            EventKind::EpochBegin {
                eid: self.scheme.system_eid(),
            },
        );
        self.commit_snapshot(outcome.committed);
        self.instr_since_boundary = 0;
    }

    /// Runs until every core has retired at least `budget_per_core`
    /// instructions.
    pub fn run(&mut self, budget_per_core: u64) {
        while self.step(budget_per_core) {}
    }

    /// Injects a power failure: all volatile state (caches, on-chip
    /// buffers) is lost, the scheme recovers main memory from durable
    /// state, and — when snapshots are enabled — the result is compared
    /// line-for-line against the golden image of the recovered epoch.
    pub fn crash(&mut self) -> CrashReport {
        let now = self.now();
        self.telemetry.record(now, None, EventKind::CrashInjected);
        self.hier.invalidate_all();
        self.telemetry.record(now, None, EventKind::RecoveryStart);
        let outcome = self.scheme.crash_recover(&mut self.mem, now);
        self.telemetry.record(
            outcome.completed_at,
            None,
            EventKind::RecoveryDone {
                recovered_to: outcome.recovered_to,
                entries: outcome.entries_applied,
            },
        );

        let golden = self.snapshots.get(outcome.recovered_to);
        let (consistent, mismatch_count, mismatches) = match &golden {
            Some(golden) => {
                let mut diffs = std::mem::take(&mut self.diff_scratch);
                golden.diff_into(self.mem.state(), &mut diffs);
                diffs.retain(|l| l.raw() < WORKLOAD_LINE_LIMIT);
                let result = (
                    Some(diffs.is_empty()),
                    diffs.len(),
                    diffs.iter().take(16).copied().collect(),
                );
                self.diff_scratch = diffs;
                result
            }
            None => (None, 0, Vec::new()),
        };
        // Execution resumes from the recovered checkpoint: the logical
        // reference image rewinds to that snapshot, and snapshots of the
        // rolled-back timeline are dropped (their epoch numbers will be
        // reused by the new timeline).
        if let Some(golden) = golden {
            self.logical = golden;
        }
        self.snapshots.truncate_after(outcome.recovered_to);
        self.pending_dirty.clear();
        self.instr_since_boundary = 0;
        CrashReport {
            outcome,
            consistent,
            mismatch_count,
            mismatches,
        }
    }

    /// Runs until at least `total_instructions` have retired across all
    /// cores (the crash-at-instant hook: overshoot is bounded by one trace
    /// event, so a crash point is reproducible from the instruction
    /// count alone). Returns the actual total retired.
    pub fn run_until(&mut self, total_instructions: u64) -> u64 {
        let mut total = self.instructions();
        while total < total_instructions && self.step(u64::MAX) {
            total = self.instructions();
        }
        total
    }

    /// Injects a power failure *inside* the epoch-boundary flush window:
    /// the OS boundary handler has checkpointed the register files of the
    /// first `cores_done` cores (issuing their cacheable stores), but the
    /// commit itself — `on_epoch_boundary`, where prior-work schemes drain
    /// the cache and PiCL bumps `SystemEID` — has not happened. This is
    /// the mid-flush interleaving that point crash checks miss.
    pub fn crash_mid_boundary(&mut self, cores_done: usize) -> CrashReport {
        for i in 0..cores_done.min(self.cores.len()) {
            let line = boundary_handler_line(CoreId(i));
            let token = self.next_token();
            self.logical_write(line, token);
            let at = self.cores[i].clock;
            self.hier.access(
                CoreId(i),
                line,
                AccessType::Store { new_value: token },
                self.scheme.as_mut(),
                &mut self.mem,
                at,
            );
            self.cores[i].clock += 1u64;
        }
        self.crash()
    }

    /// Produces the run report.
    pub fn report(&self) -> RunReport {
        let stats = self.scheme.stats();
        RunReport {
            scheme: self.scheme.name(),
            workload: self.workload_label.clone(),
            cores: self.cores.len(),
            instructions: self.instructions(),
            total_cycles: self.now(),
            commits: stats.commits,
            forced_commits: stats.forced_commits,
            stall_cycles: stats.stall_cycles,
            scheme_stats: stats,
            nvm: self.mem.stats().clone(),
            hierarchy: self.hier.stats().clone(),
        }
    }
}

impl Drop for Machine {
    fn drop(&mut self) {
        if self.lane_handles.is_empty() {
            return;
        }
        // Dropping each core's receiver makes the lanes observe
        // disconnection on their next send attempt and exit.
        for core in &mut self.cores {
            if matches!(core.feed, Feed::Lane { .. }) {
                core.feed = Feed::Closed;
            }
        }
        for handle in self.lane_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::SchemeKind;
    use picl_trace::event::ScriptedSource;
    use picl_trace::TraceEvent;
    use picl_types::Address;

    fn tiny_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_single_core();
        cfg.epoch.epoch_len_instructions = 1000;
        cfg
    }

    fn script() -> Box<dyn TraceSource + Send> {
        let events: Vec<TraceEvent> = (0..64)
            .map(|i| TraceEvent {
                gap_instructions: 3,
                kind: if i % 3 == 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                addr: Address::new(i * 64),
            })
            .collect();
        Box::new(ScriptedSource::new("script", events))
    }

    fn machine(kind: SchemeKind) -> Machine {
        let cfg = tiny_cfg();
        let scheme = kind.build(&cfg);
        Machine::new(cfg, scheme, vec![script()], "script", true)
    }

    #[test]
    fn run_retires_budget() {
        let mut m = machine(SchemeKind::Picl);
        m.run(5000);
        assert!(m.instructions() >= 5000);
        assert!(m.now() > Cycle::ZERO);
        let r = m.report();
        assert_eq!(r.cores, 1);
        assert!(r.commits >= 4, "expected ~5 epochs, got {}", r.commits);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = machine(SchemeKind::Picl);
        let mut b = machine(SchemeKind::Picl);
        a.run(3000);
        b.run(3000);
        assert_eq!(a.instructions(), b.instructions());
        assert_eq!(a.now(), b.now());
        assert_eq!(a.report().commits, b.report().commits);
    }

    #[test]
    fn instruction_count_is_scheme_independent() {
        let mut a = machine(SchemeKind::Picl);
        let mut b = machine(SchemeKind::Frm);
        a.run(3000);
        b.run(3000);
        assert_eq!(a.instructions(), b.instructions());
    }

    #[test]
    fn crash_recovery_is_consistent_for_picl() {
        let mut m = machine(SchemeKind::Picl);
        m.run(20_000);
        let crash = m.crash();
        assert_eq!(
            crash.consistent,
            Some(true),
            "PiCL recovery mismatched at {:?} (target {})",
            crash.mismatches,
            crash.outcome.recovered_to
        );
    }

    #[test]
    fn crash_recovery_is_consistent_for_all_protected_schemes() {
        for kind in [
            SchemeKind::Frm,
            SchemeKind::Journaling,
            SchemeKind::Shadow,
            SchemeKind::ThyNvm,
        ] {
            let mut m = machine(kind);
            m.run(20_000);
            let crash = m.crash();
            assert_eq!(
                crash.consistent,
                Some(true),
                "{kind:?} recovery mismatched at {:?}",
                crash.mismatches
            );
        }
    }

    #[test]
    fn stalls_advance_all_clocks() {
        let mut m = machine(SchemeKind::Frm);
        m.run(2000); // crosses at least one boundary
        assert!(m.report().stall_cycles > 0, "FRM must stall at commits");
    }

    #[test]
    fn run_until_stops_at_instant() {
        let mut m = machine(SchemeKind::Picl);
        let total = m.run_until(4321);
        assert!(total >= 4321, "stopped early at {total}");
        // Overshoot is bounded by one trace event (gap + the access).
        assert!(total < 4321 + 300, "overshot to {total}");
        assert_eq!(m.instructions(), total);
    }

    #[test]
    fn run_until_is_deterministic() {
        let mut a = machine(SchemeKind::Picl);
        let mut b = machine(SchemeKind::Picl);
        assert_eq!(a.run_until(7777), b.run_until(7777));
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn mid_boundary_crash_is_consistent_for_protected_schemes() {
        for kind in [
            SchemeKind::Picl,
            SchemeKind::Frm,
            SchemeKind::Journaling,
            SchemeKind::Shadow,
            SchemeKind::ThyNvm,
        ] {
            let mut m = machine(kind);
            m.run_until(10_500);
            let crash = m.crash_mid_boundary(1);
            assert_eq!(
                crash.consistent,
                Some(true),
                "{kind:?} mid-boundary recovery mismatched at {:?}",
                crash.mismatches
            );
        }
    }

    #[test]
    fn mismatch_count_reports_full_total() {
        // The unprotected baseline corrupts many lines under eviction
        // pressure; the capped sample must not hide the real total.
        let mut cfg = SystemConfig::paper_single_core();
        cfg.epoch.epoch_len_instructions = 30_000;
        let mut m = crate::runner::Simulation::builder(cfg)
            .scheme(SchemeKind::Ideal)
            .workload(&[picl_trace::spec::SpecBenchmark::Mcf])
            .footprint_scale(0.02)
            .seed(7)
            .keep_snapshots(true)
            .into_machine()
            .unwrap();
        m.run(200_000);
        let crash = m.crash();
        assert_eq!(crash.consistent, Some(false));
        assert!(crash.mismatch_count >= crash.mismatches.len());
        assert!(crash.mismatches.len() <= 16);
        if crash.mismatch_count > 16 {
            assert_eq!(crash.mismatches.len(), 16);
        }
    }

    #[test]
    fn snapshots_taken_per_commit() {
        let mut m = machine(SchemeKind::Picl);
        m.run(3000);
        assert!(m.snapshot(EpochId::ZERO).is_some());
        assert!(m.snapshot(EpochId(1)).is_some());
    }
}
