//! The trace-driven multicore simulator and experiment runner.
//!
//! Reproduces the paper's methodology (§VI-A): in-order cores with CPI 1
//! for non-memory instructions drive memory traces through the
//! L1/L2/LLC hierarchy into the NVM model, with one of six consistency
//! schemes observing stores, evictions, and epoch boundaries.
//!
//! * [`machine`] — the core simulation loop: per-core clocks, epoch
//!   sequencing (timer and forced early commits), stall-the-world handling,
//!   OS epoch-boundary handler stores, golden-snapshot bookkeeping, and
//!   crash injection with recovery verification.
//! * [`report`] — the per-run result record ([`RunReport`]).
//! * [`report_json`] — a dependency-free JSON codec for [`RunReport`] with
//!   an exact (bit-identical) round trip, used by campaign checkpointing.
//! * [`runner`] — builder-style configuration ([`Simulation`]), the
//!   [`SchemeKind`] registry, and the experiment matrix used by every
//!   figure-regeneration binary, executed on the fault-isolated,
//!   resumable `picl-campaign` runner.
//!
//! # Example
//!
//! ```
//! use picl_sim::{Simulation, SchemeKind};
//! use picl_trace::spec::SpecBenchmark;
//! use picl_types::SystemConfig;
//!
//! let mut cfg = SystemConfig::paper_single_core();
//! cfg.epoch.epoch_len_instructions = 100_000;
//! let report = Simulation::builder(cfg)
//!     .scheme(SchemeKind::Picl)
//!     .workload(&[SpecBenchmark::Hmmer])
//!     .instructions_per_core(200_000)
//!     .seed(7)
//!     .run()
//!     .expect("valid configuration");
//! assert!(report.commits >= 1);
//! ```

pub mod machine;
pub mod report;
pub mod report_json;
pub mod runner;

pub use machine::{CrashReport, Machine};
pub use picl_campaign::{CampaignOptions, CellOutcome};
pub use report::RunReport;
pub use report_json::{decode_report, encode_report};
pub use runner::{
    run_experiments, run_experiments_with, Experiment, SchemeKind, Simulation, WorkloadSpec,
};
