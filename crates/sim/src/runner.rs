//! Simulation configuration and the experiment matrix.

use picl::Picl;
use picl_baselines::{Frm, IdealNvm, Journaling, ShadowPaging, ThyNvm};
use picl_cache::ConsistencyScheme;
use picl_trace::mixes::WorkloadMix;
use picl_trace::spec::SpecBenchmark;
use picl_trace::TraceSource;
use picl_types::{config::ConfigError, SystemConfig};

use crate::machine::Machine;
use crate::report::RunReport;

/// Byte spacing between per-core address spaces in multiprogram runs.
const CORE_ADDRESS_STRIDE: u64 = 1 << 34;

/// The six schemes the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// No crash consistency (normalization baseline).
    Ideal,
    /// Redo logging with a translation table.
    Journaling,
    /// Page-granularity copy-on-write redo.
    Shadow,
    /// Classic undo logging (read-log-modify).
    Frm,
    /// Dual-granularity redo with single-checkpoint overlap.
    ThyNvm,
    /// This paper's scheme.
    Picl,
}

impl SchemeKind {
    /// All schemes in the paper's figure order (Ideal first as baseline).
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::Ideal,
        SchemeKind::Journaling,
        SchemeKind::Shadow,
        SchemeKind::Frm,
        SchemeKind::ThyNvm,
        SchemeKind::Picl,
    ];

    /// Instantiates the scheme for a configuration.
    pub fn build(self, cfg: &SystemConfig) -> Box<dyn ConsistencyScheme + Send> {
        match self {
            SchemeKind::Ideal => Box::new(IdealNvm::new()),
            SchemeKind::Journaling => Box::new(Journaling::new(&cfg.table)),
            SchemeKind::Shadow => Box::new(ShadowPaging::new(&cfg.table)),
            SchemeKind::Frm => Box::new(Frm::new()),
            SchemeKind::ThyNvm => Box::new(ThyNvm::new(&cfg.table)),
            SchemeKind::Picl => Box::new(Picl::new(cfg)),
        }
    }

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Ideal => "Ideal",
            SchemeKind::Journaling => "Journaling",
            SchemeKind::Shadow => "Shadow",
            SchemeKind::Frm => "FRM",
            SchemeKind::ThyNvm => "ThyNVM",
            SchemeKind::Picl => "PiCL",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A cloneable description of what each core runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    label: String,
    benches: Vec<SpecBenchmark>,
}

impl WorkloadSpec {
    /// A single-program workload (one core).
    pub fn single(bench: SpecBenchmark) -> Self {
        WorkloadSpec {
            label: bench.name().to_owned(),
            benches: vec![bench],
        }
    }

    /// A Table V multiprogram mix (eight cores).
    pub fn mix(mix: &WorkloadMix) -> Self {
        WorkloadSpec {
            label: mix.name.to_owned(),
            benches: mix.programs.to_vec(),
        }
    }

    /// An explicit per-core benchmark assignment.
    ///
    /// # Panics
    ///
    /// Panics if `benches` is empty.
    pub fn per_core(label: impl Into<String>, benches: Vec<SpecBenchmark>) -> Self {
        assert!(!benches.is_empty(), "need at least one program");
        WorkloadSpec {
            label: label.into(),
            benches,
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of cores this workload occupies.
    pub fn cores(&self) -> usize {
        self.benches.len()
    }

    /// Builds the per-core trace sources, each in a private address space.
    pub fn build_traces(
        &self,
        seed: u64,
        footprint_scale: f64,
    ) -> Vec<Box<dyn TraceSource + Send>> {
        self.benches
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let profile = b.profile().scaled(footprint_scale);
                let gen = picl_trace::spec::ProfileGen::new(
                    profile,
                    seed ^ (i as u64).wrapping_mul(0xA5A5_A5A5_A5A5),
                )
                .with_base(i as u64 * CORE_ADDRESS_STRIDE);
                Box::new(gen) as Box<dyn TraceSource + Send>
            })
            .collect()
    }
}

/// Builder for one simulation run.
///
/// # Example
///
/// ```
/// use picl_sim::{Simulation, SchemeKind};
/// use picl_trace::spec::SpecBenchmark;
/// use picl_types::SystemConfig;
///
/// let mut cfg = SystemConfig::paper_single_core();
/// cfg.epoch.epoch_len_instructions = 50_000;
/// let report = Simulation::builder(cfg)
///     .scheme(SchemeKind::Frm)
///     .workload(&[SpecBenchmark::Povray])
///     .instructions_per_core(100_000)
///     .run()
///     .expect("valid configuration");
/// assert_eq!(report.scheme, "FRM");
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    cfg: SystemConfig,
    scheme: SchemeKind,
    spec: Option<WorkloadSpec>,
    instructions_per_core: u64,
    seed: u64,
    footprint_scale: f64,
    keep_snapshots: bool,
    reference_mode: bool,
    decode_lanes: usize,
}

impl Simulation {
    /// Starts configuring a run on `cfg`.
    pub fn builder(cfg: SystemConfig) -> Simulation {
        Simulation {
            cfg,
            scheme: SchemeKind::Picl,
            spec: None,
            instructions_per_core: 1_000_000,
            seed: 0,
            footprint_scale: 1.0,
            keep_snapshots: false,
            reference_mode: false,
            decode_lanes: 0,
        }
    }

    /// Selects the consistency scheme (default: PiCL).
    pub fn scheme(mut self, scheme: SchemeKind) -> Simulation {
        self.scheme = scheme;
        self
    }

    /// Assigns one benchmark per core; the core count of the configuration
    /// is adjusted to match.
    pub fn workload(mut self, benches: &[SpecBenchmark]) -> Simulation {
        self.spec = Some(WorkloadSpec::per_core(
            benches
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join("+"),
            benches.to_vec(),
        ));
        self
    }

    /// Uses a prebuilt workload specification.
    pub fn workload_spec(mut self, spec: WorkloadSpec) -> Simulation {
        self.spec = Some(spec);
        self
    }

    /// Instructions each core must retire (default: 1 M).
    pub fn instructions_per_core(mut self, n: u64) -> Simulation {
        self.instructions_per_core = n;
        self
    }

    /// Experiment seed (default: 0).
    pub fn seed(mut self, seed: u64) -> Simulation {
        self.seed = seed;
        self
    }

    /// Scales workload footprints (trade memory for speed; default 1.0).
    pub fn footprint_scale(mut self, scale: f64) -> Simulation {
        self.footprint_scale = scale;
        self
    }

    /// Keeps golden per-epoch snapshots for crash verification (off by
    /// default: snapshots of large footprints are memory-hungry).
    pub fn keep_snapshots(mut self, keep: bool) -> Simulation {
        self.keep_snapshots = keep;
        self
    }

    /// Runs on the unoptimized reference paths (full-scan drains, eager
    /// deep-clone snapshots). Reports must be identical either way; `picl
    /// bench` checks exactly that.
    pub fn reference_mode(mut self, on: bool) -> Simulation {
        self.reference_mode = on;
        self
    }

    /// Decodes traces on `n` background lane threads (0 = inline,
    /// default). Results are bit-identical for every lane count; `picl
    /// bench` checks exactly that on its multi-lane cells.
    pub fn decode_lanes(mut self, n: usize) -> Simulation {
        self.decode_lanes = n;
        self
    }

    /// Builds the machine without running it (for crash-injection tests).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the system configuration is invalid.
    pub fn into_machine(self) -> Result<Machine, ConfigError> {
        let spec = self
            .spec
            .unwrap_or_else(|| WorkloadSpec::single(SpecBenchmark::Bzip2));
        let mut cfg = self.cfg;
        cfg.cores = spec.cores();
        cfg.validate()?;
        let scheme = self.scheme.build(&cfg);
        let traces = spec.build_traces(self.seed, self.footprint_scale);
        let mut machine = Machine::new(cfg, scheme, traces, spec.label(), self.keep_snapshots);
        if self.reference_mode {
            machine.set_reference_mode(true);
        }
        if self.decode_lanes > 0 {
            machine.set_decode_lanes(self.decode_lanes);
        }
        Ok(machine)
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the system configuration is invalid.
    pub fn run(self) -> Result<RunReport, ConfigError> {
        let budget = self.instructions_per_core;
        let mut machine = self.into_machine()?;
        machine.run(budget);
        Ok(machine.report())
    }
}

/// One cell of an experiment matrix.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// System configuration (cores are adjusted to the workload).
    pub cfg: SystemConfig,
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Workload specification.
    pub workload: WorkloadSpec,
    /// Instructions each core must retire.
    pub instructions_per_core: u64,
    /// Experiment seed.
    pub seed: u64,
    /// Footprint scale factor.
    pub footprint_scale: f64,
}

impl Experiment {
    fn run(&self) -> RunReport {
        Simulation::builder(self.cfg.clone())
            .scheme(self.scheme)
            .workload_spec(self.workload.clone())
            .instructions_per_core(self.instructions_per_core)
            .seed(self.seed)
            .footprint_scale(self.footprint_scale)
            .run()
            .expect("experiment configuration must be valid")
    }
}

/// Experiments are campaign cells: the `Debug` rendering of the full
/// configuration is the content-hashed spec (any field change re-runs the
/// cell), and the payload is the [`RunReport`] JSON codec.
impl picl_campaign::CampaignCell for Experiment {
    type Payload = RunReport;

    fn spec_string(&self) -> String {
        format!("{self:?}")
    }

    fn label(&self) -> String {
        format!("{} on {}", self.scheme.name(), self.workload.label())
    }

    fn execute(&self) -> RunReport {
        self.run()
    }
}

/// Runs a batch of experiments on `threads` worker threads, returning
/// reports in the input order.
///
/// Cells are fault-isolated: one panicking experiment no longer kills its
/// siblings. Every other cell still completes, and this function then
/// panics with a per-cell failure summary (callers that need partial
/// results or checkpoint/resume use [`run_experiments_with`]).
pub fn run_experiments(experiments: &[Experiment], threads: usize) -> Vec<RunReport> {
    let opts = picl_campaign::CampaignOptions {
        threads: threads.max(1),
        ..picl_campaign::CampaignOptions::default()
    };
    run_experiments_with(experiments, &opts)
        .unwrap_or_else(|message| panic!("experiment campaign failed: {message}"))
}

/// Runs a batch of experiments under a full campaign policy — checkpoint
/// directory, resume, per-cell timeout, retries, progress reporting.
///
/// # Errors
///
/// Returns an aggregate message naming every cell that failed, timed out,
/// or was skipped by an early abort; completed cells are still durable in
/// the checkpoint store (when one is configured), so a re-launch with the
/// same options re-runs only the missing cells.
pub fn run_experiments_with(
    experiments: &[Experiment],
    opts: &picl_campaign::CampaignOptions,
) -> Result<Vec<RunReport>, String> {
    picl_campaign::run_cells(experiments, opts)?.payloads()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::paper_single_core();
        cfg.epoch.epoch_len_instructions = 20_000;
        cfg
    }

    #[test]
    fn scheme_kind_registry() {
        assert_eq!(SchemeKind::ALL.len(), 6);
        let cfg = SystemConfig::paper_single_core();
        for kind in SchemeKind::ALL {
            let scheme = kind.build(&cfg);
            assert_eq!(scheme.name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn reference_mode_reports_identical() {
        // The end-to-end form of the differential guarantee `picl bench`
        // enforces per cell: optimized fast paths vs full-scan reference.
        for kind in SchemeKind::ALL {
            let run = |reference: bool| {
                Simulation::builder(quick_cfg())
                    .scheme(kind)
                    .workload(&[SpecBenchmark::Gcc])
                    .instructions_per_core(30_000)
                    .footprint_scale(0.05)
                    .keep_snapshots(true)
                    .reference_mode(reference)
                    .run()
                    .unwrap()
            };
            assert_eq!(run(false), run(true), "{kind:?} diverged");
        }
    }

    #[test]
    fn workload_spec_constructors() {
        let single = WorkloadSpec::single(SpecBenchmark::Mcf);
        assert_eq!(single.cores(), 1);
        assert_eq!(single.label(), "mcf");

        let mixes = picl_trace::mixes::table_v_mixes();
        let mix = WorkloadSpec::mix(&mixes[2]);
        assert_eq!(mix.cores(), 8);
        assert_eq!(mix.label(), "W2");
    }

    #[test]
    fn traces_live_in_disjoint_address_spaces() {
        let spec = WorkloadSpec::per_core("t", vec![SpecBenchmark::Gamess, SpecBenchmark::Gamess]);
        let mut traces = spec.build_traces(1, 0.01);
        let a = traces[0].next_event().addr.raw();
        let b = traces[1].next_event().addr.raw();
        assert!(b >= CORE_ADDRESS_STRIDE);
        assert!(a < CORE_ADDRESS_STRIDE);
    }

    #[test]
    fn builder_runs_end_to_end() {
        let report = Simulation::builder(quick_cfg())
            .scheme(SchemeKind::Picl)
            .workload(&[SpecBenchmark::Povray])
            .instructions_per_core(50_000)
            .footprint_scale(0.05)
            .seed(3)
            .run()
            .unwrap();
        assert_eq!(report.scheme, "PiCL");
        assert_eq!(report.workload, "povray");
        assert!(report.instructions >= 50_000);
        assert!(report.commits >= 1);
    }

    #[test]
    fn invalid_config_is_reported() {
        let mut cfg = quick_cfg();
        cfg.epoch.epoch_len_instructions = 0;
        let err = Simulation::builder(cfg)
            .workload(&[SpecBenchmark::Povray])
            .run()
            .unwrap_err();
        assert_eq!(err.component(), "epoch");
    }

    #[test]
    fn experiment_matrix_preserves_order() {
        let experiments: Vec<Experiment> = [SchemeKind::Ideal, SchemeKind::Picl, SchemeKind::Frm]
            .into_iter()
            .map(|scheme| Experiment {
                cfg: quick_cfg(),
                scheme,
                workload: WorkloadSpec::single(SpecBenchmark::Povray),
                instructions_per_core: 30_000,
                seed: 1,
                footprint_scale: 0.05,
            })
            .collect();
        let reports = run_experiments(&experiments, 3);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].scheme, "Ideal");
        assert_eq!(reports[1].scheme, "PiCL");
        assert_eq!(reports[2].scheme, "FRM");
        // Same trace, same instruction totals: normalization is valid.
        assert_eq!(reports[0].instructions, reports[1].instructions);
        assert_eq!(reports[0].instructions, reports[2].instructions);
    }

    #[test]
    fn multicore_mix_runs() {
        let mixes = picl_trace::mixes::table_v_mixes();
        let report = Simulation::builder(quick_cfg())
            .scheme(SchemeKind::Picl)
            .workload_spec(WorkloadSpec::mix(&mixes[0]))
            .instructions_per_core(5_000)
            .footprint_scale(0.01)
            .run()
            .unwrap();
        assert_eq!(report.cores, 8);
        assert!(report.instructions >= 40_000);
    }
}
