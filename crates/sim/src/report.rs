//! Per-run result records.

use picl_cache::{HierarchyStats, SchemeStats};
use picl_nvm::NvmStats;
use picl_types::Cycle;

/// Everything a figure-regeneration harness needs from one simulation run.
///
/// Derives `PartialEq` so `picl bench` can require the optimized fast
/// paths and the full-scan reference produce bit-identical reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Scheme under test ("PiCL", "FRM", …).
    pub scheme: &'static str,
    /// Workload label (benchmark or mix name).
    pub workload: String,
    /// Cores simulated.
    pub cores: usize,
    /// Total instructions retired across all cores.
    pub instructions: u64,
    /// Wall-clock cycles: the slowest core's finishing time.
    pub total_cycles: Cycle,
    /// Epoch commits (including forced early commits).
    pub commits: u64,
    /// Commits forced by hardware-resource overflow.
    pub forced_commits: u64,
    /// Cycles lost to synchronous (stop-the-world) flushes.
    pub stall_cycles: u64,
    /// Scheme counters (log bytes, buffer flushes, …).
    pub scheme_stats: SchemeStats,
    /// NVM traffic statistics (for the Fig. 12 IOPS breakdown).
    pub nvm: NvmStats,
    /// Cache hierarchy statistics.
    pub hierarchy: HierarchyStats,
}

impl RunReport {
    /// Instructions per cycle, aggregated over all cores.
    pub fn ipc(&self) -> f64 {
        if self.total_cycles.raw() == 0 {
            0.0
        } else {
            self.instructions as f64 / self.total_cycles.raw() as f64
        }
    }

    /// Execution time normalized to a baseline run of the same workload
    /// (the y-axis of Figs. 9, 10, 15, 16).
    pub fn normalized_to(&self, baseline: &RunReport) -> f64 {
        assert_eq!(
            self.instructions, baseline.instructions,
            "normalizing across different workload lengths"
        );
        self.total_cycles.raw() as f64 / baseline.total_cycles.raw().max(1) as f64
    }

    /// Commits per `per_instructions` retired instructions (Fig. 11's
    /// commits-per-30M metric).
    pub fn commits_per(&self, per_instructions: u64) -> f64 {
        self.commits as f64 * per_instructions as f64 / self.instructions.max(1) as f64
    }

    /// Average observed epoch length in instructions (Fig. 14).
    pub fn observed_epoch_len(&self) -> f64 {
        self.instructions as f64 / self.commits.max(1) as f64
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} on {} ({} core{}):",
            self.scheme,
            self.workload,
            self.cores,
            if self.cores == 1 { "" } else { "s" }
        )?;
        writeln!(
            f,
            "  {} instructions in {} cycles (IPC {:.3})",
            self.instructions,
            self.total_cycles.raw(),
            self.ipc()
        )?;
        writeln!(
            f,
            "  commits: {} ({} forced), stall cycles: {}",
            self.commits, self.forced_commits, self.stall_cycles
        )?;
        writeln!(
            f,
            "  log: {} entries, {} written",
            self.scheme_stats.log_entries,
            picl_types::stats::format_bytes(self.scheme_stats.log_bytes_written)
        )?;
        let qd = &self.nvm.queue_depth;
        match (qd.p50(), qd.p90(), qd.p99()) {
            (Some(p50), Some(p90), Some(p99)) => writeln!(
                f,
                "  NVM queue depth: {} (p50 {p50:.1}, p90 {p90:.1}, p99 {p99:.1})",
                qd
            ),
            _ => writeln!(f, "  NVM queue depth: {qd}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, instructions: u64, commits: u64) -> RunReport {
        RunReport {
            scheme: "PiCL",
            workload: "test".to_owned(),
            cores: 1,
            instructions,
            total_cycles: Cycle(cycles),
            commits,
            forced_commits: 0,
            stall_cycles: 0,
            scheme_stats: SchemeStats::default(),
            nvm: NvmStats::new(),
            hierarchy: HierarchyStats::default(),
        }
    }

    #[test]
    fn ipc_and_normalization() {
        let base = report(1000, 2000, 1);
        let slow = report(1500, 2000, 1);
        assert!((base.ipc() - 2.0).abs() < 1e-12);
        assert!((slow.normalized_to(&base) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different workload lengths")]
    fn normalizing_mismatched_runs_panics() {
        let a = report(10, 100, 1);
        let b = report(10, 200, 1);
        let _ = a.normalized_to(&b);
    }

    #[test]
    fn commit_metrics() {
        let r = report(1000, 60_000_000, 4);
        assert!((r.commits_per(30_000_000) - 2.0).abs() < 1e-12);
        assert!((r.observed_epoch_len() - 15_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn display_contains_key_fields() {
        let s = report(10, 20, 1).to_string();
        assert!(s.contains("PiCL"));
        assert!(s.contains("IPC"));
    }
}
