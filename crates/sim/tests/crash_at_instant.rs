//! Property tests for crash-at-instant recovery: PiCL must recover to a
//! consistent committed image no matter where on the timeline the plug is
//! pulled — at a sampled mid-epoch instant or inside the boundary flush
//! window after a partial register-file checkpoint.

use proptest::prelude::*;

use picl_sim::{Machine, SchemeKind, Simulation, WorkloadSpec};
use picl_trace::spec::SpecBenchmark;
use picl_types::SystemConfig;

fn build(bench: SpecBenchmark, seed: u64) -> Machine {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = 25_000;
    Simulation::builder(cfg)
        .scheme(SchemeKind::Picl)
        .workload_spec(WorkloadSpec::single(bench))
        .seed(seed)
        .footprint_scale(0.05)
        .keep_snapshots(true)
        .into_machine()
        .expect("valid configuration")
}

fn bench_strategy() -> impl Strategy<Value = SpecBenchmark> {
    prop_oneof![
        Just(SpecBenchmark::Gcc),
        Just(SpecBenchmark::Mcf),
        Just(SpecBenchmark::Bzip2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash PiCL at an arbitrary sampled retired-instruction count: the
    /// recovered NVM image must match the golden snapshot of the epoch the
    /// scheme rolls back to, with zero mismatching lines.
    #[test]
    fn picl_recovers_consistently_at_any_instant(
        at in 1_000u64..180_000,
        seed in any::<u64>(),
        bench in bench_strategy(),
    ) {
        let mut m = build(bench, seed);
        let ran = m.run_until(at);
        prop_assert!(ran >= at || ran == m.instructions());
        let report = m.crash();
        prop_assert_eq!(
            report.consistent,
            Some(true),
            "inconsistent at {} on {:?} (seed {}): {} mismatching lines",
            at, bench, seed, report.mismatch_count
        );
        prop_assert_eq!(report.mismatch_count, 0);
        prop_assert!(report.mismatches.is_empty());
    }

    /// Crash inside the epoch-boundary flush window, after the OS handler
    /// has checkpointed some (possibly zero) register files: recovery must
    /// still land on a committed image.
    #[test]
    fn picl_recovers_after_partial_boundary_checkpoint(
        epochs in 1u64..6,
        cores_done in 0usize..2,
        seed in any::<u64>(),
    ) {
        let mut m = build(SpecBenchmark::Gcc, seed);
        m.run_until(epochs * 25_000);
        let report = m.crash_mid_boundary(cores_done);
        prop_assert_eq!(
            report.consistent,
            Some(true),
            "inconsistent after boundary[{}] at epoch {} (seed {}): {} mismatching lines",
            cores_done, epochs, seed, report.mismatch_count
        );
    }
}
