//! End-to-end protocol auditing: every scheme in the evaluation matrix
//! must run — and crash-recover — without a single invariant violation,
//! whether the audit rides an existing telemetry recorder or creates its
//! own sink-only one.

use picl_audit::Verdict;
use picl_sim::{SchemeKind, Simulation};
use picl_trace::spec::SpecBenchmark;
use picl_types::SystemConfig;

fn quick_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = 10_000;
    cfg
}

fn machine_for(kind: SchemeKind) -> picl_sim::Machine {
    Simulation::builder(quick_cfg())
        .scheme(kind)
        .workload(&[SpecBenchmark::Gcc])
        .footprint_scale(0.05)
        .keep_snapshots(true)
        .seed(7)
        .into_machine()
        .expect("valid configuration")
}

#[test]
fn every_scheme_runs_audit_clean() {
    for kind in SchemeKind::ALL {
        let mut machine = machine_for(kind);
        let audit = machine.enable_audit();
        machine.run(60_000);
        let report = audit.report();
        assert_eq!(report.verdict, Verdict::Pass, "{kind:?}:\n{report}");
        assert!(report.events_seen > 0, "{kind:?} emitted no audit events");
    }
}

#[test]
fn every_scheme_survives_a_crash_audit_clean() {
    for kind in SchemeKind::ALL {
        let mut machine = machine_for(kind);
        let audit = machine.enable_audit();
        machine.run(40_000);
        let crash = machine.crash();
        let report = audit.report();
        assert_eq!(
            report.verdict,
            Verdict::Pass,
            "{kind:?} (recovered_to {:?}):\n{report}",
            crash.outcome.recovered_to
        );
    }
}

#[test]
fn audit_taps_an_already_enabled_recorder() {
    let mut machine = machine_for(SchemeKind::Picl);
    let telemetry = machine.enable_telemetry(1 << 16, 10_000);
    let audit = machine.enable_audit();
    machine.run(40_000);
    let report = audit.report();
    assert_eq!(report.verdict, Verdict::Pass, "{report}");
    // The rings kept up, so the exported stream agrees with the online
    // verdict when re-audited offline.
    let snap = telemetry.snapshot();
    assert_eq!(snap.dropped, 0, "raise ring capacity if this fires");
    let jsonl = picl_telemetry::export::jsonl_to_string(&snap);
    let lines = picl_audit::parse_trace(&jsonl).expect("exported stream parses");
    let offline = picl_audit::audit_trace(
        &lines,
        picl_audit::AuditConfig {
            acs_gap: Some(quick_cfg().epoch.acs_gap),
        },
    );
    assert_eq!(offline.verdict, Verdict::Pass, "offline:\n{offline}");
    assert!(offline.events_seen > 0);
}

#[test]
fn mid_boundary_crash_stays_audit_clean() {
    let mut machine = machine_for(SchemeKind::Picl);
    let audit = machine.enable_audit();
    machine.run(30_000);
    machine.crash_mid_boundary(0);
    let report = audit.report();
    assert_eq!(report.verdict, Verdict::Pass, "{report}");
}
