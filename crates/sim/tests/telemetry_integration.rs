//! End-to-end telemetry capture: a real PiCL run with tracing enabled must
//! produce the event stream the paper's timeline figures are built from —
//! epoch lifecycle, undo-buffer drains, ACS passes, NVM traffic — and every
//! exporter output must be machine-parseable.

use picl_sim::{SchemeKind, Simulation};
use picl_telemetry::export::{chrome_trace_to_string, jsonl_to_string, series_csv_to_string};
use picl_telemetry::json::{validate_json, validate_jsonl};
use picl_telemetry::{EventKind, TelemetrySnapshot};
use picl_trace::spec::SpecBenchmark;
use picl_types::SystemConfig;

fn traced_run(scheme: SchemeKind) -> TelemetrySnapshot {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = 10_000;
    let mut machine = Simulation::builder(cfg)
        .scheme(scheme)
        .workload(&[SpecBenchmark::Gcc])
        .footprint_scale(0.05)
        .seed(11)
        .keep_snapshots(false)
        .into_machine()
        .expect("valid configuration");
    let telemetry = machine.enable_telemetry(1 << 16, 5_000);
    machine.run(60_000);
    telemetry.snapshot()
}

#[test]
fn picl_run_captures_the_full_event_vocabulary() {
    let snap = traced_run(SchemeKind::Picl);

    let count =
        |pred: &dyn Fn(&EventKind) -> bool| snap.events.iter().filter(|e| pred(&e.kind)).count();
    assert!(
        count(&|k| matches!(k, EventKind::EpochBegin { .. })) >= 2,
        "several epochs must begin"
    );
    assert!(
        count(&|k| matches!(k, EventKind::EpochCommit { .. })) >= 2,
        "several epochs must commit"
    );
    assert!(
        count(&|k| matches!(k, EventKind::UndoDrain { .. })) >= 1,
        "the undo buffer must drain at boundaries"
    );
    assert!(
        count(&|k| matches!(k, EventKind::AcsScan { .. })) >= 1,
        "the ACS must complete at least one pass"
    );
    assert!(
        count(&|k| matches!(k, EventKind::NvmAccess { .. })) >= 1,
        "NVM traffic must be recorded"
    );
    assert_eq!(snap.dropped, 0, "ring must be large enough for this run");

    // Timestamps are merged in nondecreasing order across all lanes.
    assert!(
        snap.events.windows(2).all(|w| w[0].at <= w[1].at),
        "snapshot events must be time-sorted"
    );

    // Gauges sampled into series.
    let names: Vec<&str> = snap.series.iter().map(|s| s.name).collect();
    for expected in [
        "nvm_queue_depth",
        "llc_dirty_lines",
        "open_epochs",
        "undo_buffer_fill",
    ] {
        assert!(names.contains(&expected), "missing series {expected}");
    }
}

#[test]
fn every_exporter_output_parses() {
    let snap = traced_run(SchemeKind::Picl);

    let jsonl = jsonl_to_string(&snap);
    let lines = validate_jsonl(&jsonl).expect("JSONL must parse");
    assert!(lines as usize >= snap.events.len(), "one line per event");

    let chrome = chrome_trace_to_string(&snap, 2000.0);
    validate_json(&chrome).expect("Chrome trace must be valid JSON");
    assert!(chrome.contains("\"traceEvents\""));

    let csv = series_csv_to_string(&snap);
    assert!(csv.starts_with("series,cycle,value\n"));
    assert!(csv.lines().count() > 1, "series points must be exported");
}

#[test]
fn crash_and_recovery_land_on_the_crash_track() {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = 10_000;
    let mut machine = Simulation::builder(cfg)
        .scheme(SchemeKind::Picl)
        .workload(&[SpecBenchmark::Gcc])
        .footprint_scale(0.05)
        .seed(11)
        .keep_snapshots(true)
        .into_machine()
        .expect("valid configuration");
    let telemetry = machine.enable_telemetry(1 << 16, 5_000);
    machine.run(40_000);
    let crash = machine.crash();
    assert_eq!(crash.consistent, Some(true));

    let snap = telemetry.snapshot();
    assert!(snap
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::CrashInjected)));
    assert!(snap
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::RecoveryStart)));
    let done = snap
        .events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::RecoveryDone { recovered_to, .. } => Some(recovered_to),
            _ => None,
        })
        .expect("recovery completion must be recorded");
    assert_eq!(done, crash.outcome.recovered_to);
}

#[test]
fn frm_records_stalls_but_never_acs() {
    let snap = traced_run(SchemeKind::Frm);
    assert!(
        snap.events
            .iter()
            .any(|e| matches!(e.kind, EventKind::BoundaryStall { .. })),
        "FRM stalls the world at every commit"
    );
    assert!(
        !snap
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::AcsScan { .. })),
        "only PiCL runs the asynchronous cache scan"
    );
}

#[test]
fn disabled_telemetry_records_nothing() {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = 10_000;
    let mut machine = Simulation::builder(cfg)
        .scheme(SchemeKind::Picl)
        .workload(&[SpecBenchmark::Gcc])
        .footprint_scale(0.05)
        .seed(11)
        .keep_snapshots(false)
        .into_machine()
        .expect("valid configuration");
    machine.run(30_000);
    let report = machine.report();
    assert!(report.instructions >= 30_000);
    // The report still carries the queue-depth census (recorded by the NVM
    // itself, independent of the telemetry subsystem).
    assert!(report.nvm.queue_depth.count() > 0);
}
