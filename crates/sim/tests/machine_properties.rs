//! Property tests for the simulation machine: timing sanity, accounting
//! invariants, and scheme-independent functional state.

use proptest::prelude::*;

use picl_sim::{Machine, SchemeKind, Simulation, WorkloadSpec};
use picl_trace::spec::SpecBenchmark;
use picl_types::{Cycle, SystemConfig};

fn build(scheme: SchemeKind, bench: SpecBenchmark, epoch: u64, seed: u64) -> Machine {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = epoch;
    Simulation::builder(cfg)
        .scheme(scheme)
        .workload_spec(WorkloadSpec::single(bench))
        .seed(seed)
        .footprint_scale(0.05)
        .into_machine()
        .expect("valid configuration")
}

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    proptest::sample::select(SchemeKind::ALL.to_vec())
}

fn bench_strategy() -> impl Strategy<Value = SpecBenchmark> {
    prop_oneof![
        Just(SpecBenchmark::Mcf),
        Just(SpecBenchmark::Lbm),
        Just(SpecBenchmark::Gamess),
        Just(SpecBenchmark::Xalancbmk),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Time moves forward, instructions are retired, IPC is positive and
    /// below the in-order bound of 1.0.
    #[test]
    fn timing_sanity(
        scheme in scheme_strategy(),
        bench in bench_strategy(),
        budget in 50_000u64..200_000,
        seed in any::<u64>(),
    ) {
        let mut m = build(scheme, bench, 30_000, seed);
        m.run(budget);
        let r = m.report();
        prop_assert!(r.instructions >= budget);
        prop_assert!(r.total_cycles > Cycle::ZERO);
        let ipc = r.ipc();
        prop_assert!(ipc > 0.0 && ipc <= 1.0, "IPC {ipc} out of range");
    }

    /// The functional memory view is scheme-independent: after identical
    /// runs, the logical (all-stores) image is identical across schemes.
    #[test]
    fn logical_memory_is_scheme_independent(
        bench in bench_strategy(),
        seed in any::<u64>(),
    ) {
        let mut a = build(SchemeKind::Ideal, bench, 30_000, seed);
        let mut b = build(SchemeKind::Picl, bench, 30_000, seed);
        let mut c = build(SchemeKind::Journaling, bench, 30_000, seed);
        a.run(80_000);
        b.run(80_000);
        c.run(80_000);
        prop_assert!(a.logical_memory().diff(b.logical_memory()).is_empty());
        prop_assert!(a.logical_memory().diff(c.logical_memory()).is_empty());
        prop_assert_eq!(a.instructions(), b.instructions());
        prop_assert_eq!(a.instructions(), c.instructions());
    }

    /// Caches plus memory always agree with the logical image: for any
    /// line the logical image knows, the cached value (if resident) or the
    /// freshest scheme/NVM value must match. Spot-check via cached lines.
    #[test]
    fn cached_values_match_logical(
        scheme in scheme_strategy(),
        seed in any::<u64>(),
    ) {
        let mut m = build(scheme, SpecBenchmark::Gamess, 25_000, seed);
        m.run(60_000);
        let mut checked = 0;
        for (line, value) in m.logical_memory().iter() {
            if let Some(cached) = m.hierarchy_cached_value(line) {
                prop_assert_eq!(cached, value, "line {} cached stale", line);
                checked += 1;
                if checked > 200 {
                    break;
                }
            }
        }
        prop_assert!(checked > 0, "no resident lines to check");
    }
}
