//! Property test: the optimized packed-table paths against the retained
//! reference scan, end to end, for every consistency scheme.
//!
//! Reference mode drives drains and snapshot bookkeeping through full
//! struct-level scans of the hierarchy; fast mode uses the packed SoA
//! tables, the epoch index, and delta snapshots. Arbitrary combinations
//! of scheme, workload, epoch length, and seed — which between them
//! exercise stores, capacity evictions, asynchronous cache scans, and
//! epoch commits in every interleaving the machine can produce — must
//! yield bit-identical run reports. Crash-at-instant recovery must agree
//! between the two modes as well.

use proptest::prelude::*;

use picl_sim::{SchemeKind, Simulation, WorkloadSpec};
use picl_trace::spec::SpecBenchmark;
use picl_types::SystemConfig;

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    proptest::sample::select(SchemeKind::ALL.to_vec())
}

fn bench_strategy() -> impl Strategy<Value = SpecBenchmark> {
    prop_oneof![
        Just(SpecBenchmark::Gcc),
        Just(SpecBenchmark::Mcf),
        Just(SpecBenchmark::Libquantum),
    ]
}

fn build(
    scheme: SchemeKind,
    bench: SpecBenchmark,
    epoch_len: u64,
    seed: u64,
    reference: bool,
) -> Simulation {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = epoch_len;
    Simulation::builder(cfg)
        .scheme(scheme)
        .workload_spec(WorkloadSpec::single(bench))
        .instructions_per_core(60_000)
        .seed(seed)
        .footprint_scale(0.05)
        .keep_snapshots(true)
        .reference_mode(reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_schemes_match_reference_scan(
        scheme in scheme_strategy(),
        bench in bench_strategy(),
        epoch_len in 2_000u64..30_000,
        seed in any::<u64>(),
    ) {
        let fast = build(scheme, bench, epoch_len, seed, false)
            .run()
            .expect("fast run");
        let reference = build(scheme, bench, epoch_len, seed, true)
            .run()
            .expect("reference run");
        prop_assert_eq!(
            fast, reference,
            "reports diverged: {:?}/{:?} epoch {} seed {}",
            scheme, bench, epoch_len, seed
        );
    }

    #[test]
    fn crash_recovery_matches_reference_scan(
        scheme in scheme_strategy(),
        at in 5_000u64..55_000,
        seed in any::<u64>(),
    ) {
        let crash = |reference: bool| {
            let mut m = build(scheme, SpecBenchmark::Gcc, 10_000, seed, reference)
                .into_machine()
                .expect("valid configuration");
            m.run_until(at);
            let report = m.crash();
            (m.instructions(), report)
        };
        let (fast_instr, fast) = crash(false);
        let (ref_instr, reference) = crash(true);
        prop_assert_eq!(fast_instr, ref_instr);
        prop_assert_eq!(
            fast, reference,
            "crash reports diverged: {:?} at {} seed {}",
            scheme, at, seed
        );
    }
}
