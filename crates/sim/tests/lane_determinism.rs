//! Decode-lane determinism: the lane count is a throughput knob, never a
//! semantics knob. Each core's trace source is advanced sequentially by
//! exactly one producer in chunk order, so the canonical per-core event
//! stream — and with it the merged simulation — is identical whether
//! decode runs inline or fanned out over any number of lane threads.

use picl_sim::{RunReport, SchemeKind, Simulation, WorkloadSpec};
use picl_trace::mixes::table_v_mixes;
use picl_trace::spec::SpecBenchmark;
use picl_types::SystemConfig;

fn run_with_lanes(scheme: SchemeKind, lanes: usize, reference: bool) -> RunReport {
    let mut cfg = SystemConfig::paper_multicore(8);
    cfg.epoch.epoch_len_instructions = 2_000;
    Simulation::builder(cfg)
        .scheme(scheme)
        .workload_spec(WorkloadSpec::mix(&table_v_mixes()[0]))
        .instructions_per_core(20_000)
        .seed(42)
        .footprint_scale(0.02)
        .keep_snapshots(true)
        .reference_mode(reference)
        .decode_lanes(lanes)
        .run()
        .expect("simulation runs")
}

#[test]
fn reports_identical_across_lane_counts() {
    for scheme in [SchemeKind::Ideal, SchemeKind::Picl] {
        let inline = run_with_lanes(scheme, 0, false);
        for lanes in [1usize, 2, 4, 8] {
            let laned = run_with_lanes(scheme, lanes, false);
            assert_eq!(
                inline, laned,
                "{scheme:?}: report diverged at {lanes} decode lanes"
            );
        }
    }
}

#[test]
fn laned_decode_matches_reference_path() {
    // Lanes compose with the reference (retained-struct scan) mode: both
    // axes must leave the report untouched.
    let reference = run_with_lanes(SchemeKind::Picl, 0, true);
    let laned_fast = run_with_lanes(SchemeKind::Picl, 4, false);
    assert_eq!(reference, laned_fast);
}

#[test]
fn lane_count_clamps_to_core_count() {
    // More lanes than cores must behave exactly like lanes == cores.
    let eight = run_with_lanes(SchemeKind::Picl, 8, false);
    let mut cfg = SystemConfig::paper_multicore(8);
    cfg.epoch.epoch_len_instructions = 2_000;
    let over = Simulation::builder(cfg)
        .scheme(SchemeKind::Picl)
        .workload_spec(WorkloadSpec::mix(&table_v_mixes()[0]))
        .instructions_per_core(20_000)
        .seed(42)
        .footprint_scale(0.02)
        .keep_snapshots(true)
        .decode_lanes(64)
        .run()
        .expect("simulation runs");
    assert_eq!(eight, over);
}

#[test]
fn single_core_lane_matches_inline() {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = 5_000;
    let build = |lanes: usize| {
        let mut cfg = cfg.clone();
        cfg.epoch.epoch_len_instructions = 5_000;
        Simulation::builder(cfg)
            .scheme(SchemeKind::Picl)
            .workload(&[SpecBenchmark::Gcc])
            .instructions_per_core(50_000)
            .seed(7)
            .footprint_scale(0.05)
            .keep_snapshots(true)
            .decode_lanes(lanes)
            .run()
            .expect("simulation runs")
    };
    assert_eq!(build(0), build(1));
}
