//! A vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace's property suites were written against upstream proptest,
//! but this build environment is hermetic (no crates.io access), so the
//! registry crate cannot be fetched. This crate reimplements exactly the
//! API surface the suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, doc
//!   comments, `#[test]` pass-through, and `pat in strategy` arguments);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`];
//! * [`strategy::Strategy`] with `prop_map` and `new_tree`,
//!   [`strategy::ValueTree`], [`strategy::Just`];
//! * range strategies for the primitive integer/float types,
//!   [`arbitrary::any`], [`collection::vec`], [`sample::select`];
//! * [`test_runner::TestRunner`] and [`test_runner::ProptestConfig`].
//!
//! Semantics differ from upstream in two deliberate ways. Case generation
//! is fully deterministic — the case seed is derived from the source file,
//! test name, and case index, so CI and local runs explore the same inputs
//! (upstream seeds from OS entropy). And failing inputs are *not* shrunk;
//! the failing case seed is persisted to the sibling
//! `<test-file>.proptest-regressions` file (same `cc <hex>` line format as
//! upstream) and replayed before novel cases on the next run, which keeps
//! regressions pinned even without shrinking.

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes an ordinary `#[test]` (the attribute is passed through)
/// that runs the body over `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ( $($strat,)+ );
                $crate::test_runner::run_proptest(
                    $cfg,
                    file!(),
                    env!("CARGO_MANIFEST_DIR"),
                    stringify!($name),
                    strategy,
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts within a property body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Chooses uniformly among several strategies producing the same value
/// type. (Upstream's `weight => strategy` form is not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, ::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>),+
        ])
    };
}
