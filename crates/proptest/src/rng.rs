//! The shim's internal deterministic generator.
//!
//! SplitMix64: tiny, seedable, and statistically fine for driving test-case
//! generation. Kept separate from `picl-types`' xoshiro generator so the
//! shim has no dependencies (and so simulator RNG changes can never
//! silently reshuffle every property test's inputs).

/// A seeded SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Widening-multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// One SplitMix64 scramble step, used to derive per-case seeds.
pub fn mix(x: u64) -> u64 {
    TestRng::new(x).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_bounds() {
        let mut rng = TestRng::new(7);
        for bound in [1, 2, 3, 17, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_in_interval() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
