//! The `any::<T>()` entry point: full-domain generation for primitives.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::rng::TestRng;
use crate::strategy::Any;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Clone + Debug {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Uniform over scalar values, skipping the surrogate gap.
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn bool_hits_both_values() {
        let mut rng = TestRng::new(3);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(s.pick(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn ints_generate() {
        let mut rng = TestRng::new(4);
        let _: u64 = any::<u64>().pick(&mut rng);
        let _: u32 = any::<u32>().pick(&mut rng);
        let _: i64 = any::<i64>().pick(&mut rng);
        let _: char = any::<char>().pick(&mut rng);
    }
}
