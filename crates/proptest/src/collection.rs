//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// A length specification: a half-open range or an exact count.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let width = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(width) as usize;
        (0..len).map(|_| self.element.pick(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_in_range_and_elements_valid() {
        let mut rng = TestRng::new(5);
        let s = vec(0u64..10, 2..7);
        for _ in 0..100 {
            let v = s.pick(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn exact_size() {
        let mut rng = TestRng::new(8);
        let s = vec(0u64..10, 32usize);
        for _ in 0..10 {
            assert_eq!(s.pick(&mut rng).len(), 32);
        }
    }
}
