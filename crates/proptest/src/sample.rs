//! Sampling strategies (`proptest::sample::select`).

use std::fmt::Debug;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Chooses uniformly among the given items.
pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select needs at least one item");
    Select { items }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_only_given_items() {
        let s = select(vec![3u8, 5, 7]);
        let mut rng = TestRng::new(6);
        for _ in 0..100 {
            assert!([3, 5, 7].contains(&s.pick(&mut rng)));
        }
    }
}
