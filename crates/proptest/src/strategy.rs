//! Strategies: composable recipes for generating test inputs.
//!
//! A [`Strategy`] deterministically turns RNG bits into a value. Unlike
//! upstream proptest there is no shrinking lattice: a [`ValueTree`] is just
//! the generated value.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::test_runner::TestRunner;

/// A generated value (upstream: a node in the shrink lattice; here: just
/// the value itself).
pub trait ValueTree {
    /// The type produced.
    type Value;
    /// The value this tree currently represents.
    fn current(&self) -> Self::Value;
}

/// The concrete [`ValueTree`] all shim strategies produce.
#[derive(Debug, Clone)]
pub struct Holder<T>(pub T);

impl<T: Clone> ValueTree for Holder<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value: Clone + Debug;

    /// Draws one value from `rng`.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Draws one value using a runner's RNG (upstream-compatible entry
    /// point; infallible here, the `Result` mirrors upstream's signature).
    fn new_tree(&self, runner: &mut TestRunner) -> Result<Holder<Self::Value>, String> {
        Ok(Holder(self.pick(runner.rng())))
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + Debug,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn pick(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.pick(rng))
    }
}

/// Object-safe strategy facade, so [`Union`] (and `prop_oneof!`) can mix
/// differently-typed strategies that produce one value type.
pub trait DynStrategy<V> {
    /// Draws one value.
    fn pick_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn pick_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.pick(rng)
    }
}

/// Uniform choice among strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<(u32, Box<dyn DynStrategy<V>>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a uniform union; `options` must be non-empty.
    pub fn new(options: Vec<Box<dyn DynStrategy<V>>>) -> Self {
        Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Builds a union picking each strategy proportionally to its weight;
    /// `options` must be non-empty with positive total weight.
    pub fn new_weighted(options: Vec<(u32, Box<dyn DynStrategy<V>>)>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union {
            options,
            total_weight,
        }
    }
}

impl<V: Clone + Debug> Strategy for Union<V> {
    type Value = V;
    fn pick(&self, rng: &mut TestRng) -> V {
        let mut r = rng.below(self.total_weight);
        for (weight, strat) in &self.options {
            let weight = u64::from(*weight);
            if r < weight {
                return strat.pick_dyn(rng);
            }
            r -= weight;
        }
        unreachable!("weights sum to total_weight")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u64).wrapping_sub(lo as u64);
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(width + 1) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the (excluded) endpoint.
        v.min(self.end - f64::EPSILON * self.end.abs().max(1.0))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn pick(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        v.min(self.end - f32::EPSILON * self.end.abs().max(1.0))
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Strategy for any [`crate::arbitrary::Arbitrary`] type; see
/// [`crate::arbitrary::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u64..17).pick(&mut r);
            assert!((3..17).contains(&v));
            let w = (4u32..=16).pick(&mut r);
            assert!((4..=16).contains(&w));
            let f = (0.25f64..0.75).pick(&mut r);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i32..5).pick(&mut r);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut r = rng();
        let _ = (0u64..=u64::MAX).pick(&mut r);
        let _ = (0u8..=u8::MAX).pick(&mut r);
    }

    #[test]
    fn map_and_just() {
        let mut r = rng();
        let s = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert_eq!(s.pick(&mut r) % 2, 0);
        }
        assert_eq!(Just(7u8).pick(&mut r), 7);
    }

    #[test]
    fn union_covers_all_options() {
        let u: Union<u64> = Union::new(vec![Box::new(Just(1u64)), Box::new(Just(2u64))]);
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.pick(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b, c) = ((0u64..4), (0usize..2), Just(true)).pick(&mut r);
        assert!(a < 4 && b < 2 && c);
    }

    #[test]
    fn new_tree_current_roundtrips() {
        let mut runner = TestRunner::deterministic();
        let v = (0u64..100).new_tree(&mut runner).unwrap().current();
        assert!(v < 100);
    }
}
