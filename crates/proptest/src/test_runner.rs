//! The case loop: replay persisted regressions, generate novel cases,
//! persist the first failure.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::rng::{mix, TestRng};
use crate::strategy::Strategy;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config differing from the default only in case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why one generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input fell outside the property's assumptions; try another.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Holds the RNG strategies draw from; mirrors upstream's type so code can
/// call `strategy.new_tree(&mut runner)` directly.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// A runner with a fixed, documented seed: every call site sees the
    /// same sequence.
    pub fn deterministic() -> Self {
        TestRunner {
            rng: TestRng::new(0x0000_5EED_0000_5EED),
        }
    }

    /// A runner seeded explicitly.
    pub fn from_seed(seed: u64) -> Self {
        TestRunner {
            rng: TestRng::new(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// Drives one `proptest!`-generated test: replays persisted regression
/// seeds first, then novel deterministic cases until `config.cases` pass.
/// Panics (failing the surrounding `#[test]`) on the first failing case,
/// after persisting its seed.
pub fn run_proptest<S, F>(
    config: ProptestConfig,
    source_file: &str,
    manifest_dir: &str,
    test_name: &str,
    strategy: S,
    test: F,
) where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let regression_path = regression_file(source_file, manifest_dir);
    let persisted = regression_path
        .as_deref()
        .map(load_regression_seeds)
        .unwrap_or_default();

    let base = mix(fnv1a(source_file.as_bytes()) ^ fnv1a(test_name.as_bytes()));
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut novel: u64 = 0;
    let mut replay = persisted.into_iter();

    while passed < config.cases {
        let (seed, is_replay) = match replay.next() {
            Some(s) => (s, true),
            None => {
                let s = mix(base.wrapping_add(novel));
                novel += 1;
                (s, false)
            }
        };
        let mut rng = TestRng::new(seed);
        let value = strategy.pick(&mut rng);
        let shown = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) if !is_replay => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{test_name}: too many rejected cases ({rejected}); \
                     weaken the prop_assume! or widen the strategies"
                );
            }
            // A persisted seed whose assumption no longer holds is stale,
            // not a failure.
            Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                fail(&regression_path, test_name, seed, &shown, &msg, passed)
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                fail(&regression_path, test_name, seed, &shown, &msg, passed)
            }
        }
    }
}

fn fail(
    regression_path: &Option<PathBuf>,
    test_name: &str,
    seed: u64,
    value: &str,
    msg: &str,
    passed: u32,
) -> ! {
    if let Some(path) = regression_path {
        persist_seed(path, seed, value);
    }
    panic!(
        "proptest case failed: {msg}\n\
         test: {test_name}, case seed: {seed:016x} (persisted), \
         {passed} cases passed before failure\n\
         failing input: {value}"
    );
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "test body panicked".to_owned()
    }
}

/// `tests/foo.rs` → `<manifest>/tests/foo.proptest-regressions`, the
/// sibling-file convention this repo already uses. Tests outside a `tests`
/// directory get no persistence.
fn regression_file(source_file: &str, manifest_dir: &str) -> Option<PathBuf> {
    let src = Path::new(source_file);
    let stem = src.file_stem()?;
    if src.parent()?.file_name()? != "tests" {
        return None;
    }
    let dir = Path::new(manifest_dir).join("tests");
    if !dir.is_dir() {
        return None;
    }
    let mut name = stem.to_owned();
    name.push(".proptest-regressions");
    Some(dir.join(name))
}

/// Parses `cc <hex>` lines. Seeds this shim wrote are 16 hex digits and
/// parse back exactly; longer tokens (written by upstream proptest) are
/// folded to a deterministic 64-bit seed so they still replay *a* case.
fn load_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            if token.len() == 16 {
                if let Ok(seed) = u64::from_str_radix(token, 16) {
                    return Some(seed);
                }
            }
            Some(fnv1a(token.as_bytes()))
        })
        .collect()
}

fn persist_seed(path: &Path, seed: u64, value: &str) {
    use std::io::Write;
    let header = !path.exists();
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    if header {
        let _ = writeln!(
            file,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases."
        );
    }
    let one_line = value.replace('\n', " ");
    let _ = writeln!(file, "cc {seed:016x} # shrinks to {one_line}");
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(24).cases, 24);
    }

    #[test]
    fn deterministic_runner_repeats() {
        let mut a = TestRunner::deterministic();
        let mut b = TestRunner::deterministic();
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }

    #[test]
    fn run_passes_trivially_true_property() {
        run_proptest(
            ProptestConfig::with_cases(16),
            "src/test_runner.rs",
            env!("CARGO_MANIFEST_DIR"),
            "trivial",
            (0u64..100,),
            |(v,)| {
                assert!(v < 100);
                Ok(())
            },
        );
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn run_reports_failures() {
        run_proptest(
            ProptestConfig::with_cases(16),
            "src/test_runner.rs",
            env!("CARGO_MANIFEST_DIR"),
            "always_false",
            (0u64..100,),
            |(_v,)| Err(TestCaseError::fail("nope")),
        );
    }

    #[test]
    #[should_panic(expected = "too many rejected")]
    fn run_caps_rejections() {
        run_proptest(
            ProptestConfig {
                cases: 4,
                max_global_rejects: 8,
            },
            "src/test_runner.rs",
            env!("CARGO_MANIFEST_DIR"),
            "always_rejected",
            (0u64..100,),
            |(_v,)| Err(TestCaseError::reject("never satisfiable")),
        );
    }

    #[test]
    fn regression_seed_parsing() {
        let dir = std::env::temp_dir().join("proptest_shim_seed_parse");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.proptest-regressions");
        std::fs::write(
            &path,
            "# comment\ncc 00000000000000ff # shrinks to v = 1\ncc fc7fe7e35e6a56bb55 # legacy\n",
        )
        .unwrap();
        let seeds = load_regression_seeds(&path);
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0], 0xff);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn regression_file_only_for_tests_dirs() {
        assert!(regression_file("src/lib.rs", env!("CARGO_MANIFEST_DIR")).is_none());
    }
}
