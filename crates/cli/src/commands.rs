//! Subcommand implementations for the `picl` CLI.

use picl_campaign::CampaignOptions;
use picl_crashlab::{run_campaign_with, CampaignConfig, CrashPoint, LabScheme, TrialSpec};
use picl_nvm::TrafficCategory;
use picl_sim::{
    run_experiments_with, Experiment, Machine, RunReport, SchemeKind, Simulation, WorkloadSpec,
};
use picl_telemetry::export::{chrome_trace_to_string, jsonl_to_string, series_csv_to_string};
use picl_telemetry::json::{validate_json, validate_jsonl};
use picl_telemetry::TelemetrySnapshot;
use picl_trace::file::{write_trace, RecordedTrace};
use picl_trace::spec::SpecBenchmark;
use picl_trace::TraceSource;
use picl_types::stats::format_bytes;
use picl_types::SystemConfig;

use crate::args::{ArgError, Args};

/// Top-level usage text.
pub const USAGE: &str = "\
usage: picl <command> [--flag value]...

commands:
  run         simulate one scheme on one workload and print the report
  compare     run every scheme on one workload, normalized to Ideal
  crash       run, pull the plug, recover, and verify consistency
  crashlab    crash-injection campaign: schemes x benchmarks x crash points
  trace       run with telemetry on and export the recording
  audit       check an exported .events.jsonl stream against the PiCL
              protocol invariants (exit nonzero on any violation)
  analyze     offline trace analytics: epoch critical path, stall
              attribution, NVM bandwidth and queue-depth percentiles
  sweep       sweep a PiCL parameter (acs-gap | buffer | bloom | epoch)
  bench       wall-clock perf harness: pinned matrix + differential check
  record      capture a synthetic workload to a trace file
  replay      simulate from a recorded trace file
  store       the executable PiCL storage engine (see `picl store help`):
              run | dump | verify | torture | simdiff
  serve       concurrent serving front-end (see `picl serve help`):
              run | torture
  ycsb        YCSB-style load benchmark: zipfian keys, A/B/C mixes,
              multi- vs single-session PiCL (and optionally the
              fdatasync-per-mutation baseline), audited event streams
  obs         operator tooling for the serving metrics (see
              `picl obs help`): scrape | check | print | diff | overhead
  benchmarks  list the 29 modeled SPEC2k6-like benchmarks
  help        show this text

common flags:
  --bench NAME          workload (see `picl benchmarks`; default bzip2)
  --scheme NAME         ideal|journaling|shadow|frm|thynvm|picl (default picl)
  --instructions N      instructions per core, k/m/g suffixes (default 10m)
  --epoch N             epoch length in instructions (default 3m)
  --acs-gap N           PiCL ACS-gap (default 3)
  --seed N              experiment seed (default 42)
  --footprint-scale F   scale workload footprints (default 1.0)
  --telemetry PREFIX    (run, crashlab repro) also export the recording

trace flags (plus the common flags above):
  --out PREFIX          output prefix (required); writes PREFIX.trace.json
                        (Chrome/Perfetto), PREFIX.events.jsonl, and
                        PREFIX.series.csv
  --sample-interval N   gauge sampling period in cycles (default 10k)
  --ring N              per-core event-ring capacity (default 64k)

audit / analyze flags:
  --trace FILE          the .events.jsonl stream to check (required)
  --acs-gap N           (audit) also enforce the ACS persist schedule at
                        gap N; off unless given (only PiCL traces have one)
  --json FILE           (audit) also write an audit-report-v1 JSON report

bench flags:
  --quick               skip the 8-core paper cell (the CI smoke matrix)
  --out FILE            results JSON path (default BENCH_8.json)
  --check FILE          validate FILE's picl-bench-v1 schema and fail if
                        this run's events/sec falls >20% below it
  --scale F             scale instruction/epoch budgets (default 1.0)

crashlab flags:
  --schemes LIST        all | comma list (adds broken-noundo; default all)
  --bench LIST          comma list of benchmarks (default mcf,gcc,lbm)
  --points N            crash points per benchmark (default 64)
  --instructions N      run budget in instructions (default 200k)
  --threads N           worker threads (default: all cores)
  --crash-at N          replay one crash at instruction N instead
  --boundary-cores N    with --crash-at: crash mid-flush after N checkpoints
  --telemetry PREFIX    with --crash-at: export the trial's recording

ycsb flags:
  --sessions N          concurrent client sessions (default 4)
  --ops N               total measured operations (default 20k)
  --keys N              key-space size (default 100k)
  --theta F             zipfian skew in [0,1) (default 0.9)
  --mix a|b|c           YCSB mix: 50/95/100% reads (default b)
  --value-bytes N       value size, spans slots above 16 (default 100)
  --arrival SPEC        closed | poisson:RATE | bursty:RATE:PERIOD_MS
  --ops-per-epoch N     mutations per epoch (default 64)
  --window N            in-order persist window = RPO bound (default 4)
  --baseline            also run the fdatasync-per-mutation store
  --out FILE            picl-serve-v1 report path (default BENCH_10.json)
  --path FILE           store-file base path (default: under the temp dir)
  --telemetry PREFIX    export the multi-session cell's event stream

campaign flags (sweep, bench, crashlab, ycsb):
  --resume DIR          checkpoint finished cells into DIR; relaunching
                        with the same DIR re-runs only missing/failed ones
  --cell-timeout SECS   per-cell wall-clock watchdog (fractions allowed)
  --keep-going          finish sibling cells after a failure instead of
                        aborting the campaign (failures still exit nonzero)
";

/// Simulated core clock in MHz; cycle timestamps convert to Chrome-trace
/// microseconds by dividing by this.
const CLOCK_MHZ: f64 = 2000.0;

/// Runs the parsed command.
///
/// # Errors
///
/// Returns an [`ArgError`] describing any invalid flag or value.
pub fn dispatch(args: &Args) -> Result<(), ArgError> {
    // Only `store`, `serve`, and `obs` have subcommands; a stray word
    // after any other command is a mistake, not a flag value.
    if !matches!(args.command(), "store" | "serve" | "obs") {
        args.expect_no_subcommand()?;
    }
    match args.command() {
        "run" => cmd_run(args),
        "compare" => cmd_compare(args),
        "crash" => cmd_crash(args),
        "crashlab" => cmd_crashlab(args),
        "trace" => cmd_trace(args),
        "audit" => cmd_audit(args),
        "analyze" => cmd_analyze(args),
        "sweep" => cmd_sweep(args),
        "bench" => crate::bench::cmd_bench(args),
        "record" => cmd_record(args),
        "replay" => cmd_replay(args),
        "store" => crate::store::cmd_store(args),
        "serve" => crate::serve::cmd_serve(args),
        "ycsb" => crate::serve::cmd_ycsb(args),
        "obs" => crate::obs::cmd_obs(args),
        "benchmarks" => cmd_benchmarks(args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(ArgError(format!(
            "unknown command {other:?}; try `picl help`"
        ))),
    }
}

const COMMON_FLAGS: &[&str] = &[
    "bench",
    "scheme",
    "instructions",
    "epoch",
    "acs-gap",
    "seed",
    "footprint-scale",
];

/// Flags shared by every campaign-backed command (`sweep`, `bench`,
/// `crashlab`).
const CAMPAIGN_FLAGS: &[&str] = &["resume", "cell-timeout", "keep-going"];

/// Parses the shared campaign-executor flags into a policy: checkpoint
/// into `--resume DIR`, watchdog each cell at `--cell-timeout SECS`, and
/// fail fast unless `--keep-going` asks to finish the siblings first.
/// Progress goes to stderr so piped stdout stays clean.
pub(crate) fn campaign_options(args: &Args) -> Result<CampaignOptions, ArgError> {
    let cell_timeout = match args.get("cell-timeout") {
        None => None,
        Some(s) => {
            let secs: f64 = s
                .parse()
                .map_err(|_| ArgError(format!("--cell-timeout: cannot parse {s:?} as seconds")))?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err(ArgError("--cell-timeout must be positive".into()));
            }
            Some(std::time::Duration::from_secs_f64(secs))
        }
    };
    Ok(CampaignOptions {
        cell_timeout,
        keep_going: args.is_set("keep-going"),
        checkpoint: args.get("resume").map(std::path::PathBuf::from),
        progress: true,
        ..CampaignOptions::default()
    })
}

fn parse_scheme(name: &str) -> Result<SchemeKind, ArgError> {
    SchemeKind::ALL
        .iter()
        .copied()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            ArgError(format!(
                "unknown scheme {name:?}; choose one of {}",
                SchemeKind::ALL
                    .map(|k| k.name().to_ascii_lowercase())
                    .join(", ")
            ))
        })
}

fn parse_bench(name: &str) -> Result<SpecBenchmark, ArgError> {
    name.parse()
        .map_err(|_| ArgError(format!("unknown benchmark {name:?}; see `picl benchmarks`")))
}

fn config_from(args: &Args) -> Result<SystemConfig, ArgError> {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = args.count_or("epoch", 3_000_000)?;
    cfg.epoch.acs_gap = args.count_or("acs-gap", 3)?;
    cfg.validate()
        .map_err(|e| ArgError(format!("invalid configuration: {e}")))?;
    Ok(cfg)
}

fn print_report(report: &RunReport) {
    println!("{report}");
    println!(
        "  NVM ops: {} demand, {} write-back, {} sequential-log, {} random-log",
        report.nvm.ops_in_category(TrafficCategory::Demand),
        report.nvm.ops_in_category(TrafficCategory::WriteBack),
        report
            .nvm
            .ops_in_category(TrafficCategory::SequentialLogging),
        report.nvm.ops_in_category(TrafficCategory::RandomLogging),
    );
}

/// Default per-core event-ring capacity (events).
const DEFAULT_RING: u64 = 64 * 1024;
/// Default gauge sampling period (cycles).
const DEFAULT_SAMPLE_INTERVAL: u64 = 10_000;

/// Writes the three telemetry exports under `prefix` and re-parses each
/// one, so a corrupt file fails the command instead of a later viewer.
pub(crate) fn export_telemetry(prefix: &str, snap: &TelemetrySnapshot) -> Result<(), ArgError> {
    let write = |path: String, contents: &str| {
        std::fs::write(&path, contents)
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))
            .map(|()| path)
    };

    let chrome = chrome_trace_to_string(snap, CLOCK_MHZ);
    validate_json(&chrome).map_err(|e| ArgError(format!("Chrome trace invalid: {e}")))?;
    let chrome_path = write(format!("{prefix}.trace.json"), &chrome)?;

    let jsonl = jsonl_to_string(snap);
    let lines =
        validate_jsonl(&jsonl).map_err(|e| ArgError(format!("JSONL stream invalid: {e}")))?;
    let jsonl_path = write(format!("{prefix}.events.jsonl"), &jsonl)?;

    let csv = series_csv_to_string(snap);
    let csv_path = write(format!("{prefix}.series.csv"), &csv)?;

    println!(
        "telemetry: {} events ({} dropped) -> {chrome_path}, {lines} lines -> {jsonl_path}, \
         {} series -> {csv_path}",
        snap.events.len(),
        snap.dropped,
        snap.series.len()
    );
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), ArgError> {
    let mut flags = COMMON_FLAGS.to_vec();
    flags.push("telemetry");
    args.expect_only(&flags)?;
    let sim = Simulation::builder(config_from(args)?)
        .scheme(parse_scheme(args.get_or("scheme", "picl"))?)
        .workload(&[parse_bench(args.get_or("bench", "bzip2"))?])
        .instructions_per_core(args.count_or("instructions", 10_000_000)?)
        .seed(args.count_or("seed", 42)?)
        .footprint_scale(args.float_or("footprint-scale", 1.0)?);
    let budget = args.count_or("instructions", 10_000_000)?;
    match args.get("telemetry") {
        None => {
            let report = sim.run().map_err(|e| ArgError(e.to_string()))?;
            print_report(&report);
        }
        Some(prefix) => {
            let prefix = prefix.to_owned();
            let mut machine = sim.into_machine().map_err(|e| ArgError(e.to_string()))?;
            let telemetry =
                machine.enable_telemetry(DEFAULT_RING as usize, DEFAULT_SAMPLE_INTERVAL);
            machine.run(budget);
            print_report(&machine.report());
            export_telemetry(&prefix, &telemetry.snapshot())?;
        }
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), ArgError> {
    let mut flags = COMMON_FLAGS.to_vec();
    flags.extend(["out", "sample-interval", "ring"]);
    args.expect_only(&flags)?;
    let prefix = args
        .get("out")
        .ok_or_else(|| ArgError("trace needs --out PREFIX".into()))?
        .to_owned();
    let ring = args.count_or("ring", DEFAULT_RING)? as usize;
    let interval = args.count_or("sample-interval", DEFAULT_SAMPLE_INTERVAL)?;
    if ring == 0 || interval == 0 {
        return Err(ArgError(
            "--ring and --sample-interval must be nonzero".into(),
        ));
    }
    let mut machine = Simulation::builder(config_from(args)?)
        .scheme(parse_scheme(args.get_or("scheme", "picl"))?)
        .workload(&[parse_bench(args.get_or("bench", "bzip2"))?])
        .seed(args.count_or("seed", 42)?)
        .footprint_scale(args.float_or("footprint-scale", 1.0)?)
        .into_machine()
        .map_err(|e| ArgError(e.to_string()))?;
    let telemetry = machine.enable_telemetry(ring, interval);
    machine.run(args.count_or("instructions", 10_000_000)?);
    print_report(&machine.report());
    export_telemetry(&prefix, &telemetry.snapshot())
}

/// Reads and parses an exported `.events.jsonl` stream named by
/// `--trace`.
fn load_trace(args: &Args, command: &str) -> Result<Vec<picl_audit::TraceLine>, ArgError> {
    let path = args
        .get("trace")
        .ok_or_else(|| ArgError(format!("{command} needs --trace FILE")))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    picl_audit::parse_trace(&text).map_err(|e| ArgError(format!("{path}: {e}")))
}

fn cmd_audit(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["trace", "acs-gap", "json"])?;
    let lines = load_trace(args, "audit")?;
    // The ACS check is armed only on request: an exported stream does not
    // say which scheme produced it, and only PiCL schedules by gap.
    let acs_gap = match args.get("acs-gap") {
        None => None,
        Some(s) => Some(
            crate::args::parse_count(s)
                .ok_or_else(|| ArgError(format!("--acs-gap: cannot parse {s:?} as a count")))?,
        ),
    };
    let report = picl_audit::audit_trace(&lines, picl_audit::AuditConfig { acs_gap });
    print!("{report}");
    if let Some(out) = args.get("json") {
        std::fs::write(out, picl_audit::report_to_json(&report))
            .map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
        println!("report: {out}");
    }
    match report.verdict {
        picl_audit::Verdict::Pass => Ok(()),
        picl_audit::Verdict::Inconclusive => {
            println!(
                "warning: {} event(s) were dropped by ring overwrites; \
                 the verdict only covers what survived",
                report.dropped
            );
            Ok(())
        }
        picl_audit::Verdict::Fail => Err(ArgError(format!(
            "{} protocol-invariant violation(s)",
            report.violations.len()
        ))),
    }
}

fn cmd_analyze(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["trace"])?;
    let lines = load_trace(args, "analyze")?;
    let analytics = picl_audit::analyze(&lines, CLOCK_MHZ);
    print!("{}", analytics.display(CLOCK_MHZ));
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), ArgError> {
    args.expect_only(COMMON_FLAGS)?;
    let bench = parse_bench(args.get_or("bench", "bzip2"))?;
    let instructions = args.count_or("instructions", 9_000_000)?;
    println!(
        "{:<12}{:>9}{:>10}{:>9}{:>13}{:>12}",
        "scheme", "norm.", "commits", "forced", "stall-cyc", "log-bytes"
    );
    let mut baseline = None;
    for kind in SchemeKind::ALL {
        let r = Simulation::builder(config_from(args)?)
            .scheme(kind)
            .workload(&[bench])
            .instructions_per_core(instructions)
            .seed(args.count_or("seed", 42)?)
            .footprint_scale(args.float_or("footprint-scale", 1.0)?)
            .run()
            .map_err(|e| ArgError(e.to_string()))?;
        let base = *baseline.get_or_insert(r.total_cycles.raw());
        println!(
            "{:<12}{:>9.3}{:>10}{:>9}{:>13}{:>12}",
            r.scheme,
            r.total_cycles.raw() as f64 / base as f64,
            r.commits,
            r.forced_commits,
            r.stall_cycles,
            format_bytes(r.scheme_stats.log_bytes_written)
        );
    }
    Ok(())
}

fn cmd_crash(args: &Args) -> Result<(), ArgError> {
    let mut flags = COMMON_FLAGS.to_vec();
    flags.push("at");
    args.expect_only(&flags)?;
    let at = args.count_or("at", 2_000_000)?;
    let scheme = parse_scheme(args.get_or("scheme", "picl"))?;
    let mut machine = Simulation::builder(config_from(args)?)
        .scheme(scheme)
        .workload_spec(WorkloadSpec::single(parse_bench(
            args.get_or("bench", "gcc"),
        )?))
        .seed(args.count_or("seed", 42)?)
        .footprint_scale(args.float_or("footprint-scale", 0.25)?)
        .keep_snapshots(true)
        .into_machine()
        .map_err(|e| ArgError(e.to_string()))?;
    machine.run(at);
    println!(
        "ran {} instructions under {}; injecting power failure…",
        machine.instructions(),
        scheme.name()
    );
    let crash = machine.crash();
    println!(
        "recovered to {} applying {} entries in {} cycles",
        crash.outcome.recovered_to,
        crash.outcome.entries_applied,
        crash
            .outcome
            .completed_at
            .saturating_since(picl_types::Cycle::ZERO)
            .raw()
    );
    match crash.consistent {
        Some(true) => println!("verification: memory matches the recovered checkpoint exactly"),
        Some(false) => {
            let first = crash
                .mismatches
                .first()
                .map(|a| a.to_string())
                .unwrap_or_else(|| "?".into());
            println!(
                "verification: INCONSISTENT — {} mismatching lines (first: {first})",
                crash.mismatch_count
            );
        }
        None => println!("verification: no golden snapshot for that epoch"),
    }
    Ok(())
}

fn parse_lab_schemes(spec: &str) -> Result<Vec<LabScheme>, ArgError> {
    if spec.eq_ignore_ascii_case("all") {
        return Ok(LabScheme::PROTECTED.to_vec());
    }
    spec.split(',')
        .map(|name| {
            LabScheme::parse(name.trim()).ok_or_else(|| {
                ArgError(format!(
                    "unknown scheme {name:?}; use `all`, a scheme name, or broken-noundo"
                ))
            })
        })
        .collect()
}

fn cmd_crashlab(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "schemes",
        "bench",
        "points",
        "seed",
        "instructions",
        "epoch",
        "acs-gap",
        "footprint-scale",
        "threads",
        "crash-at",
        "boundary-cores",
        "telemetry",
        "resume",
        "cell-timeout",
        "keep-going",
    ])?;
    let schemes = parse_lab_schemes(args.get_or("schemes", "all"))?;
    let benches: Vec<SpecBenchmark> = args
        .get_or("bench", "mcf,gcc,lbm")
        .split(',')
        .map(|b| parse_bench(b.trim()))
        .collect::<Result<_, _>>()?;
    let config = CampaignConfig {
        schemes,
        benches,
        points: args.count_or("points", 64)? as usize,
        seed: args.count_or("seed", 1)?,
        budget: args.count_or("instructions", 200_000)?,
        epoch_len: args.count_or("epoch", 25_000)?,
        acs_gap: args.count_or("acs-gap", 3)?,
        footprint_scale: args.float_or("footprint-scale", 0.05)?,
        threads: args.count_or("threads", 0)? as usize,
        shrink_failures: true,
    };
    if config.points == 0 {
        return Err(ArgError("--points must be at least 1".into()));
    }
    if args.get("boundary-cores").is_some() && args.get("crash-at").is_none() {
        return Err(ArgError(
            "--boundary-cores only applies in repro mode; pass --crash-at too".into(),
        ));
    }
    if args.get("telemetry").is_some() && args.get("crash-at").is_none() {
        return Err(ArgError(
            "--telemetry only applies in repro mode (campaigns run thousands of \
             trials); pass --crash-at too"
                .into(),
        ));
    }
    if args.get("crash-at").is_some() {
        for flag in CAMPAIGN_FLAGS {
            if args.get(flag).is_some() {
                return Err(ArgError(format!(
                    "--{flag} only applies to campaigns; drop --crash-at to run one"
                )));
            }
        }
    }

    // Repro mode: replay one crash point (the format `repro_command` emits).
    if let Some(at) = args.get("crash-at") {
        let at = crate::args::parse_count(at)
            .ok_or_else(|| ArgError(format!("--crash-at: cannot parse {at:?} as a count")))?;
        // A crash instant past the end of the run would silently never
        // fire (the trial would just complete); that is a user error, not
        // a passing trial.
        if at > config.budget {
            return Err(ArgError(format!(
                "--crash-at {at} is beyond the end of the run (--instructions {}): \
                 the crash would never be injected; raise --instructions or move \
                 the crash point earlier",
                config.budget
            )));
        }
        let point = if args.get("boundary-cores").is_some() {
            CrashPoint::MidBoundary {
                at,
                cores_done: args.count_or("boundary-cores", 0)? as usize,
            }
        } else {
            CrashPoint::MidEpoch { at }
        };
        let telemetry_prefix = args.get("telemetry");
        let single_trial = config.schemes.len() == 1 && config.benches.len() == 1;
        let mut failures = 0usize;
        for &scheme in &config.schemes {
            for &bench in &config.benches {
                let spec = TrialSpec {
                    scheme,
                    bench,
                    epoch_len: config.epoch_len,
                    acs_gap: config.acs_gap,
                    seed: config.seed,
                    footprint_scale: config.footprint_scale,
                    point,
                };
                let outcome = match telemetry_prefix {
                    None => spec.execute(),
                    Some(prefix) => {
                        let (outcome, snap) =
                            spec.execute_traced(DEFAULT_RING as usize, DEFAULT_SAMPLE_INTERVAL);
                        let prefix = if single_trial {
                            prefix.to_owned()
                        } else {
                            format!("{prefix}.{}.{}", scheme.name(), bench.name())
                        };
                        export_telemetry(&prefix, &snap)?;
                        outcome
                    }
                };
                let verdict = if outcome.passed(scheme.expects_consistency()) {
                    "ok"
                } else {
                    failures += 1;
                    "FAIL"
                };
                println!(
                    "{:<14} {:<8} {}: {} — recovered to epoch {} ({} epochs lost, \
                     {} entries, {} cycles, {} mismatching lines)",
                    scheme.name(),
                    bench.name(),
                    spec.point,
                    verdict,
                    outcome.recovered_to,
                    outcome.epochs_lost,
                    outcome.entries_applied,
                    outcome.recovery_cycles,
                    outcome.mismatch_count
                );
            }
        }
        if failures > 0 {
            return Err(ArgError(format!("{failures} crash trial(s) inconsistent")));
        }
        return Ok(());
    }

    let report = run_campaign_with(&config, &campaign_options(args)?).map_err(ArgError)?;
    print!("{report}");
    if report.all_passed() {
        Ok(())
    } else {
        let mut parts = Vec::new();
        if !report.failures.is_empty() {
            parts.push(format!(
                "{} crash trial(s) recovered inconsistently (reproducers above)",
                report.failures.len()
            ));
        }
        if !report.errors.is_empty() {
            parts.push(format!(
                "{} trial(s) produced no verdict (panic/timeout/abort)",
                report.errors.len()
            ));
        }
        Err(ArgError(parts.join("; ")))
    }
}

fn cmd_sweep(args: &Args) -> Result<(), ArgError> {
    let mut flags = COMMON_FLAGS.to_vec();
    flags.extend(["param", "values"]);
    flags.extend(CAMPAIGN_FLAGS);
    args.expect_only(&flags)?;
    let param = args.get_or("param", "acs-gap");
    let values: Vec<u64> = args
        .get_or("values", "0,1,3,7")
        .split(',')
        .map(|v| {
            crate::args::parse_count(v).ok_or_else(|| ArgError(format!("bad sweep value {v:?}")))
        })
        .collect::<Result<_, _>>()?;
    let bench = parse_bench(args.get_or("bench", "gcc"))?;
    let instructions = args.count_or("instructions", 8_000_000)?;

    // Validate every point up front, then run them all as one
    // fault-isolated campaign (checkpointable via --resume).
    let mut experiments = Vec::with_capacity(values.len());
    for &v in &values {
        let mut cfg = config_from(args)?;
        match param {
            "acs-gap" => cfg.epoch.acs_gap = v,
            "buffer" => cfg.epoch.undo_buffer_entries = v as usize,
            "bloom" => cfg.epoch.bloom_bits = v as usize,
            "epoch" => cfg.epoch.epoch_len_instructions = v,
            other => {
                return Err(ArgError(format!(
                    "unknown sweep parameter {other:?}; use acs-gap|buffer|bloom|epoch"
                )))
            }
        }
        cfg.validate()
            .map_err(|e| ArgError(format!("value {v} rejected: {e}")))?;
        experiments.push(Experiment {
            cfg,
            scheme: SchemeKind::Picl,
            workload: WorkloadSpec::single(bench),
            instructions_per_core: instructions,
            seed: args.count_or("seed", 42)?,
            footprint_scale: args.float_or("footprint-scale", 1.0)?,
        });
    }
    let reports = run_experiments_with(&experiments, &campaign_options(args)?).map_err(ArgError)?;

    println!(
        "{:<12}{:>12}{:>10}{:>12}",
        param, "cycles", "commits", "log-bytes"
    );
    for (&v, r) in values.iter().zip(&reports) {
        println!(
            "{:<12}{:>12}{:>10}{:>12}",
            v,
            r.total_cycles.raw(),
            r.commits,
            format_bytes(r.scheme_stats.log_bytes_written)
        );
    }
    Ok(())
}

fn cmd_record(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["bench", "out", "events", "seed", "footprint-scale"])?;
    let bench = parse_bench(args.get_or("bench", "bzip2"))?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("record needs --out FILE".into()))?;
    let events = args.count_or("events", 100_000)? as u32;
    let profile = bench
        .profile()
        .scaled(args.float_or("footprint-scale", 1.0)?);
    let mut source = picl_trace::spec::ProfileGen::new(profile, args.count_or("seed", 42)?);
    let file =
        std::fs::File::create(out).map_err(|e| ArgError(format!("cannot create {out}: {e}")))?;
    write_trace(std::io::BufWriter::new(file), &mut source, events)
        .map_err(|e| ArgError(format!("write failed: {e}")))?;
    println!("recorded {events} events of {bench} to {out}");
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "trace",
        "scheme",
        "instructions",
        "epoch",
        "acs-gap",
        "seed",
    ])?;
    let path = args
        .get("trace")
        .ok_or_else(|| ArgError("replay needs --trace FILE".into()))?;
    let file =
        std::fs::File::open(path).map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
    let trace = RecordedTrace::from_reader(std::io::BufReader::new(file), path)
        .map_err(|e| ArgError(format!("cannot parse {path}: {e}")))?;
    println!("replaying {} recorded events (cyclically)…", trace.len());
    let cfg = config_from(args)?;
    let scheme = parse_scheme(args.get_or("scheme", "picl"))?;
    let boxed: Box<dyn TraceSource + Send> = Box::new(trace);
    let mut machine = Machine::new(cfg.clone(), scheme.build(&cfg), vec![boxed], path, false);
    machine.run(args.count_or("instructions", 5_000_000)?);
    print_report(&machine.report());
    Ok(())
}

fn cmd_benchmarks(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[])?;
    println!(
        "{:<12}{:>8}{:>8}{:>10}{:>7}{:>7}{:>7}{:>6}",
        "name", "apki", "store", "footprint", "seq", "hot", "theta", "rep"
    );
    for b in SpecBenchmark::ALL {
        let p = b.profile();
        println!(
            "{:<12}{:>8}{:>8.2}{:>10}{:>7.2}{:>7.2}{:>7.2}{:>6}",
            p.name,
            p.accesses_per_kilo_instr,
            p.store_fraction,
            format_bytes(p.footprint_bytes),
            p.seq_fraction,
            p.hot_fraction,
            p.hot_theta,
            p.seq_repeats
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_parsing_accepts_all_names() {
        for kind in SchemeKind::ALL {
            assert_eq!(parse_scheme(&kind.name().to_lowercase()).unwrap(), kind);
        }
        assert!(parse_scheme("bogus").is_err());
    }

    #[test]
    fn bench_parsing() {
        assert_eq!(parse_bench("mcf").unwrap(), SpecBenchmark::Mcf);
        assert!(parse_bench("bogus").is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        let args = Args::parse(["frobnicate"]).unwrap();
        assert!(dispatch(&args).is_err());
    }

    #[test]
    fn benchmarks_listing_runs() {
        let args = Args::parse(["benchmarks"]).unwrap();
        dispatch(&args).unwrap();
    }

    #[test]
    fn run_command_end_to_end() {
        let args = Args::parse([
            "run",
            "--bench",
            "povray",
            "--instructions",
            "200k",
            "--epoch",
            "100k",
            "--footprint-scale",
            "0.1",
        ])
        .unwrap();
        dispatch(&args).unwrap();
    }

    #[test]
    fn crash_command_end_to_end() {
        let args = Args::parse([
            "crash",
            "--bench",
            "gcc",
            "--at",
            "150k",
            "--epoch",
            "50k",
            "--footprint-scale",
            "0.05",
        ])
        .unwrap();
        dispatch(&args).unwrap();
    }

    #[test]
    fn crashlab_small_campaign_passes() {
        let args = Args::parse([
            "crashlab",
            "--schemes",
            "picl,frm",
            "--bench",
            "gcc",
            "--points",
            "4",
            "--instructions",
            "120k",
            "--seed",
            "1",
        ])
        .unwrap();
        dispatch(&args).unwrap();
    }

    #[test]
    fn crashlab_catches_broken_scheme_in_repro_mode() {
        let args = Args::parse([
            "crashlab",
            "--schemes",
            "broken-noundo",
            "--bench",
            "gcc",
            "--crash-at",
            "120k",
            "--seed",
            "1",
        ])
        .unwrap();
        let err = dispatch(&args).unwrap_err();
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn crashlab_rejects_unknown_scheme() {
        let args = Args::parse(["crashlab", "--schemes", "bogus"]).unwrap();
        assert!(dispatch(&args).is_err());
    }

    #[test]
    fn sweep_rejects_bad_parameter() {
        let args = Args::parse(["sweep", "--param", "bogus", "--values", "1"]).unwrap();
        assert!(dispatch(&args).is_err());
    }

    #[test]
    fn record_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("picl_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.picltrc");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(
            &Args::parse([
                "record",
                "--bench",
                "gcc",
                "--out",
                &path_s,
                "--events",
                "5k",
                "--footprint-scale",
                "0.05",
            ])
            .unwrap(),
        )
        .unwrap();
        dispatch(
            &Args::parse([
                "replay",
                "--trace",
                &path_s,
                "--instructions",
                "100k",
                "--epoch",
                "50k",
            ])
            .unwrap(),
        )
        .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_command_writes_all_three_exports() {
        let dir = std::env::temp_dir().join("picl_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("t").to_str().unwrap().to_owned();
        dispatch(
            &Args::parse([
                "trace",
                "--bench",
                "gcc",
                "--instructions",
                "150k",
                "--epoch",
                "50k",
                "--footprint-scale",
                "0.05",
                "--out",
                &prefix,
            ])
            .unwrap(),
        )
        .unwrap();
        for suffix in [".trace.json", ".events.jsonl", ".series.csv"] {
            let path = format!("{prefix}{suffix}");
            let contents = std::fs::read_to_string(&path).expect(&path);
            assert!(!contents.is_empty(), "{path} is empty");
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn audit_and_analyze_round_trip_an_exported_trace() {
        let dir = std::env::temp_dir().join("picl_cli_audit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("a").to_str().unwrap().to_owned();
        dispatch(
            &Args::parse([
                "trace",
                "--bench",
                "gcc",
                "--instructions",
                "150k",
                "--epoch",
                "50k",
                "--footprint-scale",
                "0.05",
                "--out",
                &prefix,
            ])
            .unwrap(),
        )
        .unwrap();
        let jsonl_path = format!("{prefix}.events.jsonl");
        let json_out = format!("{prefix}.audit.json");

        // A faithful export audits clean, ACS check armed at the gap the
        // run actually used (the default, 3).
        dispatch(
            &Args::parse([
                "audit",
                "--trace",
                &jsonl_path,
                "--acs-gap",
                "3",
                "--json",
                &json_out,
            ])
            .unwrap(),
        )
        .unwrap();
        let json = std::fs::read_to_string(&json_out).unwrap();
        assert!(json.contains("\"format\":\"audit-report-v1\""), "{json}");
        assert!(json.contains("\"verdict\":\"pass\""), "{json}");

        dispatch(&Args::parse(["analyze", "--trace", &jsonl_path]).unwrap()).unwrap();

        // The same stream played backwards breaks epoch monotonicity; the
        // auditor must say so, proving the clean verdict is not vacuous.
        let reversed: String = std::fs::read_to_string(&jsonl_path)
            .unwrap()
            .lines()
            .rev()
            .flat_map(|l| [l, "\n"])
            .collect();
        let reversed_path = dir.join("reversed.events.jsonl");
        std::fs::write(&reversed_path, reversed).unwrap();
        let err =
            dispatch(&Args::parse(["audit", "--trace", reversed_path.to_str().unwrap()]).unwrap())
                .unwrap_err();
        assert!(err.to_string().contains("violation"), "{err}");

        for suffix in [".trace.json", ".events.jsonl", ".series.csv", ".audit.json"] {
            std::fs::remove_file(format!("{prefix}{suffix}")).ok();
        }
        std::fs::remove_file(reversed_path).ok();
    }

    #[test]
    fn audit_requires_trace_flag() {
        let err = dispatch(&Args::parse(["audit"]).unwrap()).unwrap_err();
        assert!(err.to_string().contains("--trace"), "{err}");
        let err = dispatch(&Args::parse(["analyze"]).unwrap()).unwrap_err();
        assert!(err.to_string().contains("--trace"), "{err}");
    }

    #[test]
    fn trace_requires_out_prefix() {
        let args = Args::parse(["trace", "--bench", "gcc"]).unwrap();
        let err = dispatch(&args).unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
    }

    #[test]
    fn run_with_telemetry_exports() {
        let dir = std::env::temp_dir().join("picl_cli_run_telemetry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("r").to_str().unwrap().to_owned();
        dispatch(
            &Args::parse([
                "run",
                "--bench",
                "gcc",
                "--instructions",
                "150k",
                "--epoch",
                "50k",
                "--footprint-scale",
                "0.05",
                "--telemetry",
                &prefix,
            ])
            .unwrap(),
        )
        .unwrap();
        let chrome = std::fs::read_to_string(format!("{prefix}.trace.json")).unwrap();
        assert!(chrome.contains("\"traceEvents\""));
        for suffix in [".trace.json", ".events.jsonl", ".series.csv"] {
            std::fs::remove_file(format!("{prefix}{suffix}")).ok();
        }
    }

    #[test]
    fn crashlab_telemetry_requires_repro_mode() {
        let args = Args::parse(["crashlab", "--telemetry", "/tmp/x"]).unwrap();
        let err = dispatch(&args).unwrap_err();
        assert!(err.to_string().contains("--crash-at"), "{err}");
    }

    #[test]
    fn crashlab_repro_with_telemetry_exports() {
        let dir = std::env::temp_dir().join("picl_cli_crashlab_telemetry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("c").to_str().unwrap().to_owned();
        dispatch(
            &Args::parse([
                "crashlab",
                "--schemes",
                "picl",
                "--bench",
                "gcc",
                "--crash-at",
                "90k",
                "--seed",
                "1",
                "--telemetry",
                &prefix,
            ])
            .unwrap(),
        )
        .unwrap();
        let jsonl = std::fs::read_to_string(format!("{prefix}.events.jsonl")).unwrap();
        assert!(jsonl.contains("crash_injected"), "crash must be recorded");
        for suffix in [".trace.json", ".events.jsonl", ".series.csv"] {
            std::fs::remove_file(format!("{prefix}{suffix}")).ok();
        }
    }

    #[test]
    fn crashlab_crash_at_beyond_the_run_is_rejected() {
        // A crash instant past the instruction budget would silently never
        // fire; the CLI must refuse it instead of reporting a clean "no
        // crash" trial.
        let args = Args::parse([
            "crashlab",
            "--schemes",
            "picl",
            "--bench",
            "gcc",
            "--crash-at",
            "300k",
            "--instructions",
            "200k",
        ])
        .unwrap();
        let err = dispatch(&args).unwrap_err();
        assert!(
            err.to_string().contains("beyond the end of the run"),
            "{err}"
        );
        assert!(err.to_string().contains("300000"), "{err}");

        // Exactly at the budget is still reachable and must be accepted.
        let ok = Args::parse([
            "crashlab",
            "--schemes",
            "picl",
            "--bench",
            "gcc",
            "--crash-at",
            "90k",
            "--instructions",
            "90k",
            "--seed",
            "1",
        ])
        .unwrap();
        dispatch(&ok).unwrap();
    }

    #[test]
    fn bench_quick_emits_valid_json_and_checks_regressions() {
        let dir = std::env::temp_dir().join("picl_cli_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("b.json").to_str().unwrap().to_owned();
        dispatch(&Args::parse(["bench", "--quick", "--scale", "0.02", "--out", &out]).unwrap())
            .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"schema\": \"picl-bench-v1\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"identical\": true"));

        // A committed baseline with tiny events/sec always passes…
        let slow = json.replace("_per_sec\": ", "_per_sec\": 0.000001, \"was\": ");
        let slow_path = dir.join("slow.json").to_str().unwrap().to_owned();
        std::fs::write(&slow_path, &slow).unwrap();
        dispatch(
            &Args::parse([
                "bench", "--quick", "--scale", "0.02", "--out", &out, "--check", &slow_path,
            ])
            .unwrap(),
        )
        .unwrap();

        // …and one with absurdly high numbers fails the 20% gate.
        let fast = json.replace("_per_sec\": ", "_per_sec\": 1e30, \"was\": ");
        let fast_path = dir.join("fast.json").to_str().unwrap().to_owned();
        std::fs::write(&fast_path, &fast).unwrap();
        let err = dispatch(
            &Args::parse([
                "bench", "--quick", "--scale", "0.02", "--out", &out, "--check", &fast_path,
            ])
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("regressed"), "{err}");
        for p in [&out, &slow_path, &fast_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn bench_rejects_nonpositive_scale() {
        let args = Args::parse(["bench", "--quick", "--scale", "0"]).unwrap();
        assert!(dispatch(&args).is_err());
    }

    #[test]
    fn invalid_config_surfaces_cleanly() {
        let args = Args::parse(["run", "--epoch", "0"]).unwrap();
        let err = dispatch(&args).unwrap_err();
        assert!(err.to_string().contains("epoch"), "{err}");
    }
}
