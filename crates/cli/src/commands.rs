//! Subcommand implementations for the `picl` CLI.

use picl_nvm::TrafficCategory;
use picl_sim::{Machine, RunReport, SchemeKind, Simulation, WorkloadSpec};
use picl_trace::file::{write_trace, RecordedTrace};
use picl_trace::spec::SpecBenchmark;
use picl_trace::TraceSource;
use picl_types::stats::format_bytes;
use picl_types::SystemConfig;

use crate::args::{ArgError, Args};

/// Top-level usage text.
pub const USAGE: &str = "\
usage: picl <command> [--flag value]...

commands:
  run         simulate one scheme on one workload and print the report
  compare     run every scheme on one workload, normalized to Ideal
  crash       run, pull the plug, recover, and verify consistency
  sweep       sweep a PiCL parameter (acs-gap | buffer | bloom | epoch)
  record      capture a synthetic workload to a trace file
  replay      simulate from a recorded trace file
  benchmarks  list the 29 modeled SPEC2k6-like benchmarks
  help        show this text

common flags:
  --bench NAME          workload (see `picl benchmarks`; default bzip2)
  --scheme NAME         ideal|journaling|shadow|frm|thynvm|picl (default picl)
  --instructions N      instructions per core, k/m/g suffixes (default 10m)
  --epoch N             epoch length in instructions (default 3m)
  --acs-gap N           PiCL ACS-gap (default 3)
  --seed N              experiment seed (default 42)
  --footprint-scale F   scale workload footprints (default 1.0)
";

/// Runs the parsed command.
///
/// # Errors
///
/// Returns an [`ArgError`] describing any invalid flag or value.
pub fn dispatch(args: &Args) -> Result<(), ArgError> {
    match args.command() {
        "run" => cmd_run(args),
        "compare" => cmd_compare(args),
        "crash" => cmd_crash(args),
        "sweep" => cmd_sweep(args),
        "record" => cmd_record(args),
        "replay" => cmd_replay(args),
        "benchmarks" => cmd_benchmarks(args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(ArgError(format!("unknown command {other:?}; try `picl help`"))),
    }
}

const COMMON_FLAGS: &[&str] = &[
    "bench",
    "scheme",
    "instructions",
    "epoch",
    "acs-gap",
    "seed",
    "footprint-scale",
];

fn parse_scheme(name: &str) -> Result<SchemeKind, ArgError> {
    SchemeKind::ALL
        .iter()
        .copied()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            ArgError(format!(
                "unknown scheme {name:?}; choose one of {}",
                SchemeKind::ALL.map(|k| k.name().to_ascii_lowercase()).join(", ")
            ))
        })
}

fn parse_bench(name: &str) -> Result<SpecBenchmark, ArgError> {
    name.parse()
        .map_err(|_| ArgError(format!("unknown benchmark {name:?}; see `picl benchmarks`")))
}

fn config_from(args: &Args) -> Result<SystemConfig, ArgError> {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = args.count_or("epoch", 3_000_000)?;
    cfg.epoch.acs_gap = args.count_or("acs-gap", 3)?;
    cfg.validate()
        .map_err(|e| ArgError(format!("invalid configuration: {e}")))?;
    Ok(cfg)
}

fn print_report(report: &RunReport) {
    println!("{report}");
    println!(
        "  NVM ops: {} demand, {} write-back, {} sequential-log, {} random-log",
        report.nvm.ops_in_category(TrafficCategory::Demand),
        report.nvm.ops_in_category(TrafficCategory::WriteBack),
        report.nvm.ops_in_category(TrafficCategory::SequentialLogging),
        report.nvm.ops_in_category(TrafficCategory::RandomLogging),
    );
}

fn cmd_run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(COMMON_FLAGS)?;
    let report = Simulation::builder(config_from(args)?)
        .scheme(parse_scheme(args.get_or("scheme", "picl"))?)
        .workload(&[parse_bench(args.get_or("bench", "bzip2"))?])
        .instructions_per_core(args.count_or("instructions", 10_000_000)?)
        .seed(args.count_or("seed", 42)?)
        .footprint_scale(args.float_or("footprint-scale", 1.0)?)
        .run()
        .map_err(|e| ArgError(e.to_string()))?;
    print_report(&report);
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), ArgError> {
    args.expect_only(COMMON_FLAGS)?;
    let bench = parse_bench(args.get_or("bench", "bzip2"))?;
    let instructions = args.count_or("instructions", 9_000_000)?;
    println!(
        "{:<12}{:>9}{:>10}{:>9}{:>13}{:>12}",
        "scheme", "norm.", "commits", "forced", "stall-cyc", "log-bytes"
    );
    let mut baseline = None;
    for kind in SchemeKind::ALL {
        let r = Simulation::builder(config_from(args)?)
            .scheme(kind)
            .workload(&[bench])
            .instructions_per_core(instructions)
            .seed(args.count_or("seed", 42)?)
            .footprint_scale(args.float_or("footprint-scale", 1.0)?)
            .run()
            .map_err(|e| ArgError(e.to_string()))?;
        let base = *baseline.get_or_insert(r.total_cycles.raw());
        println!(
            "{:<12}{:>9.3}{:>10}{:>9}{:>13}{:>12}",
            r.scheme,
            r.total_cycles.raw() as f64 / base as f64,
            r.commits,
            r.forced_commits,
            r.stall_cycles,
            format_bytes(r.scheme_stats.log_bytes_written)
        );
    }
    Ok(())
}

fn cmd_crash(args: &Args) -> Result<(), ArgError> {
    let mut flags = COMMON_FLAGS.to_vec();
    flags.push("at");
    args.expect_only(&flags)?;
    let at = args.count_or("at", 2_000_000)?;
    let scheme = parse_scheme(args.get_or("scheme", "picl"))?;
    let mut machine = Simulation::builder(config_from(args)?)
        .scheme(scheme)
        .workload_spec(WorkloadSpec::single(parse_bench(args.get_or("bench", "gcc"))?))
        .seed(args.count_or("seed", 42)?)
        .footprint_scale(args.float_or("footprint-scale", 0.25)?)
        .keep_snapshots(true)
        .into_machine()
        .map_err(|e| ArgError(e.to_string()))?;
    machine.run(at);
    println!(
        "ran {} instructions under {}; injecting power failure…",
        machine.instructions(),
        scheme.name()
    );
    let crash = machine.crash();
    println!(
        "recovered to {} applying {} entries in {} cycles",
        crash.outcome.recovered_to,
        crash.outcome.entries_applied,
        crash
            .outcome
            .completed_at
            .saturating_since(picl_types::Cycle::ZERO)
            .raw()
    );
    match crash.consistent {
        Some(true) => println!("verification: memory matches the recovered checkpoint exactly"),
        Some(false) => println!(
            "verification: INCONSISTENT — {} mismatching lines (first: {:?})",
            crash.mismatches.len(),
            crash.mismatches.first()
        ),
        None => println!("verification: no golden snapshot for that epoch"),
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), ArgError> {
    let mut flags = COMMON_FLAGS.to_vec();
    flags.extend(["param", "values"]);
    args.expect_only(&flags)?;
    let param = args.get_or("param", "acs-gap");
    let values: Vec<u64> = args
        .get_or("values", "0,1,3,7")
        .split(',')
        .map(|v| {
            crate::args::parse_count(v)
                .ok_or_else(|| ArgError(format!("bad sweep value {v:?}")))
        })
        .collect::<Result<_, _>>()?;
    let bench = parse_bench(args.get_or("bench", "gcc"))?;
    let instructions = args.count_or("instructions", 8_000_000)?;

    println!("{:<12}{:>12}{:>10}{:>12}", param, "cycles", "commits", "log-bytes");
    for &v in &values {
        let mut cfg = config_from(args)?;
        match param {
            "acs-gap" => cfg.epoch.acs_gap = v,
            "buffer" => cfg.epoch.undo_buffer_entries = v as usize,
            "bloom" => cfg.epoch.bloom_bits = v as usize,
            "epoch" => cfg.epoch.epoch_len_instructions = v,
            other => {
                return Err(ArgError(format!(
                    "unknown sweep parameter {other:?}; use acs-gap|buffer|bloom|epoch"
                )))
            }
        }
        cfg.validate()
            .map_err(|e| ArgError(format!("value {v} rejected: {e}")))?;
        let r = Simulation::builder(cfg)
            .scheme(SchemeKind::Picl)
            .workload(&[bench])
            .instructions_per_core(instructions)
            .seed(args.count_or("seed", 42)?)
            .footprint_scale(args.float_or("footprint-scale", 1.0)?)
            .run()
            .map_err(|e| ArgError(e.to_string()))?;
        println!(
            "{:<12}{:>12}{:>10}{:>12}",
            v,
            r.total_cycles.raw(),
            r.commits,
            format_bytes(r.scheme_stats.log_bytes_written)
        );
    }
    Ok(())
}

fn cmd_record(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["bench", "out", "events", "seed", "footprint-scale"])?;
    let bench = parse_bench(args.get_or("bench", "bzip2"))?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("record needs --out FILE".into()))?;
    let events = args.count_or("events", 100_000)? as u32;
    let profile = bench
        .profile()
        .scaled(args.float_or("footprint-scale", 1.0)?);
    let mut source = picl_trace::spec::ProfileGen::new(profile, args.count_or("seed", 42)?);
    let file = std::fs::File::create(out)
        .map_err(|e| ArgError(format!("cannot create {out}: {e}")))?;
    write_trace(std::io::BufWriter::new(file), &mut source, events)
        .map_err(|e| ArgError(format!("write failed: {e}")))?;
    println!("recorded {events} events of {bench} to {out}");
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["trace", "scheme", "instructions", "epoch", "acs-gap", "seed"])?;
    let path = args
        .get("trace")
        .ok_or_else(|| ArgError("replay needs --trace FILE".into()))?;
    let file = std::fs::File::open(path)
        .map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
    let trace = RecordedTrace::from_reader(std::io::BufReader::new(file), path)
        .map_err(|e| ArgError(format!("cannot parse {path}: {e}")))?;
    println!("replaying {} recorded events (cyclically)…", trace.len());
    let cfg = config_from(args)?;
    let scheme = parse_scheme(args.get_or("scheme", "picl"))?;
    let boxed: Box<dyn TraceSource + Send> = Box::new(trace);
    let mut machine = Machine::new(cfg.clone(), scheme.build(&cfg), vec![boxed], path, false);
    machine.run(args.count_or("instructions", 5_000_000)?);
    print_report(&machine.report());
    Ok(())
}

fn cmd_benchmarks(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[])?;
    println!(
        "{:<12}{:>8}{:>8}{:>10}{:>7}{:>7}{:>7}{:>6}",
        "name", "apki", "store", "footprint", "seq", "hot", "theta", "rep"
    );
    for b in SpecBenchmark::ALL {
        let p = b.profile();
        println!(
            "{:<12}{:>8}{:>8.2}{:>10}{:>7.2}{:>7.2}{:>7.2}{:>6}",
            p.name,
            p.accesses_per_kilo_instr,
            p.store_fraction,
            format_bytes(p.footprint_bytes),
            p.seq_fraction,
            p.hot_fraction,
            p.hot_theta,
            p.seq_repeats
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_parsing_accepts_all_names() {
        for kind in SchemeKind::ALL {
            assert_eq!(parse_scheme(&kind.name().to_lowercase()).unwrap(), kind);
        }
        assert!(parse_scheme("bogus").is_err());
    }

    #[test]
    fn bench_parsing() {
        assert_eq!(parse_bench("mcf").unwrap(), SpecBenchmark::Mcf);
        assert!(parse_bench("bogus").is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        let args = Args::parse(["frobnicate"]).unwrap();
        assert!(dispatch(&args).is_err());
    }

    #[test]
    fn benchmarks_listing_runs() {
        let args = Args::parse(["benchmarks"]).unwrap();
        dispatch(&args).unwrap();
    }

    #[test]
    fn run_command_end_to_end() {
        let args = Args::parse([
            "run",
            "--bench",
            "povray",
            "--instructions",
            "200k",
            "--epoch",
            "100k",
            "--footprint-scale",
            "0.1",
        ])
        .unwrap();
        dispatch(&args).unwrap();
    }

    #[test]
    fn crash_command_end_to_end() {
        let args = Args::parse([
            "crash",
            "--bench",
            "gcc",
            "--at",
            "150k",
            "--epoch",
            "50k",
            "--footprint-scale",
            "0.05",
        ])
        .unwrap();
        dispatch(&args).unwrap();
    }

    #[test]
    fn sweep_rejects_bad_parameter() {
        let args = Args::parse(["sweep", "--param", "bogus", "--values", "1"]).unwrap();
        assert!(dispatch(&args).is_err());
    }

    #[test]
    fn record_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("picl_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.picltrc");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(
            &Args::parse([
                "record",
                "--bench",
                "gcc",
                "--out",
                &path_s,
                "--events",
                "5k",
                "--footprint-scale",
                "0.05",
            ])
            .unwrap(),
        )
        .unwrap();
        dispatch(
            &Args::parse([
                "replay",
                "--trace",
                &path_s,
                "--instructions",
                "100k",
                "--epoch",
                "50k",
            ])
            .unwrap(),
        )
        .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn invalid_config_surfaces_cleanly() {
        let args = Args::parse(["run", "--epoch", "0"]).unwrap();
        let err = dispatch(&args).unwrap_err();
        assert!(err.to_string().contains("epoch"), "{err}");
    }
}
