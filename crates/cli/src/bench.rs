//! `picl bench` — the wall-clock performance harness.
//!
//! Runs a pinned scheme×workload matrix twice per cell: once on the
//! optimized fast paths (epoch-indexed drains, delta snapshots) and once
//! on the unoptimized reference paths (full-scan drains, eager deep-clone
//! snapshots), requiring the two [`RunReport`]s to be bit-identical — the
//! differential safety net for every hot-path optimization. Reports
//! events/sec (simulated instructions per wall-clock second), the
//! fast-vs-reference speedup, and peak RSS, and emits the results as a
//! `picl-bench-v1` JSON document so the repo carries a perf trajectory
//! (`BENCH_3.json`, `BENCH_8.json`).

use std::time::Instant;

use picl_campaign::json::Value;
use picl_campaign::{run_cells, CellPayload};
use picl_sim::{RunReport, SchemeKind, Simulation, WorkloadSpec};
use picl_telemetry::json::{escape as json_escape, validate_json};
use picl_trace::mixes::table_v_mixes;
use picl_trace::spec::SpecBenchmark;
use picl_types::SystemConfig;

use crate::args::{ArgError, Args};
use crate::commands::campaign_options;

/// Instructions per core for each quick-matrix cell (before `--scale`).
const QUICK_INSTRUCTIONS: u64 = 1_000_000;
/// Epoch length for the quick matrix: short enough that drains and
/// snapshot commits — the optimized paths — dominate the reference run.
const QUICK_EPOCH_LEN: u64 = 10_000;
/// Instructions per core for the 8-core paper cell (before `--scale`).
const PAPER_INSTRUCTIONS: u64 = 400_000;
/// Epoch length for the paper cell.
const PAPER_EPOCH_LEN: u64 = 1_000;
/// A cell's fast-path events/sec may fall at most this far below the
/// committed number before `--check` fails (aggregated geometric mean).
const REGRESSION_FLOOR: f64 = 0.8;

/// One measured matrix cell.
#[derive(Debug, Clone)]
struct CellResult {
    label: String,
    scheme: String,
    workload: String,
    cores: usize,
    instructions: u64,
    /// Optimized-path events (instructions) per wall-clock second.
    events_per_sec: f64,
    /// Reference-path events per wall-clock second.
    reference_events_per_sec: f64,
    /// Growth of the process's peak RSS (`VmHWM`) while this cell ran, in
    /// kB. `VmHWM` is process-wide and monotone, so the *reading* cannot be
    /// attributed to a cell — but its growth during the cell can: a cell
    /// that allocated under the previous high-water mark reports 0.
    rss_delta_kb: u64,
}

impl CellResult {
    fn speedup(&self) -> f64 {
        self.events_per_sec / self.reference_events_per_sec.max(1e-9)
    }
}

/// Bench cells checkpoint their measurements; a resumed `picl bench`
/// reuses the recorded numbers verbatim instead of re-timing.
impl CellPayload for CellResult {
    fn encode(&self) -> String {
        format!(
            "{{\"label\": \"{}\", \"scheme\": \"{}\", \"workload\": \"{}\", \
             \"cores\": {}, \"instructions\": {}, \"events_per_sec\": {}, \
             \"reference_events_per_sec\": {}, \"rss_delta_kb\": {}}}",
            json_escape(&self.label),
            json_escape(&self.scheme),
            json_escape(&self.workload),
            self.cores,
            self.instructions,
            self.events_per_sec,
            self.reference_events_per_sec,
            self.rss_delta_kb
        )
    }

    fn decode(v: &Value) -> Result<CellResult, String> {
        let float = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
        };
        Ok(CellResult {
            label: v.field_str("label")?.to_owned(),
            scheme: v.field_str("scheme")?.to_owned(),
            workload: v.field_str("workload")?.to_owned(),
            cores: v
                .get("cores")
                .and_then(Value::as_usize)
                .ok_or("missing or non-integer field \"cores\"")?,
            instructions: v.field_u64("instructions")?,
            events_per_sec: float("events_per_sec")?,
            reference_events_per_sec: float("reference_events_per_sec")?,
            rss_delta_kb: v.field_u64("rss_delta_kb")?,
        })
    }
}

/// One schedulable bench cell: a label plus the pinned simulation.
#[derive(Clone)]
struct BenchCell {
    label: String,
    sim: Simulation,
}

impl picl_campaign::CampaignCell for BenchCell {
    type Payload = CellResult;

    fn spec_string(&self) -> String {
        format!("bench {} {:?}", self.label, self.sim)
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn execute(&self) -> CellResult {
        run_cell(&self.label, &self.sim).unwrap_or_else(|e| panic!("{}", e))
    }
}

fn scaled(n: u64, scale: f64, floor: u64) -> u64 {
    ((n as f64 * scale) as u64).max(floor)
}

/// The quick matrix: every scheme on single-core gcc.
fn quick_cells(scale: f64) -> Vec<(String, Simulation)> {
    SchemeKind::ALL
        .iter()
        .map(|&kind| {
            let mut cfg = SystemConfig::paper_single_core();
            cfg.epoch.epoch_len_instructions = scaled(QUICK_EPOCH_LEN, scale, 1_000);
            let sim = Simulation::builder(cfg)
                .scheme(kind)
                .workload(&[SpecBenchmark::Gcc])
                .instructions_per_core(scaled(QUICK_INSTRUCTIONS, scale, 5_000))
                .seed(42)
                .footprint_scale(0.05)
                .keep_snapshots(true);
            (format!("{}/gcc x1", kind.name()), sim)
        })
        .collect()
}

/// The paper cell: PiCL on the W0 mix, 8 cores, 16 MB LLC, snapshots on —
/// the configuration the ≥3× acceptance target is measured on.
fn paper_cell(scale: f64) -> (String, Simulation) {
    let mut cfg = SystemConfig::paper_multicore(8);
    cfg.epoch.epoch_len_instructions = scaled(PAPER_EPOCH_LEN, scale, 1_000);
    let sim = Simulation::builder(cfg)
        .scheme(SchemeKind::Picl)
        .workload_spec(WorkloadSpec::mix(&table_v_mixes()[0]))
        .instructions_per_core(scaled(PAPER_INSTRUCTIONS, scale, 5_000))
        .seed(42)
        .footprint_scale(1.0)
        .keep_snapshots(true);
    ("PiCL/W0 x8 paper".to_owned(), sim)
}

/// Multi-lane variants of the paper cell: identical workload, decode fanned
/// out to N lane threads. The differential check inside [`run_cell`] then
/// enforces that laned decode reproduces the reference report bit-for-bit.
fn lane_cells(scale: f64) -> Vec<(String, Simulation)> {
    [2usize, 4]
        .into_iter()
        .map(|lanes| {
            let (_, sim) = paper_cell(scale);
            (format!("PiCL/W0 x8 lanes{lanes}"), sim.decode_lanes(lanes))
        })
        .collect()
}

/// Runs one cell on both paths, enforcing the differential check.
fn run_cell(label: &str, sim: &Simulation) -> Result<CellResult, ArgError> {
    let timed = |reference: bool| -> Result<(RunReport, f64), ArgError> {
        let started = Instant::now();
        let report = sim
            .clone()
            .reference_mode(reference)
            .run()
            .map_err(|e| ArgError(e.to_string()))?;
        Ok((report, started.elapsed().as_secs_f64().max(1e-9)))
    };
    // Best-of-3 for the fast path: it is the number the `--check`
    // regression gate compares, so squeeze out scheduler/allocator noise.
    // (Runs are deterministic, so repeats produce the same report.)
    let rss_before_kb = peak_rss_kb();
    let (fast, mut fast_secs) = timed(false)?;
    for _ in 0..2 {
        fast_secs = fast_secs.min(timed(false)?.1);
    }
    let (reference, reference_secs) = timed(true)?;
    if fast != reference {
        return Err(ArgError(format!(
            "differential check failed: {label} reports diverge between the \
             optimized and reference paths"
        )));
    }
    Ok(CellResult {
        label: label.to_owned(),
        scheme: fast.scheme.to_owned(),
        workload: fast.workload.clone(),
        cores: fast.cores,
        instructions: fast.instructions,
        events_per_sec: fast.instructions as f64 / fast_secs,
        reference_events_per_sec: fast.instructions as f64 / reference_secs,
        rss_delta_kb: peak_rss_kb().saturating_sub(rss_before_kb),
    })
}

/// Peak resident set size in kB (`VmHWM` from procfs; 0 if unavailable).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1)?.parse().ok())
        })
        .unwrap_or(0)
}

pub(crate) fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the `picl-bench-v1` document.
fn to_json(mode: &str, cells: &[CellResult], total_seconds: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"picl-bench-v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"scheme\": \"{}\", \"workload\": \"{}\", \
             \"cores\": {}, \"instructions\": {}, \"events_per_sec\": {:.1}, \
             \"reference_events_per_sec\": {:.1}, \"speedup\": {:.3}, \
             \"rss_delta_kb\": {}, \"identical\": true}}{}\n",
            escape(&cell.label),
            escape(&cell.scheme),
            escape(&cell.workload),
            cell.cores,
            cell.instructions,
            cell.events_per_sec,
            cell.reference_events_per_sec,
            cell.speedup(),
            cell.rss_delta_kb,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    // VmHWM is process-wide and monotone: this is the whole run's peak
    // (resumed cells included), never a per-cell figure — those are the
    // per-cell rss_delta_kb entries above.
    out.push_str(&format!("  \"process_peak_rss_kb\": {},\n", peak_rss_kb()));
    out.push_str(&format!("  \"total_seconds\": {total_seconds:.3}\n"));
    out.push_str("}\n");
    out
}

/// Pulls `(label, events_per_sec)` pairs out of a committed bench JSON.
///
/// A full JSON parser is overkill for the one document this command
/// itself emits: each cell object puts `events_per_sec` right after its
/// `label`, so a linear scan recovers the pairs.
fn committed_cells(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"label\": \"") {
        let after = &rest[pos + "\"label\": \"".len()..];
        let Some(end) = after.find('"') else { break };
        let label = after[..end].to_owned();
        let tail = &after[end..];
        if let Some(vpos) = tail.find("\"events_per_sec\": ") {
            let digits = &tail[vpos + "\"events_per_sec\": ".len()..];
            let number: String = digits
                .chars()
                .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
                .collect();
            if let Ok(value) = number.parse::<f64>() {
                out.push((label, value));
            }
        }
        rest = tail;
    }
    out
}

/// Fails if this run's events/sec regressed more than 20% (geometric mean
/// over the cells both runs share) below the committed numbers in `path`.
fn check_regression(path: &str, cells: &[CellResult]) -> Result<(), ArgError> {
    let committed =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    validate_json(&committed).map_err(|e| ArgError(format!("{path} is not valid JSON: {e}")))?;
    if !committed.contains("\"schema\": \"picl-bench-v1\"") {
        return Err(ArgError(format!(
            "{path} does not declare the picl-bench-v1 schema"
        )));
    }
    let baseline = committed_cells(&committed);
    let mut log_ratio_sum = 0.0;
    let mut matched = 0usize;
    for cell in cells {
        let Some((_, base)) = baseline.iter().find(|(label, _)| *label == cell.label) else {
            continue;
        };
        if *base > 0.0 {
            log_ratio_sum += (cell.events_per_sec / base).ln();
            matched += 1;
        }
    }
    if matched == 0 {
        return Err(ArgError(format!(
            "{path} shares no cells with this run; cannot check for regressions"
        )));
    }
    let geomean = (log_ratio_sum / matched as f64).exp();
    if geomean < REGRESSION_FLOOR {
        return Err(ArgError(format!(
            "events/sec regressed: this run is {:.0}% of the committed numbers \
             in {path} over {matched} cell(s) (floor {:.0}%)",
            geomean * 100.0,
            REGRESSION_FLOOR * 100.0
        )));
    }
    println!(
        "regression check: {:.0}% of committed events/sec over {matched} cell(s) — ok",
        geomean * 100.0
    );
    Ok(())
}

/// `picl bench [--quick] [--out FILE] [--check FILE] [--scale F]
/// [--resume DIR] [--cell-timeout SECS] [--keep-going]`.
pub fn cmd_bench(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "quick",
        "out",
        "check",
        "scale",
        "resume",
        "cell-timeout",
        "keep-going",
    ])?;
    let quick = args.is_set("quick");
    let scale = args.float_or("scale", 1.0)?;
    if scale.is_nan() || scale <= 0.0 {
        return Err(ArgError("--scale must be positive".into()));
    }
    let out_path = args.get_or("out", "BENCH_8.json");

    let mut matrix = quick_cells(scale);
    if !quick {
        matrix.push(paper_cell(scale));
        matrix.extend(lane_cells(scale));
    }
    let bench_cells: Vec<BenchCell> = matrix
        .into_iter()
        .map(|(label, sim)| BenchCell { label, sim })
        .collect();

    // One worker: cells time wall-clock, so they must not compete for
    // cores. The executor still adds panic isolation, the watchdog, and
    // checkpoint/resume.
    let mut opts = campaign_options(args)?;
    opts.threads = 1;

    let started = Instant::now();
    let run = run_cells(&bench_cells, &opts).map_err(ArgError)?;
    let total_seconds = started.elapsed().as_secs_f64();
    if run.cached > 0 {
        println!("resumed {} cell(s) from the checkpoint store", run.cached);
    }

    println!(
        "{:<22}{:>10}{:>14}{:>14}{:>9}",
        "cell", "instr", "events/s", "ref ev/s", "speedup"
    );
    let failures = run.failures();
    let cells: Vec<CellResult> = run
        .outcomes
        .into_iter()
        .filter_map(picl_campaign::CellOutcome::into_payload)
        .collect();
    for cell in &cells {
        println!(
            "{:<22}{:>10}{:>14.0}{:>14.0}{:>8.2}x",
            cell.label,
            cell.instructions,
            cell.events_per_sec,
            cell.reference_events_per_sec,
            cell.speedup()
        );
    }
    if !failures.is_empty() {
        let lines: Vec<String> = failures
            .iter()
            .map(|(i, m)| format!("  {}: {m}", bench_cells[*i].label))
            .collect();
        return Err(ArgError(format!(
            "{} bench cell(s) produced no measurement:\n{}",
            failures.len(),
            lines.join("\n")
        )));
    }

    let json = to_json(if quick { "quick" } else { "full" }, &cells, total_seconds);
    validate_json(&json).map_err(|e| ArgError(format!("emitted JSON invalid: {e}")))?;
    std::fs::write(out_path, &json)
        .map_err(|e| ArgError(format!("cannot write {out_path}: {e}")))?;
    println!(
        "wrote {out_path} ({} cells, {:.1}s total, process peak RSS {} kB)",
        cells.len(),
        total_seconds,
        peak_rss_kb()
    );

    if let Some(paper) = cells.iter().find(|c| c.label.contains("paper")) {
        println!(
            "paper 8-core cell: {:.2}x events/sec over the reference path",
            paper.speedup()
        );
    }

    if let Some(check) = args.get("check") {
        check_regression(check, &cells)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_cells_scan_recovers_pairs() {
        let json = to_json(
            "quick",
            &[
                CellResult {
                    label: "A/x x1".into(),
                    scheme: "A".into(),
                    workload: "x".into(),
                    cores: 1,
                    instructions: 10,
                    events_per_sec: 1000.0,
                    reference_events_per_sec: 250.0,
                    rss_delta_kb: 64,
                },
                CellResult {
                    label: "B/y x2".into(),
                    scheme: "B".into(),
                    workload: "y".into(),
                    cores: 2,
                    instructions: 20,
                    events_per_sec: 2000.0,
                    reference_events_per_sec: 500.0,
                    rss_delta_kb: 0,
                },
            ],
            1.0,
        );
        validate_json(&json).unwrap();
        let cells = committed_cells(&json);
        assert_eq!(
            cells,
            vec![("A/x x1".to_owned(), 1000.0), ("B/y x2".to_owned(), 2000.0)]
        );
    }

    #[test]
    fn cell_payload_round_trips() {
        let cell = CellResult {
            label: "PiCL/gcc x1".into(),
            scheme: "PiCL".into(),
            workload: "gcc".into(),
            cores: 1,
            instructions: 1_000_000,
            events_per_sec: 123_456.789,
            reference_events_per_sec: 98_765.432_1,
            rss_delta_kb: 2048,
        };
        let encoded = cell.encode();
        validate_json(&encoded).unwrap();
        let decoded = CellResult::decode(&Value::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.label, cell.label);
        assert_eq!(decoded.events_per_sec, cell.events_per_sec);
        assert_eq!(
            decoded.reference_events_per_sec,
            cell.reference_events_per_sec
        );
        assert_eq!(decoded.rss_delta_kb, cell.rss_delta_kb);
    }

    #[test]
    fn json_separates_run_peak_from_per_cell_deltas() {
        let json = to_json(
            "quick",
            &[CellResult {
                label: "A/x x1".into(),
                scheme: "A".into(),
                workload: "x".into(),
                cores: 1,
                instructions: 10,
                events_per_sec: 1000.0,
                reference_events_per_sec: 250.0,
                rss_delta_kb: 64,
            }],
            1.0,
        );
        // Per-cell: the high-water-mark *growth* during the cell.
        assert!(json.contains("\"rss_delta_kb\": 64"), "{json}");
        // Run level: the process-wide peak, labeled as such — the old
        // per-run "peak_rss_kb" name is gone.
        assert!(json.contains("\"process_peak_rss_kb\": "), "{json}");
        assert!(!json.contains("\n  \"peak_rss_kb\""), "{json}");
    }

    #[test]
    fn scaled_applies_floor() {
        assert_eq!(scaled(100_000, 0.001, 5_000), 5_000);
        assert_eq!(scaled(100_000, 0.5, 5_000), 50_000);
    }
}
