//! `picl serve` / `picl ycsb` — concurrent serving and the YCSB-style
//! benchmark.
//!
//! Subcommands:
//!
//! - `serve run` — drive N deterministic per-session streams against one
//!   shared store; `--progress` streams flushed
//!   `commit <eid> ops <n0>,<n1>,...` lines (the multi-session kill -9
//!   harness reads them to schedule its signal and to bound each
//!   session's recovered prefix).
//! - `serve torture` — spawn seeded multi-session `kill -9` children and
//!   require every recovery to be prefix-consistent per session within
//!   the RPO bound.
//! - `ycsb` — the load benchmark: zipfian key popularity, A/B/C mixes,
//!   closed- or open-loop arrivals. Runs a multi-session cell and a
//!   same-op-count single-session cell (plus, with `--baseline`, the
//!   fdatasync-per-mutation store) through the campaign executor,
//!   audits the PiCL cells' event streams in-process, and emits a
//!   `picl-serve-v1` JSON report.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use picl_campaign::json::Value;
use picl_campaign::{run_cells, CellPayload};
use picl_crashlab::run_serve_campaign;
use picl_obs::SnapValue;
use picl_serve::{
    preload, run_load, session_ops, Arrival, Backend, FsyncKv, LoadReport, LoadSpec, MixPreset,
    ServeKv,
};
use picl_store::workload::Op;
use picl_store::{EngineConfig, FileMedium, Geometry, StoreError, UNDO_BUFFER_ENTRIES};
use picl_telemetry::export::jsonl_to_string;
use picl_telemetry::json::validate_json;
use picl_telemetry::Telemetry;
use picl_types::stats::Histogram;

use crate::args::{ArgError, Args};
use crate::bench::escape as json_escape;
use crate::commands::campaign_options;

/// Usage text for `picl serve help`.
const SERVE_USAGE: &str = "\
usage: picl serve <run|torture|help> [--flag value]...

run flags:
  --path FILE           store file (required; created if absent)
  --seed N              per-session stream seed (default 1)
  --sessions N          concurrent client sessions (default 4)
  --ops-per-session N   operations per session (default 100)
  --key-space N         keys per session, under its own prefix (default 12)
  --ops-per-epoch N     mutations per epoch (default 8)
  --window N            in-order persist window = RPO bound (default 1)
  --lines N             data capacity in 64B lines when creating (default 1024)
  --log-blocks N        log capacity in 4K blocks (default: sized from
                        --lines and --window with headroom)
  --persist-stall-ms N  persister mid-epoch stall for the torture harness
  --progress            stream flushed `commit <eid> ops n0,n1,...` lines
  --telemetry PREFIX    export the engine's event stream (audit-ready)
  --metrics-addr H:P    serve live Prometheus text exposition (port 0 picks
                        a free port; prints `metrics listening on ADDR`)
  --linger-ms N         keep the metrics endpoint up N ms after the
                        workload finishes (default 0)
  --flight-recorder F   append JSONL registry snapshots to F (kill -9
                        safe: every line is flushed as written)
  --flight-interval-ms N  flight snapshot period (default 50)
  --flight-max-kb N     rotate the flight file past N KiB (default 256)
  --flight-max-files N  rotated generations to keep (default 3)

torture flags:
  --trials N            multi-session kill -9 trials (default 30)
  --seed N              campaign seed (default 7)
  --dir DIR             scratch directory (default: the OS temp dir)
";

/// Dispatches `picl serve <sub>`.
///
/// # Errors
///
/// Returns an [`ArgError`] for unknown subcommands, bad flags, I/O
/// failures, or oracle verdicts (torture mismatches).
pub fn cmd_serve(args: &Args) -> Result<(), ArgError> {
    match args.subcommand() {
        Some("run") => serve_run(args),
        Some("torture") => serve_torture(args),
        Some("help") | None => {
            println!("{SERVE_USAGE}");
            Ok(())
        }
        Some(other) => Err(ArgError(format!(
            "unknown serve subcommand {other:?}; try `picl serve help`"
        ))),
    }
}

/// Log capacity (4 KB blocks) that keeps the geometry valid for
/// `window`, with one epoch of headroom.
pub(crate) fn auto_log_blocks(lines: u32, window: u64) -> u32 {
    let per_epoch = u64::from(lines).div_ceil(UNDO_BUFFER_ENTRIES as u64) + 1;
    let needed = (window + 2) * per_epoch + 2;
    u32::try_from(needed + per_epoch).unwrap_or(u32::MAX)
}

fn serve_engine_config(args: &Args, default_lines: u32) -> Result<EngineConfig, ArgError> {
    let lines = args.count_or("lines", u64::from(default_lines))? as u32;
    let window = args.count_or("window", 1)?;
    let cfg = EngineConfig {
        lines,
        log_blocks: args.count_or("log-blocks", u64::from(auto_log_blocks(lines, window)))? as u32,
        window,
        persist_stall_ms: args.count_or("persist-stall-ms", 0)?,
        sabotage_skip_drain: false,
    };
    cfg.validate()
        .map_err(|e| ArgError(format!("store geometry: {e}")))?;
    Ok(cfg)
}

/// Applies one stream op through the serving backend, attributed to
/// `session`.
fn apply_serve_op(kv: &ServeKv, session: usize, op: &Op) -> Result<(), StoreError> {
    match op {
        Op::Put(k, v) => kv.put(session, k, v),
        Op::Delete(k) => kv.delete(session, k).map(|_| ()),
        Op::Get(k) => kv.get(session, k).map(|_| ()),
    }
}

fn serve_run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "path",
        "seed",
        "sessions",
        "ops-per-session",
        "key-space",
        "ops-per-epoch",
        "window",
        "lines",
        "log-blocks",
        "persist-stall-ms",
        "progress",
        "telemetry",
        "metrics-addr",
        "linger-ms",
        "flight-recorder",
        "flight-interval-ms",
        "flight-max-kb",
        "flight-max-files",
    ])?;
    let path = args
        .get("path")
        .map(PathBuf::from)
        .ok_or_else(|| ArgError("--path is required".into()))?;
    let cfg = serve_engine_config(args, 1024)?;
    let sessions = args.count_or("sessions", 4)? as usize;
    let seed = args.count_or("seed", 1)?;
    let ops_per_session = args.count_or("ops-per-session", 100)?;
    let key_space = args.count_or("key-space", 12)?;
    let ops_per_epoch = args.count_or("ops-per-epoch", 8)?;
    let telemetry = match args.get("telemetry") {
        Some(_) => Telemetry::new(0, 1 << 18),
        None => Telemetry::off(),
    };
    let geometry = Geometry {
        lines: cfg.lines,
        log_blocks: cfg.log_blocks,
    };
    let medium = if path.exists() {
        FileMedium::open_existing(&path)
    } else {
        FileMedium::open(&path, geometry.total_len())
    }
    .map_err(|e| ArgError(format!("cannot open {}: {e}", path.display())))?;
    let (mut kv, report) = ServeKv::open(
        Arc::new(medium),
        cfg.clone(),
        telemetry.clone(),
        ops_per_epoch,
        sessions,
    )
    .map_err(|e| ArgError(format!("open store: {e}")))?;
    if report.recovered {
        println!(
            "recovered {} to epoch {} ({} undo entries replayed, {:.3} ms)",
            path.display(),
            report.recovered_to,
            report.entries_applied,
            report.recovery_ns as f64 / 1e6
        );
    }
    // Metrics are opt-in: without either flag the serving layer keeps
    // its zero-instrumentation fast path.
    let registry = (args.get("metrics-addr").is_some() || args.get("flight-recorder").is_some())
        .then(picl_obs::MetricsRegistry::new);
    if let Some(reg) = &registry {
        kv.enable_obs(reg);
    }
    let metrics_server = match (args.get("metrics-addr"), &registry) {
        (Some(addr), Some(reg)) => {
            let srv = picl_obs::MetricsServer::spawn(reg.clone(), addr)
                .map_err(|e| ArgError(format!("metrics server on {addr}: {e}")))?;
            // Flushed so a parent process (CI, the docs walkthrough) can
            // discover the port when `--metrics-addr host:0` was given.
            let mut stdout = std::io::stdout().lock();
            let _ = writeln!(stdout, "metrics listening on {}", srv.local_addr());
            let _ = stdout.flush();
            drop(stdout);
            Some(srv)
        }
        _ => None,
    };
    let flight = match (args.get("flight-recorder"), &registry) {
        (Some(fpath), Some(reg)) => {
            let mut rc = picl_obs::RecorderConfig::new(fpath);
            rc.interval =
                std::time::Duration::from_millis(args.count_or("flight-interval-ms", 50)?);
            rc.max_bytes = args.count_or("flight-max-kb", 256)?.max(1) * 1024;
            rc.max_files = args.count_or("flight-max-files", 3)?.max(1) as usize;
            let recorder = picl_obs::FlightRecorder::spawn(reg.clone(), rc)
                .map_err(|e| ArgError(format!("flight recorder {fpath}: {e}")))?;
            Some(recorder)
        }
        _ => None,
    };
    if args.is_set("progress") {
        // One flushed line per commit: the multi-session kill -9 harness
        // reads this stream for both its signal schedule and the
        // per-session recovery lower bounds.
        kv.set_commit_hook(Box::new(|eid, counts| {
            let joined = counts
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let mut stdout = std::io::stdout().lock();
            let _ = writeln!(stdout, "commit {eid} ops {joined}");
            let _ = stdout.flush();
        }));
    }

    let outcomes: Vec<Result<(), StoreError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..sessions)
            .map(|sid| {
                let kv = &kv;
                s.spawn(move || {
                    for op in session_ops(seed, sid, ops_per_session, key_space) {
                        apply_serve_op(kv, sid, &op)?;
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread panicked"))
            .collect()
    });
    for outcome in outcomes {
        outcome.map_err(|e| ArgError(format!("serving: {e}")))?;
    }
    kv.commit()
        .map_err(|e| ArgError(format!("final commit: {e}")))?;

    let counts = kv.session_counts();
    let stalls = kv.commit_stalls();
    let (_, committed, persisted) = kv.engine().frontiers();
    let live = kv.scan().map_err(|e| ArgError(format!("scan: {e}")))?.len();
    let stats = kv
        .close()
        .map_err(|e| ArgError(format!("close store: {e}")))?;
    println!(
        "served {} ops across {} sessions ({} live keys): {} epochs committed, \
         {} persisted (RPO bound {} epoch[s]), {} undo entries, {} forced drains, \
         {} window stalls",
        counts.iter().sum::<u64>(),
        sessions,
        live,
        committed,
        persisted,
        cfg.window,
        stats.undo_entries,
        stats.forced_drains,
        stats.window_stalls
    );
    if let Some(p99) = stalls.percentile_interpolated(99.0) {
        println!(
            "epoch-commit stall: p50 {:.3} ms, p99 {:.3} ms over {} commits",
            stalls.percentile_interpolated(50.0).unwrap_or(0.0) / 1e6,
            p99 / 1e6,
            stalls.count()
        );
    }
    if let Some(prefix) = args.get("telemetry") {
        crate::commands::export_telemetry(prefix, &telemetry.snapshot())?;
    }
    // Give scrapers a window onto the finished run before tearing the
    // endpoint down (CI scrapes here; operators use a long linger).
    let linger_ms = args.count_or("linger-ms", 0)?;
    if linger_ms > 0 && (metrics_server.is_some() || flight.is_some()) {
        std::thread::sleep(std::time::Duration::from_millis(linger_ms));
    }
    if let Some(recorder) = flight {
        let lines = recorder
            .stop()
            .map_err(|e| ArgError(format!("flight recorder: {e}")))?;
        println!("flight recorder wrote {lines} snapshot line(s)");
    }
    if let Some(mut srv) = metrics_server {
        srv.shutdown();
    }
    Ok(())
}

fn serve_torture(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["trials", "seed", "dir"])?;
    let trials = args.count_or("trials", 30)?;
    if trials == 0 {
        return Err(ArgError("--trials must be at least 1".into()));
    }
    let binary = std::env::current_exe()
        .map_err(|e| ArgError(format!("cannot locate the picl binary: {e}")))?;
    let dir = match args.get("dir") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("picl-serve-torture-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir)
        .map_err(|e| ArgError(format!("cannot create {}: {e}", dir.display())))?;
    let report =
        run_serve_campaign(&binary, &dir, trials, args.count_or("seed", 7)?).map_err(ArgError)?;
    let mut worst_lost = 0u64;
    let mut max_recovery_ns = 0u64;
    let mut sessions_judged = 0u64;
    let mut flight_lines = 0u64;
    for o in &report.outcomes {
        worst_lost = worst_lost.max(o.epochs_lost);
        max_recovery_ns = max_recovery_ns.max(o.recovery_ns);
        sessions_judged += o.sessions_consistent.len() as u64;
        flight_lines += o.flight_lines;
    }
    println!(
        "{} trials, {} kill -9s delivered, {} session verdicts, in {:.2} s",
        report.outcomes.len(),
        report.kills,
        sessions_judged,
        report.elapsed.as_secs_f64()
    );
    println!(
        "oracle: {} inconsistent, {} RPO violations, {} unreadable flight logs \
         ({flight_lines} snapshot lines recovered); worst epochs lost {worst_lost}, \
         slowest recovery {:.3} ms",
        report.inconsistent,
        report.rpo_violations,
        report.flight_failures,
        max_recovery_ns as f64 / 1e6
    );
    if report.passed() {
        println!(
            "serve torture: PASS (every session prefix-consistent within the RPO bound, \
             every flight log readable after the kill)"
        );
        Ok(())
    } else {
        Err(ArgError(format!(
            "serve torture: {} inconsistent recoveries, {} RPO violations, \
             {} unreadable flight logs",
            report.inconsistent, report.rpo_violations, report.flight_failures
        )))
    }
}

/// `picl store run --threads N`: the same seeded smoke workload, but
/// sharded across N session threads over one shared store.
pub(crate) fn store_run_threads(args: &Args, threads: usize) -> Result<(), ArgError> {
    if args.get("workload").is_some() {
        return Err(ArgError(
            "--workload runs a single scripted stream; use --threads 1 with it".into(),
        ));
    }
    if args.get("medium").is_some_and(|m| m != "file") {
        return Err(ArgError(
            "--medium latency is single-threaded; use --threads 1 with it".into(),
        ));
    }
    let path = args
        .get("path")
        .map(PathBuf::from)
        .ok_or_else(|| ArgError("--path is required".into()))?;
    let cfg = EngineConfig {
        lines: args.count_or("lines", 1024)? as u32,
        log_blocks: args.count_or("log-blocks", 160)? as u32,
        window: args.count_or("window", 1)?,
        persist_stall_ms: args.count_or("persist-stall-ms", 0)?,
        sabotage_skip_drain: false,
    };
    cfg.validate()
        .map_err(|e| ArgError(format!("store geometry: {e}")))?;
    let geometry = Geometry {
        lines: cfg.lines,
        log_blocks: cfg.log_blocks,
    };
    let medium = if path.exists() {
        FileMedium::open_existing(&path)
    } else {
        FileMedium::open(&path, geometry.total_len())
    }
    .map_err(|e| ArgError(format!("cannot open {}: {e}", path.display())))?;
    let telemetry = match args.get("telemetry") {
        Some(_) => Telemetry::new(0, 1 << 18),
        None => Telemetry::off(),
    };
    let (mut kv, report) = ServeKv::open(
        Arc::new(medium),
        cfg.clone(),
        telemetry.clone(),
        args.count_or("ops-per-epoch", 8)?,
        threads,
    )
    .map_err(|e| ArgError(format!("open store: {e}")))?;
    if report.recovered {
        println!(
            "recovered {} to epoch {} ({} undo entries replayed, {:.3} ms)",
            path.display(),
            report.recovered_to,
            report.entries_applied,
            report.recovery_ns as f64 / 1e6
        );
    }
    if args.is_set("progress") {
        // Same plain `commit <eid>` lines as the single-threaded path.
        kv.set_commit_hook(Box::new(|eid, _| {
            let mut stdout = std::io::stdout().lock();
            let _ = writeln!(stdout, "commit {eid}");
            let _ = stdout.flush();
        }));
    }
    let seed = args.count_or("seed", 1)?;
    let total_ops = args.count_or("ops", 200)?;
    let key_space = args.count_or("key-space", 16)?;
    let per_thread = (total_ops / threads as u64).max(1);
    let outcomes: Vec<Result<(), StoreError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let kv = &kv;
                s.spawn(move || {
                    // Distinct seeds per thread; shared key space, so the
                    // threads genuinely contend for the same records.
                    let ops =
                        picl_store::generate(seed ^ ((tid as u64) << 32), per_thread, key_space);
                    for op in &ops {
                        match op {
                            Op::Put(k, v) => kv.put(tid, k, v)?,
                            Op::Delete(k) => {
                                kv.delete(tid, k)?;
                            }
                            Op::Get(k) => {
                                kv.get(tid, k)?;
                            }
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    for outcome in outcomes {
        outcome.map_err(|e| ArgError(format!("workload: {e}")))?;
    }
    kv.commit()
        .map_err(|e| ArgError(format!("final commit: {e}")))?;
    let (_, committed, persisted) = kv.engine().frontiers();
    let live = kv.scan().map_err(|e| ArgError(format!("scan: {e}")))?.len();
    let stats = kv
        .close()
        .map_err(|e| ArgError(format!("close store: {e}")))?;
    println!(
        "ran {} ops on {} threads ({} live keys): {} epochs committed, {} persisted \
         (RPO bound {} epoch[s]), {} undo entries, {} drains ({} forced), {} window stalls",
        per_thread * threads as u64,
        threads,
        live,
        committed,
        persisted,
        cfg.window,
        stats.undo_entries,
        stats.drains,
        stats.forced_drains,
        stats.window_stalls
    );
    if let Some(prefix) = args.get("telemetry") {
        crate::commands::export_telemetry(prefix, &telemetry.snapshot())?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// picl ycsb
// ---------------------------------------------------------------------------

/// Registry-derived operator summary of one PiCL cell (absent for the
/// fsync baseline, which runs without the instrumented serving layer).
#[derive(Debug, Clone)]
struct ObsSummary {
    /// Get sojourn percentiles in microseconds, merged across the
    /// hit/miss/contended outcome series.
    get_p50_us: f64,
    get_p99_us: f64,
    get_p999_us: f64,
    /// Put sojourn percentiles, merged across ok/escalated.
    put_p50_us: f64,
    put_p99_us: f64,
    put_p999_us: f64,
    /// Gets that fell back to the serialized read path.
    contended_gets: u64,
    /// Multi-shard mutations that escalated to lock-all.
    escalations: u64,
    /// Escalations per timed shard mutation.
    escalation_rate: f64,
    /// Background persister drain cycles observed.
    persister_cycles: u64,
    persister_cycle_p99_ms: f64,
    /// Persist fences issued (epoch batches + superblock updates).
    fences: u64,
}

impl ObsSummary {
    fn encode(&self) -> String {
        format!(
            "{{\"get_p50_us\": {}, \"get_p99_us\": {}, \"get_p999_us\": {}, \
             \"put_p50_us\": {}, \"put_p99_us\": {}, \"put_p999_us\": {}, \
             \"contended_gets\": {}, \"escalations\": {}, \"escalation_rate\": {}, \
             \"persister_cycles\": {}, \"persister_cycle_p99_ms\": {}, \"fences\": {}}}",
            self.get_p50_us,
            self.get_p99_us,
            self.get_p999_us,
            self.put_p50_us,
            self.put_p99_us,
            self.put_p999_us,
            self.contended_gets,
            self.escalations,
            self.escalation_rate,
            self.persister_cycles,
            self.persister_cycle_p99_ms,
            self.fences
        )
    }

    fn decode(node: &Value) -> Result<ObsSummary, String> {
        let float = |key: &str| {
            node.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("obs: missing or non-numeric field {key:?}"))
        };
        Ok(ObsSummary {
            get_p50_us: float("get_p50_us")?,
            get_p99_us: float("get_p99_us")?,
            get_p999_us: float("get_p999_us")?,
            put_p50_us: float("put_p50_us")?,
            put_p99_us: float("put_p99_us")?,
            put_p999_us: float("put_p999_us")?,
            contended_gets: node.field_u64("contended_gets")?,
            escalations: node.field_u64("escalations")?,
            escalation_rate: float("escalation_rate")?,
            persister_cycles: node.field_u64("persister_cycles")?,
            persister_cycle_p99_ms: float("persister_cycle_p99_ms")?,
            fences: node.field_u64("fences")?,
        })
    }
}

/// Builds the [`ObsSummary`] from a cell's final registry snapshot.
fn obs_summary(snap: &picl_obs::Snapshot) -> ObsSummary {
    // Merge one op's outcome label sets (hit/miss/contended, or
    // ok/escalated) into a single per-op sojourn distribution.
    let merged_op = |op: &str| {
        let mut h = Histogram::new();
        for e in &snap.entries {
            if e.name == "picl_serve_op_sojourn_ns"
                && e.labels.iter().any(|(k, v)| k == "op" && v == op)
            {
                if let SnapValue::Histogram(part) = &e.value {
                    h.merge(part);
                }
            }
        }
        h
    };
    let get = merged_op("get");
    let put = merged_op("put");
    let us = |h: &Histogram, p: f64| h.percentile_defined(p) / 1e3;
    let escalations = snap
        .counter("picl_serve_escalations_total", &[])
        .unwrap_or(0);
    let shard_ops = snap.counter_total("picl_serve_shard_ops_total");
    let cycles = snap.histogram("picl_store_persister_cycle_ns", &[]);
    ObsSummary {
        get_p50_us: us(&get, 50.0),
        get_p99_us: us(&get, 99.0),
        get_p999_us: us(&get, 99.9),
        put_p50_us: us(&put, 50.0),
        put_p99_us: us(&put, 99.0),
        put_p999_us: us(&put, 99.9),
        // Sojourn timers run on a 1-in-N sample; scale the sampled count
        // by the published rate so this estimates actual op counts.
        contended_gets: snap
            .histogram(
                "picl_serve_op_sojourn_ns",
                &[("op", "get"), ("outcome", "contended")],
            )
            .map_or(0, Histogram::count)
            .saturating_mul(
                snap.gauge("picl_serve_timing_sample_every", &[])
                    .unwrap_or(1)
                    .max(1),
            ),
        escalations,
        escalation_rate: escalations as f64 / shard_ops.max(1) as f64,
        persister_cycles: cycles.map_or(0, Histogram::count),
        persister_cycle_p99_ms: cycles.map_or(0.0, |h| h.percentile_defined(99.0) / 1e6),
        fences: snap.counter("picl_store_fences_total", &[]).unwrap_or(0),
    }
}

/// Per-session (tenant) slice of a cell's timed phase.
#[derive(Debug, Clone)]
struct TenantRow {
    session: usize,
    reads: u64,
    updates: u64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

impl TenantRow {
    fn encode(&self) -> String {
        format!(
            "{{\"session\": {}, \"reads\": {}, \"updates\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}",
            self.session, self.reads, self.updates, self.p50_us, self.p99_us, self.p999_us
        )
    }

    fn decode(node: &Value) -> Result<TenantRow, String> {
        let float = |key: &str| {
            node.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("tenant: missing or non-numeric field {key:?}"))
        };
        Ok(TenantRow {
            session: node
                .get("session")
                .and_then(Value::as_usize)
                .ok_or("tenant: missing or non-integer field \"session\"")?,
            reads: node.field_u64("reads")?,
            updates: node.field_u64("updates")?,
            p50_us: float("p50_us")?,
            p99_us: float("p99_us")?,
            p999_us: float("p999_us")?,
        })
    }
}

/// Tenant rows from a load report's per-session slices.
fn tenant_rows(report: &LoadReport) -> Vec<TenantRow> {
    report
        .per_session
        .iter()
        .enumerate()
        .map(|(session, s)| TenantRow {
            session,
            reads: s.reads,
            updates: s.updates,
            p50_us: s.latency_ns.percentile_defined(50.0) / 1e3,
            p99_us: s.latency_ns.percentile_defined(99.0) / 1e3,
            p999_us: s.latency_ns.percentile_defined(99.9) / 1e3,
        })
        .collect()
}

/// One measured YCSB cell.
#[derive(Debug, Clone)]
struct YcsbResult {
    label: String,
    backend: String,
    sessions: usize,
    ops: u64,
    reads: u64,
    updates: u64,
    preload_s: f64,
    /// Preload keys inserted per second (the untimed bulk-load phase has
    /// its own throughput now that it batches puts per epoch commit).
    preload_keys_per_s: f64,
    elapsed_s: f64,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    /// p99 of the group-commit leader's full commit cost in nanoseconds —
    /// boundary publish plus any in-order-window wait (0 for fsync).
    commit_stall_p99_ns: f64,
    /// Key-shard mutation locks the serving layer ran with (0 for fsync,
    /// which serializes on one table lock).
    shards: usize,
    audit_events: u64,
    audit_dropped: u64,
    audit_violations: u64,
    /// Operator metrics from the cell's registry (None for fsync).
    obs: Option<ObsSummary>,
    /// Per-session timed-phase breakdown.
    tenants: Vec<TenantRow>,
}

impl CellPayload for YcsbResult {
    fn encode(&self) -> String {
        let obs = self
            .obs
            .as_ref()
            .map_or_else(|| "null".to_owned(), ObsSummary::encode);
        let tenants = self
            .tenants
            .iter()
            .map(TenantRow::encode)
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"label\": \"{}\", \"backend\": \"{}\", \"sessions\": {}, \"ops\": {}, \
             \"reads\": {}, \"updates\": {}, \"preload_s\": {}, \
             \"preload_keys_per_s\": {}, \"elapsed_s\": {}, \
             \"throughput\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
             \"commit_stall_p99_ns\": {}, \"shards\": {}, \"audit_events\": {}, \
             \"audit_dropped\": {}, \"audit_violations\": {}, \
             \"obs\": {obs}, \"tenants\": [{tenants}]}}",
            json_escape(&self.label),
            json_escape(&self.backend),
            self.sessions,
            self.ops,
            self.reads,
            self.updates,
            self.preload_s,
            self.preload_keys_per_s,
            self.elapsed_s,
            self.throughput,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.commit_stall_p99_ns,
            self.shards,
            self.audit_events,
            self.audit_dropped,
            self.audit_violations
        )
    }

    fn decode(v: &Value) -> Result<YcsbResult, String> {
        let float = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
        };
        Ok(YcsbResult {
            label: v.field_str("label")?.to_owned(),
            backend: v.field_str("backend")?.to_owned(),
            sessions: v
                .get("sessions")
                .and_then(Value::as_usize)
                .ok_or("missing or non-integer field \"sessions\"")?,
            ops: v.field_u64("ops")?,
            reads: v.field_u64("reads")?,
            updates: v.field_u64("updates")?,
            preload_s: float("preload_s")?,
            preload_keys_per_s: float("preload_keys_per_s")?,
            elapsed_s: float("elapsed_s")?,
            throughput: float("throughput")?,
            p50_us: float("p50_us")?,
            p99_us: float("p99_us")?,
            p999_us: float("p999_us")?,
            commit_stall_p99_ns: float("commit_stall_p99_ns")?,
            shards: v
                .get("shards")
                .and_then(Value::as_usize)
                .ok_or("missing or non-integer field \"shards\"")?,
            audit_events: v.field_u64("audit_events")?,
            audit_dropped: v.field_u64("audit_dropped")?,
            audit_violations: v.field_u64("audit_violations")?,
            obs: match v.get("obs") {
                None | Some(Value::Null) => None,
                Some(node) => Some(ObsSummary::decode(node)?),
            },
            tenants: v
                .get("tenants")
                .and_then(Value::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(TenantRow::decode)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// One schedulable YCSB cell.
#[derive(Clone)]
struct YcsbCell {
    label: String,
    /// `picl` (epoch-logged engine) or `fsync` (per-mutation fdatasync).
    backend: &'static str,
    store_path: PathBuf,
    spec: LoadSpec,
    cfg: EngineConfig,
    ops_per_epoch: u64,
    /// Export prefix for this cell's telemetry, if requested.
    telemetry_prefix: Option<String>,
}

impl picl_campaign::CampaignCell for YcsbCell {
    type Payload = YcsbResult;

    fn spec_string(&self) -> String {
        format!(
            "ycsb {} {} s{} o{} k{} t{} m{} v{} seed{} {} e{} w{}",
            self.label,
            self.backend,
            self.spec.sessions,
            self.spec.ops_per_session,
            self.spec.keys,
            self.spec.theta,
            self.spec.mix.label(),
            self.spec.value_bytes,
            self.spec.seed,
            self.spec.arrival.label(),
            self.ops_per_epoch,
            self.cfg.window,
        )
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn execute(&self) -> YcsbResult {
        self.run().unwrap_or_else(|e| panic!("{}", e.0))
    }
}

fn percentiles_us(report: &LoadReport) -> (f64, f64, f64) {
    let at = |p: f64| report.latency_ns.percentile_interpolated(p).unwrap_or(0.0) / 1e3;
    (at(50.0), at(99.0), at(99.9))
}

impl YcsbCell {
    fn run(&self) -> Result<YcsbResult, ArgError> {
        let _ = std::fs::remove_file(&self.store_path);
        let result = match self.backend {
            "picl" => self.run_picl(),
            "fsync" => self.run_fsync(),
            other => Err(ArgError(format!("unknown backend {other:?}"))),
        };
        let _ = std::fs::remove_file(&self.store_path);
        result
    }

    fn run_picl(&self) -> Result<YcsbResult, ArgError> {
        // Size the event ring so a smoke-scale run audits without drops;
        // a big run may overflow it, which the report calls out via
        // audit_dropped (the auditor's verdict is then inconclusive, not
        // clean — violations are still violations either way).
        let total_ops = self.spec.keys + self.spec.ops_per_session * self.spec.sessions as u64;
        let ring = usize::try_from((total_ops * 10).next_power_of_two())
            .unwrap_or(1 << 22)
            .clamp(1 << 12, 1 << 22);
        let telemetry = Telemetry::new(0, ring);
        let geometry = Geometry {
            lines: self.cfg.lines,
            log_blocks: self.cfg.log_blocks,
        };
        let medium = FileMedium::open(&self.store_path, geometry.total_len())
            .map_err(|e| ArgError(format!("cannot open {}: {e}", self.store_path.display())))?;
        let (mut kv, _) = ServeKv::open(
            Arc::new(medium),
            self.cfg.clone(),
            telemetry.clone(),
            self.ops_per_epoch,
            self.spec.sessions,
        )
        .map_err(|e| ArgError(format!("open store: {e}")))?;
        // PiCL cells always run instrumented: the report's obs section is
        // part of the benchmark, and `picl obs overhead` gates the cost.
        let registry = picl_obs::MetricsRegistry::new();
        kv.enable_obs(&registry);

        // `preload` settles its own batched-epoch tail via `end_preload`,
        // so the timed phase starts from a clean epoch boundary.
        let preload_started = Instant::now();
        preload(&kv, &self.spec).map_err(|e| ArgError(format!("preload: {e}")))?;
        let preload_s = preload_started.elapsed().as_secs_f64();

        let report = run_load(&kv, &self.spec).map_err(|e| ArgError(format!("load: {e}")))?;
        kv.commit()
            .map_err(|e| ArgError(format!("final commit: {e}")))?;
        let stalls = kv.commit_stalls();
        let shards = kv.shard_count();
        kv.close().map_err(|e| ArgError(format!("close: {e}")))?;

        // Audit the event stream in-process: the benchmark only counts if
        // the protocol invariants held under concurrency.
        let snap = telemetry.snapshot();
        let jsonl = jsonl_to_string(&snap);
        let lines = picl_audit::parse_trace(&jsonl)
            .map_err(|e| ArgError(format!("exported stream unparsable: {e}")))?;
        let audit = picl_audit::audit_trace(
            &lines,
            picl_audit::AuditConfig {
                acs_gap: Some(self.cfg.window),
            },
        );
        if let Some(prefix) = &self.telemetry_prefix {
            crate::commands::export_telemetry(prefix, &snap)?;
        }

        let (p50_us, p99_us, p999_us) = percentiles_us(&report);
        Ok(YcsbResult {
            label: self.label.clone(),
            backend: self.backend.to_owned(),
            sessions: report.sessions,
            ops: report.ops,
            reads: report.reads,
            updates: report.updates,
            preload_s,
            preload_keys_per_s: self.spec.keys as f64 / preload_s.max(1e-9),
            elapsed_s: report.elapsed.as_secs_f64(),
            throughput: report.throughput(),
            p50_us,
            p99_us,
            p999_us,
            commit_stall_p99_ns: stalls.percentile_interpolated(99.0).unwrap_or(0.0),
            shards,
            audit_events: snap.events.len() as u64,
            audit_dropped: snap.dropped,
            audit_violations: audit.violations.len() as u64,
            // Snapshot after close so the persister's final drain cycles
            // and fence counts are included.
            obs: Some(obs_summary(&registry.snapshot())),
            tenants: tenant_rows(&report),
        })
    }

    fn run_fsync(&self) -> Result<YcsbResult, ArgError> {
        let lines = self.cfg.lines;
        let medium = FileMedium::open(&self.store_path, u64::from(lines) * 64)
            .map_err(|e| ArgError(format!("cannot open {}: {e}", self.store_path.display())))?;
        let kv = FsyncKv::open(Arc::new(medium), lines)
            .map_err(|e| ArgError(format!("open baseline: {e}")))?;
        let preload_started = Instant::now();
        preload(&kv, &self.spec).map_err(|e| ArgError(format!("preload: {e}")))?;
        let preload_s = preload_started.elapsed().as_secs_f64();
        let report = run_load(&kv, &self.spec).map_err(|e| ArgError(format!("load: {e}")))?;
        let (p50_us, p99_us, p999_us) = percentiles_us(&report);
        Ok(YcsbResult {
            label: self.label.clone(),
            backend: self.backend.to_owned(),
            sessions: report.sessions,
            ops: report.ops,
            reads: report.reads,
            updates: report.updates,
            preload_s,
            preload_keys_per_s: self.spec.keys as f64 / preload_s.max(1e-9),
            elapsed_s: report.elapsed.as_secs_f64(),
            throughput: report.throughput(),
            p50_us,
            p99_us,
            p999_us,
            commit_stall_p99_ns: 0.0,
            shards: 0,
            audit_events: 0,
            audit_dropped: 0,
            audit_violations: 0,
            obs: None,
            tenants: tenant_rows(&report),
        })
    }
}

/// Slots one record of `value_bytes` occupies (head + continuations).
pub(crate) fn slots_per_record(value_bytes: usize) -> u64 {
    1 + value_bytes
        .saturating_sub(picl_store::slots::HEAD_VALUE_BYTES)
        .div_ceil(picl_store::slots::CONT_VALUE_BYTES) as u64
}

/// Renders the `picl-serve-v1` document.
fn serve_report_json(spec: &LoadSpec, cells: &[YcsbResult], speedup: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"picl-serve-v1\",\n");
    out.push_str(&format!("  \"mix\": \"{}\",\n", spec.mix.label()));
    out.push_str(&format!(
        "  \"arrival\": \"{}\",\n",
        json_escape(&spec.arrival.label())
    ));
    out.push_str(&format!("  \"keys\": {},\n", spec.keys));
    out.push_str(&format!("  \"theta\": {},\n", spec.theta));
    out.push_str(&format!("  \"value_bytes\": {},\n", spec.value_bytes));
    out.push_str(&format!("  \"seed\": {},\n", spec.seed));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            cell.encode(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    // Top-level operator summary: the multi-session PiCL cell's registry
    // view, so dashboards don't have to dig through the cell array.
    let obs = cells
        .iter()
        .filter(|c| c.backend == "picl" && c.sessions > 1)
        .chain(cells.iter())
        .find_map(|c| c.obs.as_ref())
        .map_or_else(|| "null".to_owned(), ObsSummary::encode);
    out.push_str(&format!("  \"obs\": {obs},\n"));
    out.push_str(&format!("  \"speedup_multi_over_single\": {speedup:.3}\n"));
    out.push_str("}\n");
    out
}

/// `picl ycsb` — run the benchmark matrix and emit the report.
///
/// # Errors
///
/// Returns an [`ArgError`] on bad flags, harness failures, or any audit
/// violation in a PiCL cell.
pub fn cmd_ycsb(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "path",
        "sessions",
        "ops",
        "keys",
        "theta",
        "mix",
        "value-bytes",
        "seed",
        "arrival",
        "ops-per-epoch",
        "window",
        "lines",
        "log-blocks",
        "persist-stall-ms",
        "out",
        "baseline",
        "telemetry",
        "resume",
        "cell-timeout",
        "keep-going",
    ])?;
    let sessions = args.count_or("sessions", 4)? as usize;
    if sessions == 0 {
        return Err(ArgError("--sessions must be at least 1".into()));
    }
    let total_ops = args.count_or("ops", 20_000)?;
    let keys = args.count_or("keys", 100_000)?;
    let value_bytes = args.count_or("value-bytes", 100)? as usize;
    let spec = LoadSpec {
        sessions,
        ops_per_session: (total_ops / sessions as u64).max(1),
        keys,
        theta: args.float_or("theta", 0.9)?,
        // Default to the read-mostly mix: lookups are the concurrent,
        // lock-free path. Mix A is update-bound — every mutation pays the
        // serialized undo-before-writeback drain — so it measures the
        // engine against the fsync baseline, not session scaling.
        mix: MixPreset::parse(args.get_or("mix", "b")).map_err(ArgError)?,
        value_bytes,
        seed: args.count_or("seed", 1)?,
        arrival: Arrival::parse(args.get_or("arrival", "closed")).map_err(ArgError)?,
    };
    spec.validate()
        .map_err(|e| ArgError(format!("load spec: {e}")))?;
    // The multi and single cells run the same total op count.
    let cell_total = spec.ops_per_session * sessions as u64;

    // Auto-size the table: every key at its spanning footprint, at most
    // half full, unless the user pinned the geometry.
    let window = args.count_or("window", 4)?;
    let auto_lines =
        u32::try_from((keys * slots_per_record(value_bytes) * 2).max(1024)).map_err(|_| {
            ArgError("key space too large for a 32-bit line index; lower --keys".into())
        })?;
    let lines = args.count_or("lines", u64::from(auto_lines))? as u32;
    let cfg = EngineConfig {
        lines,
        log_blocks: args.count_or("log-blocks", u64::from(auto_log_blocks(lines, window)))? as u32,
        window,
        persist_stall_ms: args.count_or("persist-stall-ms", 0)?,
        sabotage_skip_drain: false,
    };
    cfg.validate()
        .map_err(|e| ArgError(format!("store geometry: {e}")))?;
    let ops_per_epoch = args.count_or("ops-per-epoch", 64)?;
    if ops_per_epoch == 0 {
        return Err(ArgError("--ops-per-epoch must be at least 1".into()));
    }

    let base = match args.get("path") {
        Some(p) => PathBuf::from(p),
        None => std::env::temp_dir().join(format!("picl-ycsb-{}", std::process::id())),
    };
    if let Some(dir) = base.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| ArgError(format!("cannot create {}: {e}", dir.display())))?;
        }
    }
    let telemetry_prefix = args.get("telemetry").map(str::to_owned);

    let mut cells = vec![
        YcsbCell {
            label: format!("picl x{sessions}"),
            backend: "picl",
            store_path: base.with_extension("multi.store"),
            spec: spec.clone(),
            cfg: cfg.clone(),
            ops_per_epoch,
            telemetry_prefix: telemetry_prefix.clone(),
        },
        YcsbCell {
            label: "picl x1".into(),
            backend: "picl",
            store_path: base.with_extension("single.store"),
            spec: LoadSpec {
                sessions: 1,
                ops_per_session: cell_total,
                ..spec.clone()
            },
            cfg: cfg.clone(),
            ops_per_epoch,
            telemetry_prefix: None,
        },
    ];
    if args.is_set("baseline") {
        cells.push(YcsbCell {
            label: format!("fsync x{sessions}"),
            backend: "fsync",
            store_path: base.with_extension("fsync.store"),
            spec: spec.clone(),
            cfg: cfg.clone(),
            ops_per_epoch,
            telemetry_prefix: None,
        });
    }

    // One worker: cells time wall-clock and spawn their own session
    // threads; the executor adds panic isolation and checkpoint/resume.
    let mut opts = campaign_options(args)?;
    opts.threads = 1;
    let run = run_cells(&cells, &opts).map_err(ArgError)?;
    if run.cached > 0 {
        println!("resumed {} cell(s) from the checkpoint store", run.cached);
    }
    let failures = run.failures();
    let results: Vec<YcsbResult> = run
        .outcomes
        .into_iter()
        .filter_map(picl_campaign::CellOutcome::into_payload)
        .collect();

    println!(
        "{:<12}{:>9}{:>12}{:>12}{:>11}{:>11}{:>12}{:>12}",
        "cell", "ops", "ops/s", "preload/s", "p50 us", "p99 us", "p99.9 us", "stall99 ms"
    );
    for r in &results {
        println!(
            "{:<12}{:>9}{:>12.0}{:>12.0}{:>11.1}{:>11.1}{:>12.1}{:>12.3}",
            r.label,
            r.ops,
            r.throughput,
            r.preload_keys_per_s,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.commit_stall_p99_ns / 1e6
        );
    }
    if !failures.is_empty() {
        let lines: Vec<String> = failures
            .iter()
            .map(|(i, m)| format!("  {}: {m}", cells[*i].label))
            .collect();
        return Err(ArgError(format!(
            "{} ycsb cell(s) produced no measurement:\n{}",
            failures.len(),
            lines.join("\n")
        )));
    }

    let multi = results
        .iter()
        .find(|r| r.backend == "picl" && r.sessions == sessions)
        .ok_or_else(|| ArgError("multi-session cell missing from results".into()))?;
    let single = results
        .iter()
        .find(|r| r.backend == "picl" && r.sessions == 1)
        .ok_or_else(|| ArgError("single-session cell missing from results".into()))?;
    let speedup = multi.throughput / single.throughput.max(1e-9);
    println!(
        "{} sessions vs 1: {speedup:.2}x aggregate throughput ({} audit events, \
         {} dropped, {} violations)",
        sessions, multi.audit_events, multi.audit_dropped, multi.audit_violations
    );
    if !multi.tenants.is_empty() {
        println!("per-tenant breakdown ({}):", multi.label);
        println!(
            "{:<10}{:>9}{:>9}{:>11}{:>11}{:>12}",
            "session", "reads", "updates", "p50 us", "p99 us", "p99.9 us"
        );
        for t in &multi.tenants {
            println!(
                "{:<10}{:>9}{:>9}{:>11.1}{:>11.1}{:>12.1}",
                t.session, t.reads, t.updates, t.p50_us, t.p99_us, t.p999_us
            );
        }
    }
    if let Some(o) = &multi.obs {
        println!(
            "obs: get p99 {:.1} us, put p99 {:.1} us, {} escalations \
             ({:.4} per shard op), {} persister cycles (p99 {:.3} ms), {} fences",
            o.get_p99_us,
            o.put_p99_us,
            o.escalations,
            o.escalation_rate,
            o.persister_cycles,
            o.persister_cycle_p99_ms,
            o.fences
        );
    }

    let json = serve_report_json(&spec, &results, speedup);
    validate_json(&json).map_err(|e| ArgError(format!("emitted JSON invalid: {e}")))?;
    let out_path = args.get_or("out", "BENCH_10.json");
    std::fs::write(out_path, &json)
        .map_err(|e| ArgError(format!("cannot write {out_path}: {e}")))?;
    println!("wrote {out_path} ({} cells)", results.len());

    let violations: u64 = results.iter().map(|r| r.audit_violations).sum();
    if violations > 0 {
        return Err(ArgError(format!(
            "{violations} protocol-invariant violation(s) in the serving event stream"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("picl-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn parse(raw: &[&str]) -> Args {
        Args::parse(raw.iter().copied()).unwrap()
    }

    #[test]
    fn serve_run_round_trips_and_recovers() {
        let path = temp_path("serve-run.store");
        let p = path.display().to_string();
        cmd_serve(&parse(&[
            "serve",
            "run",
            "--path",
            &p,
            "--seed",
            "9",
            "--sessions",
            "3",
            "--ops-per-session",
            "60",
            "--ops-per-epoch",
            "5",
        ]))
        .unwrap();
        // Reopening the same file recovers and serves again.
        cmd_serve(&parse(&[
            "serve",
            "run",
            "--path",
            &p,
            "--seed",
            "10",
            "--sessions",
            "2",
            "--ops-per-session",
            "20",
            "--ops-per-epoch",
            "5",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_rejects_unknown_subcommand() {
        assert!(cmd_serve(&parse(&["serve", "frobnicate"])).is_err());
        cmd_serve(&parse(&["serve", "help"])).unwrap();
        cmd_serve(&parse(&["serve"])).unwrap();
    }

    #[test]
    fn ycsb_smoke_produces_valid_report() {
        let store = temp_path("ycsb-smoke");
        let out = temp_path("ycsb-smoke.json");
        let out_s = out.display().to_string();
        cmd_ycsb(&parse(&[
            "ycsb",
            "--path",
            &store.display().to_string(),
            "--sessions",
            "4",
            "--ops",
            "1200",
            "--keys",
            "800",
            "--value-bytes",
            "72",
            "--mix",
            "a",
            "--out",
            &out_s,
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"schema\": \"picl-serve-v1\""), "{json}");
        assert!(json.contains("\"speedup_multi_over_single\""), "{json}");
        assert!(json.contains("\"audit_violations\": 0"), "{json}");
        assert!(json.contains("\"commit_stall_p99_ns\""), "{json}");
        assert!(json.contains("\"shards\": 16"), "{json}");
        assert!(json.contains("picl x4"), "{json}");
        assert!(json.contains("picl x1"), "{json}");

        // Schema check for the obs/tenants sections: every PiCL cell
        // carries an operator summary and one tenant row per session, and
        // the whole document round-trips through the campaign decoder.
        let doc = Value::parse(&json).unwrap();
        let top_obs = doc.get("obs").unwrap();
        for key in [
            "get_p50_us",
            "get_p99_us",
            "get_p999_us",
            "put_p50_us",
            "put_p99_us",
            "put_p999_us",
            "escalation_rate",
            "persister_cycle_p99_ms",
        ] {
            assert!(
                top_obs.get(key).and_then(Value::as_f64).is_some(),
                "missing obs field {key}: {json}"
            );
        }
        assert!(top_obs.field_u64("persister_cycles").unwrap() > 0, "{json}");
        assert!(top_obs.field_u64("fences").unwrap() > 0, "{json}");
        let cells = doc.get("cells").and_then(Value::as_arr).unwrap();
        assert_eq!(cells.len(), 2);
        for cell in cells {
            let decoded = YcsbResult::decode(cell).unwrap();
            assert!(decoded.obs.is_some(), "{json}");
            assert_eq!(decoded.tenants.len(), decoded.sessions, "{json}");
            let tenant_ops: u64 = decoded.tenants.iter().map(|t| t.reads + t.updates).sum();
            assert_eq!(tenant_ops, decoded.ops, "{json}");
        }
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn ycsb_rejects_bad_mix_and_arrival() {
        assert!(cmd_ycsb(&parse(&["ycsb", "--mix", "z"])).is_err());
        assert!(cmd_ycsb(&parse(&["ycsb", "--arrival", "warp"])).is_err());
        assert!(cmd_ycsb(&parse(&["ycsb", "--sessions", "0"])).is_err());
    }

    #[test]
    fn geometry_autosizing_stays_valid() {
        for (lines, window) in [(1024u32, 1u64), (1024, 8), (65_536, 4), (23, 1)] {
            let cfg = EngineConfig {
                lines,
                log_blocks: auto_log_blocks(lines, window),
                window,
                persist_stall_ms: 0,
                sabotage_skip_drain: false,
            };
            cfg.validate().unwrap();
        }
        assert_eq!(slots_per_record(8), 1);
        assert_eq!(slots_per_record(16), 1);
        assert_eq!(slots_per_record(17), 2);
        assert_eq!(slots_per_record(100), 3);
        assert_eq!(slots_per_record(255), 5);
    }
}
