//! Minimal dependency-free argument parsing for the `picl` CLI.
//!
//! Grammar: `picl <command> [<subcommand>] [--flag value]...`. One bare
//! word may follow the command (`picl store run`); whether it is accepted
//! is the command's decision. Flags accept both `--flag value` and
//! `--flag=value`. Numbers accept `k`/`m`/`g` suffixes
//! (`--instructions 60m`).

use std::collections::BTreeMap;

/// Flags that take no value; writing `--quick` records `quick=true`
/// (the `--quick=false` form still works).
const BOOLEAN_FLAGS: &[&str] = &["quick", "keep-going", "progress", "baseline"];

/// A parsed command line: the command, an optional subcommand, and flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    command: String,
    subcommand: Option<String>,
    flags: BTreeMap<String, String>,
}

/// A command-line parsing or validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if no command is given, a flag is malformed,
    /// or a flag is repeated.
    pub fn parse<I, S>(raw: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = raw.into_iter().map(Into::into).peekable();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing command; try `picl help`".into()))?;
        if command.starts_with('-') {
            return Err(ArgError(format!(
                "expected a command, found flag {command:?}"
            )));
        }
        let subcommand = match it.peek() {
            Some(tok) if !tok.starts_with('-') => it.next(),
            _ => None,
        };
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {tok:?}")));
            };
            let (key, value) = if let Some((k, v)) = name.split_once('=') {
                (k.to_owned(), v.to_owned())
            } else if BOOLEAN_FLAGS.contains(&name) {
                (name.to_owned(), "true".to_owned())
            } else {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError(format!("flag --{name} needs a value")))?;
                (name.to_owned(), v)
            };
            if flags.insert(key.clone(), value).is_some() {
                return Err(ArgError(format!("flag --{key} given twice")));
            }
        }
        Ok(Args {
            command,
            subcommand,
            flags,
        })
    }

    /// The command name.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// The bare word following the command, if any (`picl store run`).
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// Rejects a stray subcommand for commands that take none.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the unexpected positional argument.
    pub fn expect_no_subcommand(&self) -> Result<(), ArgError> {
        match &self.subcommand {
            None => Ok(()),
            Some(word) => Err(ArgError(format!(
                "unexpected positional argument {word:?} after `{}`",
                self.command
            ))),
        }
    }

    /// A string flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A string flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// A count flag with `k`/`m`/`g` suffix support and a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if the value does not parse.
    pub fn count_or(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => parse_count(s)
                .ok_or_else(|| ArgError(format!("--{name}: cannot parse {s:?} as a count"))),
        }
    }

    /// A float flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if the value does not parse.
    pub fn float_or(&self, name: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {s:?} as a number"))),
        }
    }

    /// Whether a boolean flag is set (`--quick` or `--quick=true`).
    pub fn is_set(&self, name: &str) -> bool {
        matches!(self.get(name), Some("true" | "1" | "yes"))
    }

    /// Rejects unknown flags so typos fail loudly.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the first unrecognized flag.
    pub fn expect_only(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !known.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{key}; valid flags: {}",
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Parses `"60m"`, `"4k"`, `"2g"`, or a bare integer.
pub fn parse_count(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1_000),
        'm' | 'M' => (&s[..s.len() - 1], 1_000_000),
        'g' | 'G' => (&s[..s.len() - 1], 1_000_000_000),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok().map(|n| n * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(["run", "--bench", "mcf", "--instructions=60m"]).unwrap();
        assert_eq!(a.command(), "run");
        assert_eq!(a.get("bench"), Some("mcf"));
        assert_eq!(a.count_or("instructions", 0).unwrap(), 60_000_000);
        assert_eq!(a.get_or("scheme", "picl"), "picl");
    }

    #[test]
    fn count_suffixes() {
        assert_eq!(parse_count("42"), Some(42));
        assert_eq!(parse_count("3k"), Some(3_000));
        assert_eq!(parse_count("30M"), Some(30_000_000));
        assert_eq!(parse_count("2g"), Some(2_000_000_000));
        assert_eq!(parse_count("x"), None);
        assert_eq!(parse_count(""), None);
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(Args::parse(Vec::<String>::new()).is_err());
        assert!(Args::parse(["--bench", "mcf"]).is_err());
    }

    #[test]
    fn malformed_flags_are_errors() {
        assert!(
            Args::parse(["run", "--bench", "mcf", "extra"]).is_err(),
            "positional after flags"
        );
        assert!(Args::parse(["run", "--bench"]).is_err(), "missing value");
        assert!(
            Args::parse(["run", "--a", "1", "--a", "2"]).is_err(),
            "duplicate"
        );
    }

    #[test]
    fn one_subcommand_is_absorbed() {
        let a = Args::parse(["store", "run", "--seed", "7"]).unwrap();
        assert_eq!(a.command(), "store");
        assert_eq!(a.subcommand(), Some("run"));
        assert_eq!(a.get("seed"), Some("7"));
        assert!(a.expect_no_subcommand().is_err());

        let plain = Args::parse(["run", "--bench", "mcf"]).unwrap();
        assert_eq!(plain.subcommand(), None);
        assert!(plain.expect_no_subcommand().is_ok());
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = Args::parse(["run", "--bogus", "1"]).unwrap();
        let err = a.expect_only(&["bench", "scheme"]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
        let ok = Args::parse(["run", "--bench", "mcf"]).unwrap();
        assert!(ok.expect_only(&["bench"]).is_ok());
    }

    #[test]
    fn boolean_flags_need_no_value() {
        let a = Args::parse(["bench", "--quick", "--out", "f.json"]).unwrap();
        assert!(a.is_set("quick"));
        assert_eq!(a.get("out"), Some("f.json"));
        let b = Args::parse(["bench", "--quick=false"]).unwrap();
        assert!(!b.is_set("quick"));
        assert!(!Args::parse(["bench"]).unwrap().is_set("quick"));
    }

    #[test]
    fn float_flags() {
        let a = Args::parse(["run", "--scale", "0.25"]).unwrap();
        assert_eq!(a.float_or("scale", 1.0).unwrap(), 0.25);
        assert_eq!(a.float_or("other", 2.0).unwrap(), 2.0);
        let bad = Args::parse(["run", "--scale", "abc"]).unwrap();
        assert!(bad.float_or("scale", 1.0).is_err());
    }
}
