//! `picl store` — drive the executable PiCL storage engine.
//!
//! Subcommands:
//!
//! - `run` — execute a workload (seeded or from a file) against a store
//!   file, printing epoch/RPO statistics; `--progress` streams flushed
//!   `commit <eid>` lines for the kill -9 harness.
//! - `dump` — print a store file's superblock and live undo log.
//! - `verify` — recover a store file and judge it against the seeded
//!   model oracle (nonzero exit on any inconsistency).
//! - `torture` — spawn N seeded `kill -9` children and require every one
//!   to recover within the one-epoch RPO bound.
//! - `simdiff` — run one workload through both the store and the
//!   simulator and diff epoch-level undo outcomes.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use picl_crashlab::{run_process_campaign, run_store_diff, StoreDiffSpec};
use picl_store::layout::{decode_log_block, Geometry, Superblock, LOG_BLOCK_BYTES, SB_BYTES};
use picl_store::{
    apply_to_store, generate, parse_workload, EngineConfig, FileMedium, Kv, LatencyMedium,
    PersistOps,
};
use picl_telemetry::Telemetry;

use crate::args::{ArgError, Args};

/// Usage text for `picl store help`.
const STORE_USAGE: &str = "\
usage: picl store <run|dump|verify|torture|simdiff|help> [--flag value]...

run flags:
  --path FILE           store file (required; created if absent)
  --seed N              seeded workload (default 1; ignored with --workload)
  --ops N               operations to run (default 200)
  --ops-per-epoch N     epoch granularity in operations (default 8)
  --key-space N         distinct keys in the seeded workload (default 16)
  --window N            in-order persist window = RPO bound (default 1)
  --lines N             data capacity in 64B lines when creating (default 1024)
  --log-blocks N        undo log capacity in 4K blocks when creating (default 160)
  --persist-stall-ms N  persister mid-epoch stall, widens the mid-drain
                        crash window for torture (default 0)
  --workload FILE       run `put K V` / `del K` / `get K` lines instead of
                        the seeded workload
  --medium MODE         file | latency (latency injects Makalu-style NVM
                        delays: 340ns/persist, 500ns/fence; default file)
  --threads N           run the seeded workload on N concurrent sessions
                        over one shared store (default 1; not combinable
                        with --workload or --medium latency)
  --progress            stream flushed `commit <eid>` lines to stdout
  --telemetry PREFIX    export the engine's event stream (audit-ready)

dump flags:
  --path FILE           store file (required)

verify flags:
  --path FILE           store file (required)
  --seed N, --ops-per-epoch N, --key-space N, --window N
                        the workload contract to judge against
  --observed-commit N   last commit known reached (tightens the RPO check)

torture flags:
  --trials N            kill -9 trials, rotating the three crash classes
                        mid-epoch / boundary / mid-drain (default 51)
  --seed N              campaign seed (default 7)
  --dir DIR             scratch directory (default: the OS temp dir)

simdiff flags:
  --seed N, --ops N, --ops-per-epoch N, --key-space N
                        the workload both implementations execute
";

/// Dispatches `picl store <sub>`.
///
/// # Errors
///
/// Returns an [`ArgError`] for unknown subcommands, bad flags, I/O
/// failures, or failed verifications (torture mismatches, sim
/// divergence).
pub fn cmd_store(args: &Args) -> Result<(), ArgError> {
    match args.subcommand() {
        Some("run") => store_run(args),
        Some("dump") => store_dump(args),
        Some("verify") => store_verify(args),
        Some("torture") => store_torture(args),
        Some("simdiff") => store_simdiff(args),
        Some("help") | None => {
            println!("{STORE_USAGE}");
            Ok(())
        }
        Some(other) => Err(ArgError(format!(
            "unknown store subcommand {other:?}; try `picl store help`"
        ))),
    }
}

fn required_path(args: &Args) -> Result<PathBuf, ArgError> {
    args.get("path")
        .map(PathBuf::from)
        .ok_or_else(|| ArgError("--path is required".into()))
}

fn engine_config(args: &Args) -> Result<EngineConfig, ArgError> {
    let cfg = EngineConfig {
        lines: args.count_or("lines", 1024)? as u32,
        log_blocks: args.count_or("log-blocks", 160)? as u32,
        window: args.count_or("window", 1)?,
        persist_stall_ms: args.count_or("persist-stall-ms", 0)?,
        sabotage_skip_drain: false,
    };
    cfg.validate()
        .map_err(|e| ArgError(format!("store geometry: {e}")))?;
    Ok(cfg)
}

fn open_medium(
    path: &Path,
    cfg: &EngineConfig,
    mode: &str,
) -> Result<Arc<dyn PersistOps>, ArgError> {
    let geometry = Geometry {
        lines: cfg.lines,
        log_blocks: cfg.log_blocks,
    };
    let file = if path.exists() {
        FileMedium::open_existing(path)
    } else {
        FileMedium::open(path, geometry.total_len())
    }
    .map_err(|e| ArgError(format!("cannot open {}: {e}", path.display())))?;
    match mode {
        "file" => Ok(Arc::new(file)),
        // Makalu's emulate_latency_ns figures for PCM-class NVM.
        "latency" => Ok(Arc::new(LatencyMedium::new(file, 340, 500))),
        other => Err(ArgError(format!(
            "--medium must be file or latency, not {other:?}"
        ))),
    }
}

fn store_run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "path",
        "seed",
        "ops",
        "ops-per-epoch",
        "key-space",
        "window",
        "lines",
        "log-blocks",
        "persist-stall-ms",
        "workload",
        "medium",
        "threads",
        "progress",
        "telemetry",
    ])?;
    match args.count_or("threads", 1)? {
        0 => {
            return Err(ArgError(
                "--threads 0 makes no sense; need at least one session (default 1)".into(),
            ))
        }
        1 => {}
        n => {
            let threads = usize::try_from(n)
                .map_err(|_| ArgError(format!("--threads {n} is absurdly large")))?;
            return crate::serve::store_run_threads(args, threads);
        }
    }
    let path = required_path(args)?;
    let cfg = engine_config(args)?;
    let ops_per_epoch = args.count_or("ops-per-epoch", 8)?;
    let medium = open_medium(&path, &cfg, args.get_or("medium", "file"))?;
    let telemetry = match args.get("telemetry") {
        Some(_) => Telemetry::new(0, 1 << 18),
        None => Telemetry::off(),
    };
    let (mut kv, report) = Kv::open(medium, cfg.clone(), telemetry.clone(), ops_per_epoch)
        .map_err(|e| ArgError(format!("open store: {e}")))?;
    if report.recovered {
        println!(
            "recovered {} to epoch {} ({} undo entries replayed, {} lines restored, {:.3} ms)",
            path.display(),
            report.recovered_to,
            report.entries_applied,
            report.lines_restored,
            report.recovery_ns as f64 / 1e6
        );
    }

    let ops = match args.get("workload") {
        Some(file) => {
            let text = std::fs::read_to_string(file)
                .map_err(|e| ArgError(format!("cannot read {file}: {e}")))?;
            parse_workload(&text).map_err(ArgError)?
        }
        None => generate(
            args.count_or("seed", 1)?,
            args.count_or("ops", 200)?,
            args.count_or("key-space", 16)?,
        ),
    };

    let progress = args.is_set("progress");
    let mut stdout = std::io::stdout();
    for op in &ops {
        let before = kv.engine().frontiers().1;
        apply_to_store(&mut kv, op).map_err(|e| ArgError(format!("workload: {e}")))?;
        let after = kv.engine().frontiers().1;
        if progress && after != before {
            // One flushed line per commit: the kill -9 harness reads this
            // stream to schedule its signal.
            writeln!(stdout, "commit {after}")
                .and_then(|()| stdout.flush())
                .map_err(|e| ArgError(format!("stdout: {e}")))?;
        }
    }
    let (_, committed, persisted) = kv.engine().frontiers();
    let live = kv.scan().map_err(|e| ArgError(format!("scan: {e}")))?.len();
    let stats = kv
        .close()
        .map_err(|e| ArgError(format!("close store: {e}")))?;
    println!(
        "ran {} ops ({} live keys): {} epochs committed, {} persisted (RPO bound {} epoch[s]), \
         {} undo entries, {} drains ({} forced), {} log blocks, {} line writebacks, \
         {} bloom hits, {} window stalls",
        ops.len(),
        live,
        committed,
        persisted,
        cfg.window,
        stats.undo_entries,
        stats.drains,
        stats.forced_drains,
        stats.log_blocks_written,
        stats.line_writebacks,
        stats.bloom_hits,
        stats.window_stalls
    );
    if let Some(prefix) = args.get("telemetry") {
        crate::commands::export_telemetry(prefix, &telemetry.snapshot())?;
    }
    Ok(())
}

fn store_dump(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["path"])?;
    let path = required_path(args)?;
    let medium = FileMedium::open_existing(&path)
        .map_err(|e| ArgError(format!("cannot open {}: {e}", path.display())))?;
    let mut head = [0u8; SB_BYTES as usize];
    medium
        .read(0, &mut head)
        .map_err(|e| ArgError(format!("read superblock: {e}")))?;
    let sb = Superblock::decode(&head).map_err(|e| ArgError(format!("{}: {e}", path.display())))?;
    println!(
        "{}: {} lines x 64 B data, {} x 4 KB log blocks, generation {}, \
         persisted epoch {}, log window [{}, {})",
        path.display(),
        sb.geometry.lines,
        sb.geometry.log_blocks,
        sb.generation,
        sb.persisted_eid,
        sb.log_start_seq,
        sb.log_head_seq
    );
    let mut buf = vec![0u8; LOG_BLOCK_BYTES as usize];
    let mut blocks = 0u64;
    let mut entries = 0u64;
    let mut undoable = 0u64;
    for slot in 0..sb.geometry.log_blocks {
        medium
            .read(sb.geometry.log_slot_off(u64::from(slot)), &mut buf)
            .map_err(|e| ArgError(format!("read log slot {slot}: {e}")))?;
        let Some(block) = decode_log_block(&buf, sb.generation) else {
            continue;
        };
        if block.seq < sb.log_start_seq {
            continue;
        }
        blocks += 1;
        entries += block.entries.len() as u64;
        undoable += block
            .entries
            .iter()
            .filter(|e| e.covers(sb.persisted_eid))
            .count() as u64;
    }
    println!(
        "log: {blocks} live blocks, {entries} undo entries, {undoable} covering the \
         persist frontier (would replay on recovery)"
    );
    Ok(())
}

fn store_verify(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "path",
        "seed",
        "ops-per-epoch",
        "key-space",
        "window",
        "observed-commit",
    ])?;
    let path = required_path(args)?;
    let judgement = picl_crashlab::judge_recovery(
        &path,
        args.count_or("seed", 1)?,
        args.count_or("ops-per-epoch", 8)?,
        args.count_or("key-space", 16)?,
        args.count_or("window", 1)?,
        args.count_or("observed-commit", 0)?,
    )
    .map_err(ArgError)?;
    println!(
        "{}: recovered to epoch {} ({} undo entries replayed, {:.3} ms), \
         prefix-consistent: {}, RPO ok: {}",
        path.display(),
        judgement.recovered_to,
        judgement.entries_replayed,
        judgement.recovery_ns as f64 / 1e6,
        judgement.consistent,
        judgement.rpo_ok
    );
    if judgement.consistent && judgement.rpo_ok {
        Ok(())
    } else {
        Err(ArgError("store failed verification".into()))
    }
}

fn store_torture(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["trials", "seed", "dir"])?;
    let trials = args.count_or("trials", 51)?;
    if trials == 0 {
        return Err(ArgError("--trials must be at least 1".into()));
    }
    let binary = std::env::current_exe()
        .map_err(|e| ArgError(format!("cannot locate the picl binary: {e}")))?;
    let dir = match args.get("dir") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("picl-torture-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir)
        .map_err(|e| ArgError(format!("cannot create {}: {e}", dir.display())))?;
    let report =
        run_process_campaign(&binary, &dir, trials, args.count_or("seed", 7)?).map_err(ArgError)?;
    let mut by_class = [0u64; 3];
    let mut worst_lost = 0u64;
    let mut total_replayed = 0u64;
    let mut max_recovery_ns = 0u64;
    for o in &report.outcomes {
        by_class[match o.class {
            picl_crashlab::KillClass::MidEpoch => 0,
            picl_crashlab::KillClass::Boundary => 1,
            picl_crashlab::KillClass::MidDrain => 2,
        }] += 1;
        worst_lost = worst_lost.max(o.epochs_lost);
        total_replayed += o.entries_replayed;
        max_recovery_ns = max_recovery_ns.max(o.recovery_ns);
    }
    println!(
        "{} trials ({} mid-epoch, {} boundary, {} mid-drain), {} kill -9s delivered, \
         in {:.2} s",
        report.outcomes.len(),
        by_class[0],
        by_class[1],
        by_class[2],
        report.kills,
        report.elapsed.as_secs_f64()
    );
    println!(
        "oracle: {} inconsistent, {} RPO violations; worst epochs lost {worst_lost}, \
         {} undo entries replayed across all recoveries, slowest recovery {:.3} ms",
        report.inconsistent,
        report.rpo_violations,
        total_replayed,
        max_recovery_ns as f64 / 1e6
    );
    if report.passed() {
        println!("torture: PASS (every recovery prefix-consistent within the RPO bound)");
        Ok(())
    } else {
        Err(ArgError(format!(
            "torture: {} inconsistent recoveries, {} RPO violations",
            report.inconsistent, report.rpo_violations
        )))
    }
}

fn store_simdiff(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["seed", "ops", "ops-per-epoch", "key-space"])?;
    let spec = StoreDiffSpec {
        seed: args.count_or("seed", 1)?,
        ops: args.count_or("ops", 120)?,
        ops_per_epoch: args.count_or("ops-per-epoch", 8)?,
        key_space: args.count_or("key-space", 12)?,
    };
    if spec.ops_per_epoch == 0 || spec.ops < spec.ops_per_epoch {
        return Err(ArgError(
            "need --ops >= --ops-per-epoch >= 1 for at least one whole epoch".into(),
        ));
    }
    let report = run_store_diff(&spec);
    println!(
        "store committed {} epochs, simulator {}; compared {}",
        report.store_commits, report.sim_commits, report.epochs_compared
    );
    if report.matches() {
        println!("simdiff: MATCH (identical per-epoch undo-logged line sets)");
        Ok(())
    } else {
        for (epoch, store_only, sim_only) in &report.mismatches {
            println!("epoch {epoch}: store-only lines {store_only:?}, sim-only lines {sim_only:?}");
        }
        Err(ArgError(format!(
            "simdiff: {} epoch(s) diverged",
            report.mismatches.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("picl-cli-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn parse(raw: &[&str]) -> Args {
        Args::parse(raw.iter().copied()).unwrap()
    }

    #[test]
    fn run_rejects_zero_threads_and_serves_on_many() {
        let path = temp_store("threads.store");
        let p = path.display().to_string();
        let err = cmd_store(&parse(&["store", "run", "--path", &p, "--threads", "0"])).unwrap_err();
        assert!(err.to_string().contains("--threads 0"), "{err}");
        // --workload is a single scripted stream; it cannot shard.
        assert!(cmd_store(&parse(&[
            "store",
            "run",
            "--path",
            &p,
            "--threads",
            "2",
            "--workload",
            "w.txt",
        ]))
        .is_err());
        cmd_store(&parse(&[
            "store",
            "run",
            "--path",
            &p,
            "--threads",
            "3",
            "--ops",
            "90",
            "--ops-per-epoch",
            "6",
        ]))
        .unwrap();
        // The store file a threaded run leaves behind reopens cleanly.
        cmd_store(&parse(&["store", "dump", "--path", &p])).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_then_verify_then_dump_round_trip() {
        let path = temp_store("roundtrip.store");
        let p = path.display().to_string();
        cmd_store(&parse(&[
            "store",
            "run",
            "--path",
            &p,
            "--seed",
            "3",
            "--ops",
            "64",
            "--ops-per-epoch",
            "4",
        ]))
        .unwrap();
        cmd_store(&parse(&[
            "store",
            "verify",
            "--path",
            &p,
            "--seed",
            "3",
            "--ops-per-epoch",
            "4",
            "--observed-commit",
            "16",
        ]))
        .unwrap();
        cmd_store(&parse(&["store", "dump", "--path", &p])).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn verify_flags_a_wrong_seed() {
        let path = temp_store("wrongseed.store");
        let p = path.display().to_string();
        cmd_store(&parse(&[
            "store",
            "run",
            "--path",
            &p,
            "--seed",
            "3",
            "--ops",
            "64",
            "--ops-per-epoch",
            "4",
        ]))
        .unwrap();
        let err = cmd_store(&parse(&[
            "store",
            "verify",
            "--path",
            &p,
            "--seed",
            "4",
            "--ops-per-epoch",
            "4",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("failed verification"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn workload_file_mode_runs() {
        let path = temp_store("file.store");
        let dir = path.parent().unwrap();
        let wl = dir.join("demo.workload");
        std::fs::write(&wl, "put a 1\nput b 2\nget a\ndel a\n").unwrap();
        cmd_store(&parse(&[
            "store",
            "run",
            "--path",
            &path.display().to_string(),
            "--workload",
            &wl.display().to_string(),
            "--ops-per-epoch",
            "2",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wl);
    }

    #[test]
    fn simdiff_subcommand_matches() {
        cmd_store(&parse(&[
            "store",
            "simdiff",
            "--seed",
            "5",
            "--ops",
            "48",
            "--ops-per-epoch",
            "6",
        ]))
        .unwrap();
    }

    #[test]
    fn unknown_subcommand_and_missing_path_error() {
        assert!(cmd_store(&parse(&["store", "frobnicate"])).is_err());
        assert!(cmd_store(&parse(&["store", "dump"])).is_err());
        cmd_store(&parse(&["store", "help"])).unwrap();
        cmd_store(&parse(&["store"])).unwrap();
    }

    #[test]
    fn latency_medium_mode_runs() {
        let path = temp_store("latency.store");
        cmd_store(&parse(&[
            "store",
            "run",
            "--path",
            &path.display().to_string(),
            "--ops",
            "24",
            "--ops-per-epoch",
            "4",
            "--medium",
            "latency",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
