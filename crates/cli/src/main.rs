//! `picl` — command-line frontend for the PiCL reproduction.
//!
//! ```text
//! picl run        --bench mcf [--scheme picl] [--instructions 10m] [--epoch 3m] ...
//! picl compare    --bench mcf [--instructions 9m] [--epoch 3m] ...
//! picl crash      --bench gcc [--scheme picl] [--at 500k] ...
//! picl sweep      --param acs-gap --values 0,1,3,7 [--bench gcc] ...
//! picl record     --bench lbm --out trace.picltrc [--events 100k]
//! picl replay     --trace trace.picltrc [--scheme picl] ...
//! picl store      run|dump|verify|torture|simdiff [--path store.nvm] ...
//! picl serve      run|torture [--sessions 4] [--path store.nvm] ...
//! picl ycsb       [--sessions 4] [--ops 20k] [--keys 100k] [--mix a] ...
//! picl obs        scrape|check|print|diff|overhead [--addr HOST:PORT] ...
//! picl benchmarks
//! picl help
//! ```

mod args;
mod bench;
mod commands;
mod obs;
mod serve;
mod store;

use std::process::ExitCode;

use args::Args;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::dispatch(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
