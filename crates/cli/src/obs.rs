//! `picl obs` — operator tooling over the `picl-obs` metrics layer.
//!
//! Subcommands:
//!
//! - `scrape` — pull one Prometheus text exposition from a live
//!   `picl serve run --metrics-addr` endpoint and validate its format.
//! - `check` — validate a flight-recorder JSONL file (every complete
//!   line parses, the schema tag is present, `seq` is strictly
//!   increasing; a torn final line is tolerated and reported).
//! - `print` — pretty-print one flight snapshot: counters, gauges, and
//!   histogram percentiles.
//! - `diff` — what changed between two flight snapshots: counter
//!   deltas, gauge movement, histogram growth.
//! - `overhead` — A/B the serving stack with metrics off vs on (same
//!   seeded load, alternating paired rounds) and fail if the
//!   instrumented side spends more than `--budget-pct` extra
//!   session-thread CPU, with a sign-test guard so a single weather
//!   burst on a shared runner cannot fail the gate. CI runs this as
//!   the observability cost gate.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use picl_campaign::json::Value;
use picl_obs::MetricsRegistry;
use picl_serve::{preload, run_load, Arrival, LoadSpec, MixPreset, ServeKv};
use picl_store::{EngineConfig, FileMedium, Geometry};
use picl_telemetry::Telemetry;
use picl_types::stats::Histogram;

use crate::args::{ArgError, Args};

/// Usage text for `picl obs help`.
const OBS_USAGE: &str = "\
usage: picl obs <scrape|check|print|diff|overhead|help> [--flag value]...

scrape flags:
  --addr HOST:PORT      metrics endpoint to pull (required)
  --timeout-ms N        connect/read timeout (default 5000)
  --out FILE            write the exposition body to FILE instead of stdout

check / print / diff flags:
  --file F              flight-recorder JSONL file (required)
  --seq N               (print) snapshot to show (default: the last one)
  --from N / --to N     (diff) snapshot range (default: first to last)

overhead flags:
  --ops N               timed operations per pass (default 40k)
  --keys N              key-space size (default 2k)
  --sessions N          concurrent sessions (default 4)
  --value-bytes N       value size (default 100)
  --mix a|b|c           YCSB mix (default a, the update-heavy one)
  --seed N              load seed (default 1)
  --rounds N            paired off/on passes, order alternating (default 7)
  --budget-pct F        max tolerated extra session cpu (default 2.0)
  --ops-per-epoch N     epoch size during timed passes (default 512)
  --path FILE           store-file base path (default: under the temp dir)
";

/// Dispatches `picl obs <sub>`.
///
/// # Errors
///
/// Returns an [`ArgError`] for unknown subcommands, bad flags, scrape or
/// parse failures, and an overhead measurement above budget.
pub fn cmd_obs(args: &Args) -> Result<(), ArgError> {
    match args.subcommand() {
        Some("scrape") => obs_scrape(args),
        Some("check") => obs_check(args),
        Some("print") => obs_print(args),
        Some("diff") => obs_diff(args),
        Some("overhead") => obs_overhead(args),
        Some("help") | None => {
            println!("{OBS_USAGE}");
            Ok(())
        }
        Some(other) => Err(ArgError(format!(
            "unknown obs subcommand {other:?}; try `picl obs help`"
        ))),
    }
}

fn required<'a>(args: &'a Args, name: &str) -> Result<&'a str, ArgError> {
    args.get(name)
        .ok_or_else(|| ArgError(format!("--{name} is required")))
}

fn obs_scrape(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["addr", "timeout-ms", "out"])?;
    let addr = required(args, "addr")?;
    let timeout = Duration::from_millis(args.count_or("timeout-ms", 5000)?);
    let body =
        picl_obs::scrape(addr, timeout).map_err(|e| ArgError(format!("scrape {addr}: {e}")))?;
    let summary = picl_obs::validate_exposition(&body)
        .map_err(|e| ArgError(format!("invalid exposition from {addr}: {e}")))?;
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &body)
                .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        }
        None => print!("{body}"),
    }
    // The summary goes to stderr so a piped stdout stays a pure payload.
    eprintln!(
        "scraped {addr}: {} samples, {} histogram series; exposition valid",
        summary.samples, summary.histograms
    );
    Ok(())
}

fn obs_check(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["file"])?;
    let file = required(args, "file")?;
    let text =
        std::fs::read_to_string(file).map_err(|e| ArgError(format!("cannot read {file}: {e}")))?;
    let s = picl_obs::validate_flight_log(&text).map_err(|e| ArgError(format!("{file}: {e}")))?;
    println!(
        "{file}: {} snapshot line(s), last seq {}, torn tail: {}",
        s.lines,
        s.last_seq,
        if s.torn_tail { "yes (tolerated)" } else { "no" }
    );
    Ok(())
}

/// One decoded flight-recorder snapshot line.
struct FlightLine {
    seq: u64,
    uptime_ms: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Object fields of `node`, or an empty slice for `null`/absent.
fn obj_fields<'a>(node: Option<&'a Value>, what: &str) -> Result<&'a [(String, Value)], ArgError> {
    match node {
        None | Some(Value::Null) => Ok(&[]),
        Some(Value::Obj(fields)) => Ok(fields),
        Some(_) => Err(ArgError(format!("flight line: {what} is not an object"))),
    }
}

fn decode_histogram(node: &Value, key: &str) -> Result<Histogram, ArgError> {
    let u = |k: &str| {
        node.get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| ArgError(format!("histogram {key:?}: missing field {k:?}")))
    };
    let mut buckets = Vec::new();
    for pair in node
        .get("buckets")
        .and_then(Value::as_arr)
        .ok_or_else(|| ArgError(format!("histogram {key:?}: missing buckets array")))?
    {
        match pair.as_arr() {
            Some([bound, n]) => buckets.push((
                bound
                    .as_u64()
                    .ok_or_else(|| ArgError(format!("histogram {key:?}: non-integer bound")))?,
                n.as_u64()
                    .ok_or_else(|| ArgError(format!("histogram {key:?}: non-integer count")))?,
            )),
            _ => {
                return Err(ArgError(format!(
                    "histogram {key:?}: malformed bucket pair"
                )))
            }
        }
    }
    Histogram::from_saved(buckets, u("count")?, u("sum")?, u("max")?)
        .map_err(|e| ArgError(format!("histogram {key:?}: {e}")))
}

/// Parses every *complete* line of a flight log (the torn tail, if any,
/// is dropped — `picl obs check` reports it).
fn parse_flight(file: &str) -> Result<Vec<FlightLine>, ArgError> {
    let text =
        std::fs::read_to_string(file).map_err(|e| ArgError(format!("cannot read {file}: {e}")))?;
    picl_obs::validate_flight_log(&text).map_err(|e| ArgError(format!("{file}: {e}")))?;
    let mut segments: Vec<&str> = text.split('\n').collect();
    segments.pop(); // "" after a clean final newline, or the torn tail
    let mut out = Vec::new();
    for (i, line) in segments.iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| ArgError(format!("{file} line {}: {e}", i + 1)))?;
        let mut counters = BTreeMap::new();
        for (k, val) in obj_fields(v.get("counters"), "counters")? {
            counters.insert(
                k.clone(),
                val.as_u64()
                    .ok_or_else(|| ArgError(format!("counter {k:?}: non-integer value")))?,
            );
        }
        let mut gauges = BTreeMap::new();
        for (k, val) in obj_fields(v.get("gauges"), "gauges")? {
            gauges.insert(
                k.clone(),
                val.as_u64()
                    .ok_or_else(|| ArgError(format!("gauge {k:?}: non-integer value")))?,
            );
        }
        let mut histograms = BTreeMap::new();
        for (k, val) in obj_fields(v.get("histograms"), "histograms")? {
            histograms.insert(k.clone(), decode_histogram(val, k)?);
        }
        out.push(FlightLine {
            seq: v.field_u64("seq").map_err(ArgError)?,
            uptime_ms: v.field_u64("uptime_ms").map_err(ArgError)?,
            counters,
            gauges,
            histograms,
        });
    }
    if out.is_empty() {
        return Err(ArgError(format!("{file}: no complete snapshot lines")));
    }
    Ok(out)
}

fn find_seq(lines: &[FlightLine], seq: u64) -> Result<&FlightLine, ArgError> {
    lines
        .iter()
        .find(|l| l.seq == seq)
        .ok_or_else(|| ArgError(format!("no snapshot with seq {seq} in the flight log")))
}

fn obs_print(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["file", "seq"])?;
    let file = required(args, "file")?;
    let lines = parse_flight(file)?;
    let snap = match args.get("seq") {
        Some(_) => find_seq(&lines, args.count_or("seq", 0)?)?,
        None => lines.last().expect("parse_flight returned non-empty"),
    };
    println!(
        "snapshot seq {} (uptime {} ms, {} of {} in {file})",
        snap.seq,
        snap.uptime_ms,
        lines.iter().position(|l| l.seq == snap.seq).unwrap_or(0) + 1,
        lines.len()
    );
    if !snap.counters.is_empty() {
        println!("counters:");
        for (k, v) in &snap.counters {
            println!("  {k:<58} {v:>12}");
        }
    }
    if !snap.gauges.is_empty() {
        println!("gauges:");
        for (k, v) in &snap.gauges {
            println!("  {k:<58} {v:>12}");
        }
    }
    if !snap.histograms.is_empty() {
        println!("histograms:");
        println!(
            "  {:<46}{:>10}{:>12}{:>12}{:>12}{:>12}",
            "series", "count", "p50", "p99", "p99.9", "max"
        );
        for (k, h) in &snap.histograms {
            println!(
                "  {:<46}{:>10}{:>12.0}{:>12.0}{:>12.0}{:>12}",
                k,
                h.count(),
                h.percentile_defined(50.0),
                h.percentile_defined(99.0),
                h.percentile_defined(99.9),
                h.max().unwrap_or(0)
            );
        }
    }
    Ok(())
}

fn obs_diff(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["file", "from", "to"])?;
    let file = required(args, "file")?;
    let lines = parse_flight(file)?;
    let first = lines.first().expect("parse_flight returned non-empty");
    let last = lines.last().expect("parse_flight returned non-empty");
    let from = match args.get("from") {
        Some(_) => find_seq(&lines, args.count_or("from", 0)?)?,
        None => first,
    };
    let to = match args.get("to") {
        Some(_) => find_seq(&lines, args.count_or("to", 0)?)?,
        None => last,
    };
    println!(
        "diff seq {} -> {} ({} ms of uptime apart)",
        from.seq,
        to.seq,
        to.uptime_ms.saturating_sub(from.uptime_ms)
    );
    let mut moved = 0usize;
    for (k, after) in &to.counters {
        let before = from.counters.get(k).copied().unwrap_or(0);
        if *after != before {
            println!("  {k:<58} {before:>12} -> {after} (+{})", after - before);
            moved += 1;
        }
    }
    for (k, after) in &to.gauges {
        let before = from.gauges.get(k).copied().unwrap_or(0);
        if *after != before {
            println!("  {k:<58} {before:>12} -> {after}");
            moved += 1;
        }
    }
    for (k, after) in &to.histograms {
        let before = from.histograms.get(k).map_or(0, Histogram::count);
        if after.count() != before {
            println!(
                "  {:<58} {:>12} -> {} samples (+{}, p99 now {:.0})",
                k,
                before,
                after.count(),
                after.count() - before,
                after.percentile_defined(99.0)
            );
            moved += 1;
        }
    }
    println!("{moved} series moved");
    Ok(())
}

/// One off/on measurement pass: a fresh store, a seeded preload, and the
/// timed closed-loop phase. Returns `(ops/s, session cpu ns)` — the CPU
/// figure is the session threads' scheduler-accounted runtime during the
/// load ([`LoadReport::cpu_ns`]), which is where every per-op instrument
/// under test runs.
fn overhead_pass(
    path: &Path,
    spec: &LoadSpec,
    cfg: &EngineConfig,
    ops_per_epoch: u64,
    with_obs: bool,
) -> Result<(f64, u64), ArgError> {
    let _ = std::fs::remove_file(path);
    let geometry = Geometry {
        lines: cfg.lines,
        log_blocks: cfg.log_blocks,
    };
    let medium = FileMedium::open(path, geometry.total_len())
        .map_err(|e| ArgError(format!("cannot open {}: {e}", path.display())))?;
    let (mut kv, _) = ServeKv::open(
        Arc::new(medium),
        cfg.clone(),
        Telemetry::off(),
        ops_per_epoch,
        spec.sessions,
    )
    .map_err(|e| ArgError(format!("open store: {e}")))?;
    let registry = with_obs.then(MetricsRegistry::new);
    if let Some(reg) = &registry {
        kv.enable_obs(reg);
    }
    preload(&kv, spec).map_err(|e| ArgError(format!("preload: {e}")))?;
    let report = run_load(&kv, spec).map_err(|e| ArgError(format!("load: {e}")))?;
    kv.commit()
        .map_err(|e| ArgError(format!("final commit: {e}")))?;
    kv.close().map_err(|e| ArgError(format!("close: {e}")))?;
    let _ = std::fs::remove_file(path);
    Ok((report.throughput(), report.cpu_ns()))
}

fn obs_overhead(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "ops",
        "keys",
        "sessions",
        "value-bytes",
        "mix",
        "seed",
        "rounds",
        "budget-pct",
        "path",
        "ops-per-epoch",
    ])?;
    let sessions = args.count_or("sessions", 4)?.max(1) as usize;
    let total_ops = args.count_or("ops", 40_000)?;
    let keys = args.count_or("keys", 2_000)?;
    let value_bytes = args.count_or("value-bytes", 100)? as usize;
    let rounds = args.count_or("rounds", 7)?.max(1);
    let budget_pct = args.float_or("budget-pct", 2.0)?;
    let spec = LoadSpec {
        sessions,
        ops_per_session: (total_ops / sessions as u64).max(1),
        keys,
        theta: 0.9,
        mix: MixPreset::parse(args.get_or("mix", "a")).map_err(ArgError)?,
        value_bytes,
        seed: args.count_or("seed", 1)?,
        arrival: Arrival::Closed,
    };
    spec.validate()
        .map_err(|e| ArgError(format!("load spec: {e}")))?;
    let window = 4;
    let lines = u32::try_from((keys * crate::serve::slots_per_record(value_bytes) * 2).max(1024))
        .map_err(|_| ArgError("key space too large; lower --keys".into()))?;
    let cfg = EngineConfig {
        lines,
        log_blocks: crate::serve::auto_log_blocks(lines, window),
        window,
        persist_stall_ms: 0,
        sabotage_skip_drain: false,
    };
    cfg.validate()
        .map_err(|e| ArgError(format!("store geometry: {e}")))?;
    let path = match args.get("path") {
        Some(p) => PathBuf::from(p),
        None => {
            std::env::temp_dir().join(format!("picl-obs-overhead-{}.store", std::process::id()))
        }
    };

    // Big epochs keep the timed phase CPU-bound: commit fences are the
    // dominant *noise* source (shared-runner I/O latency swings them by
    // tens of percent), while the instrumentation under test is pure
    // CPU. Fewer fences = a quieter measurement that is also *more*
    // sensitive to the cost actually being gated.
    let ops_per_epoch = args.count_or("ops-per-epoch", 512)?.max(1);

    // Wall-clock throughput on a shared runner swings ±10% at sub-pass
    // timescales (CPU steal, co-tenants, fsync latency) — hopeless for
    // resolving a 2% budget. Session-thread CPU time is immune to all
    // of it: scheduler runtime charges neither run-queue waits nor
    // hypervisor steal, I/O waits burn no CPU, and the instrumentation
    // under test is pure CPU running in exactly those threads. Every
    // pass executes the same seeded op count, so comparing total CPU
    // *is* comparing CPU per op.
    let _ = overhead_pass(&path, &spec, &cfg, ops_per_epoch, false)?; // warm-up, discarded
    let mut offs: Vec<(f64, u64)> = Vec::with_capacity(rounds as usize);
    let mut ons: Vec<(f64, u64)> = Vec::with_capacity(rounds as usize);
    for round in 0..rounds {
        // Alternate which side goes first so slow drift cancels.
        let (off, on) = if round % 2 == 0 {
            let off = overhead_pass(&path, &spec, &cfg, ops_per_epoch, false)?;
            let on = overhead_pass(&path, &spec, &cfg, ops_per_epoch, true)?;
            (off, on)
        } else {
            let on = overhead_pass(&path, &spec, &cfg, ops_per_epoch, true)?;
            let off = overhead_pass(&path, &spec, &cfg, ops_per_epoch, false)?;
            (off, on)
        };
        println!(
            "round {}/{rounds}: metrics off {:.0} ops/s ({:.1} ms cpu), \
             on {:.0} ops/s ({:.1} ms cpu)",
            round + 1,
            off.0,
            off.1 as f64 / 1e6,
            on.0,
            on.1 as f64 / 1e6,
        );
        offs.push(off);
        ons.push(on);
    }
    let sum_off: u64 = offs.iter().map(|p| p.1).sum();
    let sum_on: u64 = ons.iter().map(|p| p.1).sum();
    // Below ~100ms of measured CPU, scheduler-accounting granularity
    // swamps a percent-level budget; fall back to wall-clock medians
    // there (the tiny-load test path, and any non-Linux host where the
    // CPU figure reads 0).
    const MIN_CPU_NS: u64 = 100_000_000;
    if sum_off >= MIN_CPU_NS {
        let overhead_pct = (sum_on as f64 - sum_off as f64) / sum_off as f64 * 100.0;
        let wins_on = offs
            .iter()
            .zip(&ons)
            .filter(|(off, on)| on.1 <= off.1)
            .count() as u64;
        println!(
            "total session cpu over {rounds} rounds: off {:.1} ms, on {:.1} ms \
             -> overhead {overhead_pct:.2}% (budget {budget_pct}%, \
             on cheaper in {wins_on}/{rounds} rounds)",
            sum_off as f64 / 1e6,
            sum_on as f64 / 1e6,
        );
        // Sign-test guard: a real regression above budget costs more CPU
        // in essentially every round, while cache-weather noise on a
        // shared single-CPU runner swings individual rounds by ±3-4%
        // either way. If the on side was cheaper in even one round, the
        // excess in the total came from a one-off burst (page-cache
        // miss, a co-tenant polluting the cache), not from the metrics.
        if overhead_pct > budget_pct && wins_on == 0 {
            return Err(ArgError(format!(
                "metrics cpu overhead {overhead_pct:.2}% exceeds the {budget_pct}% budget \
                 (on side cheaper in {wins_on}/{rounds} rounds)"
            )));
        }
    } else {
        let mut ratios: Vec<f64> = offs
            .iter()
            .zip(&ons)
            .map(|(off, on)| on.0 / off.0.max(1e-9))
            .collect();
        ratios.sort_by(f64::total_cmp);
        let median = ratios[ratios.len() / 2];
        let overhead_pct = (1.0 - median) * 100.0;
        println!(
            "cpu sample too small ({:.1} ms); wall-clock median of {rounds} rounds: \
             on/off ratio {median:.4} -> overhead {overhead_pct:.2}% (budget {budget_pct}%)",
            sum_off as f64 / 1e6,
        );
        if overhead_pct > budget_pct {
            return Err(ArgError(format!(
                "metrics overhead {overhead_pct:.2}% exceeds the {budget_pct}% budget"
            )));
        }
    }
    println!("obs overhead: PASS");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use picl_obs::{FlightRecorder, MetricsServer, RecorderConfig};

    fn parse(raw: &[&str]) -> Args {
        Args::parse(raw.iter().copied()).unwrap()
    }

    fn temp_file(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("picl-cli-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    /// A registry with moving parts, plus a finished two-line flight log.
    fn recorded_flight(name: &str) -> PathBuf {
        let reg = MetricsRegistry::new();
        let ops = reg.counter("test_ops_total", &[("shard", "0")], "ops");
        let depth = reg.gauge("test_depth", &[], "depth");
        let lat = reg.histogram("test_lat_ns", &[], "latency");
        ops.inc();
        depth.set(3);
        lat.record(1000);
        let path = temp_file(name);
        let mut cfg = RecorderConfig::new(&path);
        cfg.interval = Duration::from_millis(5);
        let rec = FlightRecorder::spawn(reg.clone(), cfg).unwrap();
        ops.add(9);
        lat.record(8_000);
        std::thread::sleep(Duration::from_millis(30));
        rec.stop().unwrap();
        path
    }

    #[test]
    fn check_print_and_diff_read_a_real_flight_log() {
        let path = recorded_flight("flight.jsonl");
        let p = path.display().to_string();
        cmd_obs(&parse(&["obs", "check", "--file", &p])).unwrap();
        cmd_obs(&parse(&["obs", "print", "--file", &p])).unwrap();
        cmd_obs(&parse(&["obs", "print", "--file", &p, "--seq", "0"])).unwrap();
        cmd_obs(&parse(&["obs", "diff", "--file", &p])).unwrap();
        cmd_obs(&parse(&["obs", "diff", "--file", &p, "--from", "0"])).unwrap();

        let lines = parse_flight(&p).unwrap();
        assert!(lines.len() >= 2);
        let last = lines.last().unwrap();
        assert_eq!(
            last.counters.get("test_ops_total{shard=\"0\"}").copied(),
            Some(10)
        );
        assert_eq!(last.gauges.get("test_depth").copied(), Some(3));
        assert_eq!(
            last.histograms.get("test_lat_ns").map(Histogram::count),
            Some(2)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scrape_round_trips_a_live_endpoint() {
        let reg = MetricsRegistry::new();
        reg.counter("live_ops_total", &[], "ops").add(7);
        let mut server = MetricsServer::spawn(reg, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let out = temp_file("scrape.prom");
        cmd_obs(&parse(&[
            "obs",
            "scrape",
            "--addr",
            &addr,
            "--out",
            &out.display().to_string(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        assert!(body.contains("live_ops_total 7"), "{body}");
        server.shutdown();
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn bad_inputs_fail_loudly() {
        assert!(cmd_obs(&parse(&["obs", "frobnicate"])).is_err());
        assert!(
            cmd_obs(&parse(&["obs", "scrape"])).is_err(),
            "--addr required"
        );
        assert!(cmd_obs(&parse(&["obs", "check", "--file", "/nonexistent.jsonl"])).is_err());
        let path = recorded_flight("flight-missing-seq.jsonl");
        let p = path.display().to_string();
        assert!(
            cmd_obs(&parse(&["obs", "print", "--file", &p, "--seq", "999"])).is_err(),
            "seq 999 never recorded"
        );
        cmd_obs(&parse(&["obs", "help"])).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overhead_gate_runs_end_to_end() {
        // Tiny load, generous budget: this exercises the A/B harness, not
        // the 2% bar (CI runs the real gate at full scale).
        let store = temp_file("overhead.store");
        cmd_obs(&parse(&[
            "obs",
            "overhead",
            "--ops",
            "600",
            "--keys",
            "300",
            "--sessions",
            "2",
            "--rounds",
            "1",
            "--budget-pct",
            "95",
            "--path",
            &store.display().to_string(),
        ]))
        .unwrap();
    }
}
