//! End-to-end torture of the real `picl` binary: spawn `picl store run`,
//! `kill -9` it mid-epoch, recover the store file, and check the
//! differential oracle — the full loop the CI smoke step runs at scale.

use std::path::PathBuf;
use std::process::Command;

use picl_crashlab::{run_process_campaign, run_process_trial, KillClass, ProcessTrialSpec};

fn picl_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_picl"))
}

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("picl-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn each_kill_class_recovers_within_the_rpo_bound() {
    let dir = scratch();
    for (i, class) in [
        KillClass::MidEpoch,
        KillClass::Boundary,
        KillClass::MidDrain,
    ]
    .into_iter()
    .enumerate()
    {
        let spec = ProcessTrialSpec {
            binary: picl_bin(),
            store_path: dir.join(format!("class-{i}.store")),
            seed: 40 + i as u64,
            ops: 400,
            ops_per_epoch: 4,
            key_space: 12,
            window: 1,
            kill_after_commit: 3,
            class,
            persist_stall_ms: if class == KillClass::MidDrain { 6 } else { 0 },
        };
        let outcome = run_process_trial(&spec).expect("harness");
        assert!(
            outcome.passed(),
            "{} trial failed the oracle: {outcome:?}",
            class.name()
        );
        assert!(
            outcome.epochs_lost <= spec.window,
            "{}: lost {} epochs with window {}",
            class.name(),
            outcome.epochs_lost,
            spec.window
        );
        let _ = std::fs::remove_file(&spec.store_path);
    }
}

#[test]
fn a_small_seeded_campaign_passes_and_actually_kills() {
    let dir = scratch();
    let report = run_process_campaign(&picl_bin(), &dir, 6, 11).expect("campaign harness");
    assert!(
        report.passed(),
        "campaign failed: {} inconsistent, {} RPO violations",
        report.inconsistent,
        report.rpo_violations
    );
    assert_eq!(report.outcomes.len(), 6);
    assert!(
        report.kills >= 1,
        "a 6-trial campaign should deliver at least one SIGKILL"
    );
}

#[test]
fn store_run_exports_an_audit_clean_event_stream() {
    let dir = scratch();
    let store = dir.join("audited.store");
    let prefix = dir.join("audited");
    let _ = std::fs::remove_file(&store);

    let run = Command::new(picl_bin())
        .args([
            "store",
            "run",
            "--path",
            store.to_str().unwrap(),
            "--seed",
            "9",
            "--ops",
            "120",
            "--ops-per-epoch",
            "6",
            "--telemetry",
            prefix.to_str().unwrap(),
        ])
        .output()
        .expect("spawn picl store run");
    assert!(
        run.status.success(),
        "store run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );

    let events = format!("{}.events.jsonl", prefix.display());
    let audit = Command::new(picl_bin())
        .args(["audit", "--trace", &events])
        .output()
        .expect("spawn picl audit");
    assert!(
        audit.status.success(),
        "audit of the store's event stream failed: {}{}",
        String::from_utf8_lossy(&audit.stdout),
        String::from_utf8_lossy(&audit.stderr)
    );

    let _ = std::fs::remove_file(&store);
    for suffix in [".trace.json", ".events.jsonl", ".series.csv"] {
        let _ = std::fs::remove_file(format!("{}{suffix}", prefix.display()));
    }
}
