//! ThyNVM: dual-granularity redo logging with checkpoint/execution overlap
//! (§II-B, §VI-A).
//!
//! ThyNVM tracks writes in two translation tables — block granularity
//! (64 B, 2048 entries) for scattered writes and page granularity (4 KB,
//! 4096 entries) for spatially local ones. Commit stalls only for the
//! synchronous cache flush into the redo buffer; the *apply* phase of the
//! previous checkpoint overlaps the next epoch's execution (overlap degree
//! one). The price: entries stay resident across two epochs awaiting their
//! background apply, roughly halving effective table capacity — the paper's
//! explanation for ThyNVM's overhead growing fastest with cache size
//! (Fig. 15).

use picl_cache::{
    BoundaryOutcome, ConsistencyScheme, EvictRoute, EvictionEvent, Hierarchy, RecoveryOutcome,
    SchemeStats, SetAssocCache, StoreDirective, StoreEvent,
};
use picl_nvm::{AccessClass, Nvm};
use picl_telemetry::{EventKind, Telemetry};
use picl_types::{
    config::TableConfig, stats::Counter, Cycle, EpochId, LineAddr, PageAddr, PAGE_BYTES,
};

use picl::epoch::EpochTracker;

/// Line index where the simulated ThyNVM redo region begins.
pub const THYNVM_REGION_BASE_LINE: u64 = 1 << 43;

/// A block-granularity redo entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockEntry {
    value: u64,
    epoch: EpochId,
}

/// A page-granularity redo entry.
#[derive(Debug, Clone, Default)]
struct PageEntry {
    delta: picl_types::hash::FastMap<u64, u64>,
    epoch: EpochId,
}

/// The ThyNVM scheme.
#[derive(Debug)]
pub struct ThyNvm {
    epochs: EpochTracker,
    blocks: SetAssocCache<BlockEntry>,
    pages: SetAssocCache<PageEntry>,
    overflow: Vec<(LineAddr, u64)>,
    early_commit: bool,
    commits: Counter,
    forced_commits: Counter,
    redo_entries: Counter,
    redo_bytes: Counter,
    stall_cycles: Counter,
    telemetry: Telemetry,
    /// Reused across boundary flushes (one drain per epoch commit).
    flush_scratch: Vec<picl_cache::FlushLine>,
}

impl ThyNvm {
    /// Creates the scheme with the paper's dual-table geometry (2048 block
    /// + 4096 page entries, 16-way).
    pub fn new(table: &TableConfig) -> Self {
        table.validate().expect("valid table configuration");
        let ways = table.ways;
        ThyNvm {
            epochs: EpochTracker::new(16),
            blocks: SetAssocCache::new(table.thynvm_block_entries / ways, ways),
            pages: SetAssocCache::new(table.thynvm_page_entries / ways, ways),
            overflow: Vec::new(),
            early_commit: false,
            commits: Counter::new(),
            forced_commits: Counter::new(),
            redo_entries: Counter::new(),
            redo_bytes: Counter::new(),
            stall_cycles: Counter::new(),
            telemetry: Telemetry::off(),
            flush_scratch: Vec::new(),
        }
    }

    /// Block-table occupancy (includes entries awaiting background apply).
    pub fn block_occupancy(&self) -> usize {
        self.blocks.len()
    }

    /// Page-table occupancy.
    pub fn page_occupancy(&self) -> usize {
        self.pages.len()
    }

    fn redo_block_line(&self, addr: LineAddr) -> LineAddr {
        LineAddr::new(THYNVM_REGION_BASE_LINE + addr.raw() % self.blocks.capacity() as u64)
    }

    fn redo_page_line(&self, page: PageAddr, index: u64) -> LineAddr {
        let slot = page.raw() % self.pages.capacity() as u64;
        LineAddr::new(THYNVM_REGION_BASE_LINE + (1 << 20) + slot * 64 + index)
    }

    fn page_key(page: PageAddr) -> LineAddr {
        LineAddr::new(page.raw())
    }

    /// Absorbs a dirty eviction into one of the two tables. An entry left
    /// over from an already-committed epoch is applied to canonical memory
    /// first (its data is durable checkpoint state) before being reused.
    fn absorb(&mut self, addr: LineAddr, value: u64, mem: &mut Nvm, now: Cycle) -> Cycle {
        let sys = self.epochs.system();
        let page = addr.page();
        let pkey = Self::page_key(page);
        let mut t = now;

        if self.pages.contains(pkey) {
            let line = self.redo_page_line(page, addr.index_in_page());
            t = mem.write(t, line, value, AccessClass::RedoLogWrite);
            self.redo_entries.incr();
            self.redo_bytes.add(64);
            let committed_delta = {
                let e = self.pages.peek_mut(pkey).expect("contains");
                if e.epoch < sys && !e.delta.is_empty() {
                    let drained: Vec<(u64, u64)> = e.delta.drain().collect();
                    e.epoch = sys;
                    Some(drained)
                } else {
                    e.epoch = sys;
                    None
                }
            };
            if let Some(drained) = committed_delta {
                // Committed data displaced early: apply it now.
                for (idx, v) in drained {
                    let canon = LineAddr::new(page.first_line().raw() + idx);
                    t = mem.write(t, canon, v, AccessClass::RedoApplyWrite);
                }
            }
            self.pages
                .peek_mut(pkey)
                .expect("contains")
                .delta
                .insert(addr.index_in_page(), value);
            return t;
        }

        if self.blocks.contains(addr) {
            let line = self.redo_block_line(addr);
            t = mem.write(t, line, value, AccessClass::RedoLogWrite);
            self.redo_entries.incr();
            self.redo_bytes.add(64);
            let e = self.blocks.peek_mut(addr).expect("contains");
            if e.epoch < sys {
                let old = e.value;
                *e = BlockEntry { value, epoch: sys };
                t = mem.write(t, addr, old, AccessClass::RedoApplyWrite);
                mem.state_mut().write_line(addr, old);
            } else {
                *e = BlockEntry { value, epoch: sys };
            }
            return t;
        }

        if self.blocks.set_len(addr) < self.blocks.ways() {
            t = mem.write(
                t,
                self.redo_block_line(addr),
                value,
                AccessClass::RedoLogWrite,
            );
            self.redo_entries.incr();
            self.redo_bytes.add(64);
            self.blocks.insert(addr, BlockEntry { value, epoch: sys });
            return t;
        }

        if self.pages.set_len(pkey) < self.pages.ways() {
            t = mem.write(
                t,
                self.redo_page_line(page, addr.index_in_page()),
                value,
                AccessClass::RedoLogWrite,
            );
            self.redo_entries.incr();
            self.redo_bytes.add(64);
            let mut entry = PageEntry {
                delta: picl_types::hash::FastMap::default(),
                epoch: sys,
            };
            entry.delta.insert(addr.index_in_page(), value);
            self.pages.insert(pkey, entry);
            return t;
        }

        self.overflow.push((addr, value));
        self.early_commit = true;
        t
    }

    /// Applies and frees every entry belonging to an already-committed
    /// epoch (the background apply of the previous checkpoint).
    fn apply_committed(&mut self, mem: &mut Nvm, now: Cycle) -> Cycle {
        let sys = self.epochs.system();
        let mut t = now;
        for (addr, e) in self.blocks.drain_filter(|_, e| e.epoch < sys) {
            let (_, tr) = mem.read(now, self.redo_block_line(addr), AccessClass::RedoApplyRead);
            t = t.max(mem.write(tr, addr, e.value, AccessClass::RedoApplyWrite));
        }
        for (key, e) in self.pages.drain_filter(|_, e| e.epoch < sys) {
            let page = PageAddr::new(key.raw());
            t = t.max(mem.write_bulk(
                now,
                page.first_line(),
                PAGE_BYTES,
                AccessClass::RedoApplyWrite,
            ));
            for (idx, v) in e.delta {
                mem.state_mut()
                    .write_line(LineAddr::new(page.first_line().raw() + idx), v);
            }
        }
        t
    }
}

impl ConsistencyScheme for ThyNvm {
    fn name(&self) -> &'static str {
        "ThyNVM"
    }

    fn system_eid(&self) -> EpochId {
        self.epochs.system()
    }

    fn persisted_eid(&self) -> EpochId {
        self.epochs.persisted()
    }

    fn on_store(&mut self, _: &StoreEvent, _: &mut Nvm, _: Cycle) -> StoreDirective {
        StoreDirective::default()
    }

    fn on_dirty_eviction(&mut self, ev: &EvictionEvent, mem: &mut Nvm, now: Cycle) -> EvictRoute {
        self.absorb(ev.addr, ev.value, mem, now);
        EvictRoute::Absorbed
    }

    /// Reads snoop both tables (freshest copy wins; page delta covers the
    /// block table by construction).
    fn forward_read(&mut self, addr: LineAddr, mem: &mut Nvm, now: Cycle) -> Option<(u64, Cycle)> {
        let page = addr.page();
        if let Some(e) = self.pages.peek(Self::page_key(page)) {
            if let Some(v) = e.delta.get(&addr.index_in_page()) {
                let line = self.redo_page_line(page, addr.index_in_page());
                let (_, done) = mem.read(now, line, AccessClass::RedoForwardRead);
                return Some((*v, done));
            }
        }
        let e = self.blocks.peek(addr)?;
        let value = e.value;
        let (_, done) = mem.read(
            now,
            self.redo_block_line(addr),
            AccessClass::RedoForwardRead,
        );
        Some((value, done))
    }

    fn wants_early_commit(&self) -> bool {
        self.early_commit
    }

    /// Commit: stall only for the cache flush into the redo tables; the
    /// previous checkpoint's apply is issued in the background after the
    /// stall point (single-commit overlap).
    fn on_epoch_boundary(
        &mut self,
        hier: &mut Hierarchy,
        mem: &mut Nvm,
        now: Cycle,
    ) -> BoundaryOutcome {
        if self.early_commit {
            self.forced_commits.incr();
            self.early_commit = false;
        }
        // The previous checkpoint's background apply drains first: its
        // entries occupied the tables throughout the epoch that just ended
        // (the doubled-pressure effect), and its traffic is background NVM
        // work, not stall time.
        self.apply_committed(mem, now);
        let mut t = now;
        let mut scratch = std::mem::take(&mut self.flush_scratch);
        hier.take_dirty_lines_into(&mut scratch);
        for line in &scratch {
            t = t.max(self.absorb(line.addr, line.value, mem, now));
        }
        self.flush_scratch = scratch;
        for (addr, value) in std::mem::take(&mut self.overflow) {
            t = t.max(mem.write(now, addr, value, AccessClass::RedoApplyWrite));
        }
        let stall_end = t;
        let committed = self.epochs.commit();
        self.epochs.persist(committed);
        self.commits.incr();
        self.stall_cycles.add(stall_end.saturating_since(now).raw());
        self.telemetry
            .record(now, None, EventKind::EpochCommit { eid: committed });
        self.telemetry
            .record(stall_end, None, EventKind::EpochPersist { eid: committed });
        // Overflow during the flush itself was drained above; the epoch
        // that just committed needs no further forced commit.
        self.early_commit = false;
        BoundaryOutcome {
            committed,
            stall_until: Some(stall_end),
        }
    }

    /// The committed checkpoint's redo contents are durable; recovery
    /// finishes its apply. Current-epoch entries are discarded.
    fn crash_recover(&mut self, mem: &mut Nvm, now: Cycle) -> RecoveryOutcome {
        let persisted = self.epochs.persisted();
        let sys = self.epochs.system();
        let mut applied = 0;
        let mut t = now;
        for (addr, e) in self.blocks.drain_filter(|_, e| e.epoch < sys) {
            let (_, tr) = mem.read(t, self.redo_block_line(addr), AccessClass::RecoveryLogRead);
            t = mem.write(tr, addr, e.value, AccessClass::RecoveryPatchWrite);
            applied += 1;
        }
        for (key, e) in self.pages.drain_filter(|_, e| e.epoch < sys) {
            let page = PageAddr::new(key.raw());
            for (idx, v) in e.delta {
                let canon = LineAddr::new(page.first_line().raw() + idx);
                t = mem.write(t, canon, v, AccessClass::RecoveryPatchWrite);
                applied += 1;
            }
        }
        self.blocks.clear();
        self.pages.clear();
        self.overflow.clear();
        self.early_commit = false;
        self.epochs.resume_after_recovery();
        RecoveryOutcome {
            recovered_to: persisted,
            entries_applied: applied,
            completed_at: t,
        }
    }

    fn stats(&self) -> SchemeStats {
        SchemeStats {
            commits: self.commits.get(),
            forced_commits: self.forced_commits.get(),
            log_entries: self.redo_entries.get(),
            log_bytes_written: self.redo_bytes.get(),
            log_bytes_live: (self.blocks.len() + self.pages.len() * 64) as u64 * 64,
            buffer_flushes: 0,
            buffer_flushes_forced: 0,
            stall_cycles: self.stall_cycles.get(),
        }
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn telemetry_gauges(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("block_table_occupancy", self.blocks.len() as f64),
            ("page_table_occupancy", self.pages.len() as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picl_types::config::NvmConfig;
    use picl_types::time::ClockDomain;
    use picl_types::SystemConfig;

    fn rig() -> (ThyNvm, Hierarchy, Nvm) {
        (
            ThyNvm::new(&TableConfig::paper_default()),
            Hierarchy::new(&SystemConfig::paper_single_core()),
            Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000)),
        )
    }

    fn evict(s: &mut ThyNvm, m: &mut Nvm, line: u64, value: u64) {
        s.on_dirty_eviction(
            &EvictionEvent {
                addr: LineAddr::new(line),
                value,
                eid: None,
            },
            m,
            Cycle(0),
        );
    }

    #[test]
    fn scattered_writes_use_block_table() {
        let (mut s, _, mut m) = rig();
        evict(&mut s, &mut m, 1, 11);
        evict(&mut s, &mut m, 100_000, 22);
        assert_eq!(s.block_occupancy(), 2);
        assert_eq!(s.page_occupancy(), 0);
        assert_eq!(
            m.state().read_line(LineAddr::new(1)),
            0,
            "canonical untouched"
        );
    }

    #[test]
    fn block_set_overflow_falls_back_to_page_table() {
        let (mut s, _, mut m) = rig();
        let sets = 2048 / 16; // 128 block-table sets
        for k in 0..17u64 {
            evict(&mut s, &mut m, k * sets as u64, k);
        }
        assert_eq!(s.block_occupancy(), 16);
        assert_eq!(s.page_occupancy(), 1);
        assert!(!s.wants_early_commit());
    }

    #[test]
    fn forward_read_prefers_freshest() {
        let (mut s, _, mut m) = rig();
        evict(&mut s, &mut m, 5, 50);
        let (v, _) = s.forward_read(LineAddr::new(5), &mut m, Cycle(0)).unwrap();
        assert_eq!(v, 50);
        assert!(s.forward_read(LineAddr::new(6), &mut m, Cycle(0)).is_none());
    }

    #[test]
    fn commit_stalls_for_flush_only_and_applies_in_background() {
        let (mut s, mut h, mut m) = rig();
        evict(&mut s, &mut m, 5, 50);
        let out1 = s.on_epoch_boundary(&mut h, &mut m, Cycle(100));
        assert!(out1.stall_until.is_some());
        // Entry survives commit, occupying the table while its background
        // apply overlaps the next epoch.
        assert_eq!(s.block_occupancy(), 1);
        assert_eq!(
            m.state().read_line(LineAddr::new(5)),
            0,
            "apply not yet visible"
        );
        // By the next boundary the apply has drained it.
        let _out2 = s.on_epoch_boundary(&mut h, &mut m, Cycle(10_000));
        assert_eq!(s.block_occupancy(), 0);
        assert_eq!(m.state().read_line(LineAddr::new(5)), 50);
    }

    #[test]
    fn recovery_restores_committed_checkpoint() {
        let (mut s, mut h, mut m) = rig();
        // Commit epoch 1 with line 5 = 50.
        evict(&mut s, &mut m, 5, 50);
        s.on_epoch_boundary(&mut h, &mut m, Cycle(0));
        // Epoch 2 (uncommitted): line 5 = 51 absorbed.
        evict(&mut s, &mut m, 5, 51);
        let out = s.crash_recover(&mut m, Cycle(100));
        assert_eq!(out.recovered_to, EpochId(1));
        assert_eq!(m.state().read_line(LineAddr::new(5)), 50);
        assert_eq!(s.block_occupancy(), 0);
    }

    #[test]
    fn displaced_committed_entry_applies_first() {
        let (mut s, mut h, mut m) = rig();
        evict(&mut s, &mut m, 5, 50);
        s.on_epoch_boundary(&mut h, &mut m, Cycle(0));
        // Same line evicted again in epoch 2 before background apply ran
        // at its own boundary: the committed value 50 must reach canonical
        // before the slot is reused by 51.
        evict(&mut s, &mut m, 5, 51);
        assert_eq!(m.state().read_line(LineAddr::new(5)), 50);
        let out = s.crash_recover(&mut m, Cycle(100));
        assert_eq!(out.recovered_to, EpochId(1));
        assert_eq!(m.state().read_line(LineAddr::new(5)), 50);
    }

    #[test]
    fn dual_overflow_forces_early_commit() {
        let (mut s, _, mut m) = rig();
        let block_sets = 2048u64 / 16; // 128
        let page_sets = 4096u64 / 16; // 256
                                      // Fill one block set (16 lines, distinct pages aligned so their
                                      // pages also collide in one page set).
                                      // Block set index: line % 128 == 0 -> lines k*128*... choose lines
                                      // whose page index also ≡ 0 mod 256: page = line/64.
                                      // line = k * 64 * 256 => page = k*256 (page set 0); line % 128 == 0 ✓
        for k in 0..40u64 {
            evict(&mut s, &mut m, k * 64 * page_sets, k);
        }
        assert!(s.wants_early_commit(), "both tables' set 0 must overflow");
        let _ = block_sets;
    }
}
