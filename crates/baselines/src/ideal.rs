//! The Ideal NVM baseline: no checkpointing, no crash consistency.
//!
//! Every figure in the paper normalizes to this model. Evictions write in
//! place, epoch boundaries are free, and a crash leaves main memory in
//! whatever (possibly inconsistent) state the eviction stream produced —
//! the `crash_recovery` example uses exactly that to demonstrate the
//! corruption PiCL prevents.

use picl_cache::{
    BoundaryOutcome, ConsistencyScheme, EvictRoute, EvictionEvent, Hierarchy, RecoveryOutcome,
    SchemeStats, StoreDirective, StoreEvent,
};
use picl_nvm::Nvm;
use picl_telemetry::{EventKind, Telemetry};
use picl_types::{stats::Counter, Cycle, EpochId};

/// The unprotected baseline.
#[derive(Debug, Default)]
pub struct IdealNvm {
    system: EpochId,
    commits: Counter,
    telemetry: Telemetry,
}

impl IdealNvm {
    /// Creates the baseline scheme.
    pub fn new() -> Self {
        IdealNvm {
            system: EpochId(1),
            commits: Counter::new(),
            telemetry: Telemetry::off(),
        }
    }
}

impl ConsistencyScheme for IdealNvm {
    fn name(&self) -> &'static str {
        "Ideal"
    }

    fn system_eid(&self) -> EpochId {
        self.system
    }

    /// Nothing ever persists: there is no recovery target.
    fn persisted_eid(&self) -> EpochId {
        EpochId::ZERO
    }

    fn on_store(&mut self, _: &StoreEvent, _: &mut Nvm, _: Cycle) -> StoreDirective {
        StoreDirective::default()
    }

    fn on_dirty_eviction(&mut self, _: &EvictionEvent, _: &mut Nvm, _: Cycle) -> EvictRoute {
        EvictRoute::InPlace
    }

    fn on_epoch_boundary(&mut self, _: &mut Hierarchy, _: &mut Nvm, now: Cycle) -> BoundaryOutcome {
        let committed = self.system;
        self.system = self.system.next();
        self.commits.incr();
        self.telemetry
            .record(now, None, EventKind::EpochCommit { eid: committed });
        BoundaryOutcome {
            committed,
            stall_until: None,
        }
    }

    /// No durable log exists; memory is left exactly as the crash found it
    /// (torn between epochs).
    fn crash_recover(&mut self, _: &mut Nvm, now: Cycle) -> RecoveryOutcome {
        RecoveryOutcome {
            recovered_to: EpochId::ZERO,
            entries_applied: 0,
            completed_at: now,
        }
    }

    fn stats(&self) -> SchemeStats {
        SchemeStats {
            commits: self.commits.get(),
            ..SchemeStats::default()
        }
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picl_types::config::NvmConfig;
    use picl_types::time::ClockDomain;
    use picl_types::{LineAddr, SystemConfig};

    #[test]
    fn boundary_is_free_and_counts() {
        let mut s = IdealNvm::new();
        let mut h = Hierarchy::new(&SystemConfig::paper_single_core());
        let mut m = Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000));
        let out = s.on_epoch_boundary(&mut h, &mut m, Cycle(5));
        assert_eq!(out.committed, EpochId(1));
        assert_eq!(out.stall_until, None);
        assert_eq!(s.system_eid(), EpochId(2));
        assert_eq!(s.stats().commits, 1);
    }

    #[test]
    fn recovery_restores_nothing() {
        let mut s = IdealNvm::new();
        let mut m = Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000));
        m.state_mut().write_line(LineAddr::new(1), 99);
        let out = s.crash_recover(&mut m, Cycle(7));
        assert_eq!(out.recovered_to, EpochId::ZERO);
        assert_eq!(out.entries_applied, 0);
        assert_eq!(
            m.state().read_line(LineAddr::new(1)),
            99,
            "memory untouched"
        );
    }
}
