//! FRM-style classic undo logging (§II-B, §VI-A).
//!
//! Representative of hardware high-frequency checkpointing designs: every
//! dirty eviction performs the **read-log-modify** access sequence — read
//! the pre-image from its canonical address, append it to the undo log as
//! an uncoalesced random write, then write the new data in place. At every
//! epoch boundary the whole dirty cache is flushed *synchronously* with the
//! same per-line sequence, and the epoch is durable the moment it commits
//! (single-undo: commit and persist are atomic).
//!
//! Both of PiCL's target pathologies live here: three NVM operations with
//! poor locality per eviction, and a stop-the-world flush whose latency
//! scales with cache size.

use picl_cache::{
    BoundaryOutcome, ConsistencyScheme, EvictRoute, EvictionEvent, Hierarchy, RecoveryOutcome,
    SchemeStats, StoreDirective, StoreEvent,
};
use picl_nvm::{AccessClass, Nvm};
use picl_telemetry::{EventKind, Telemetry};
use picl_types::{stats::Counter, Cycle, EpochId};

use picl::epoch::EpochTracker;
use picl::log::UndoLog;
use picl::undo::UndoEntry;

/// The FRM undo-logging scheme.
#[derive(Debug)]
pub struct Frm {
    epochs: EpochTracker,
    log: UndoLog,
    commits: Counter,
    stall_cycles: Counter,
    telemetry: Telemetry,
    /// Reused across boundary flushes (one drain per epoch commit).
    flush_scratch: Vec<picl_cache::FlushLine>,
}

impl Frm {
    /// Creates the scheme. FRM needs no configuration beyond the epoch
    /// timer the simulator drives.
    pub fn new() -> Self {
        Frm {
            // Commit == persist, so the live window is one epoch: any tag
            // width works; use 16 bits for headroom in the shared tracker.
            epochs: EpochTracker::new(16),
            log: UndoLog::new(),
            commits: Counter::new(),
            stall_cycles: Counter::new(),
            telemetry: Telemetry::off(),
            flush_scratch: Vec::new(),
        }
    }

    /// The durable undo log (inspection and reports).
    pub fn log(&self) -> &UndoLog {
        &self.log
    }

    /// The read-log-modify sequence for one line: pre-image read, random
    /// log append. The caller then writes the new data in place. Returns
    /// the cycle the log append is durable.
    fn read_log(&mut self, addr: picl_types::LineAddr, mem: &mut Nvm, now: Cycle) -> Cycle {
        let (pre_image, t_read) = mem.read(now, addr, AccessClass::UndoPreimageRead);
        let entry = UndoEntry::new(
            addr,
            pre_image,
            self.epochs.persisted(),
            self.epochs.system(),
        );
        // FRM has no volatile undo buffer: the append is durable at the
        // same cycle as the eviction it covers, which the auditor's
        // same-cycle grace window recognises as legal.
        self.telemetry.record(
            now,
            None,
            EventKind::UndoEntryAppended {
                addr,
                valid_from: self.epochs.persisted(),
                valid_till: self.epochs.system(),
            },
        );
        self.log.append_single(entry, mem, t_read)
    }
}

impl Default for Frm {
    fn default() -> Self {
        Self::new()
    }
}

impl ConsistencyScheme for Frm {
    fn name(&self) -> &'static str {
        "FRM"
    }

    fn system_eid(&self) -> EpochId {
        self.epochs.system()
    }

    fn persisted_eid(&self) -> EpochId {
        self.epochs.persisted()
    }

    /// Stores are invisible to classic undo logging — all work happens at
    /// eviction time.
    fn on_store(&mut self, _: &StoreEvent, _: &mut Nvm, _: Cycle) -> StoreDirective {
        StoreDirective::default()
    }

    /// Read-log-modify: the pre-image must be durable in the log before the
    /// in-place write (which the hierarchy performs after we return).
    fn on_dirty_eviction(&mut self, ev: &EvictionEvent, mem: &mut Nvm, now: Cycle) -> EvictRoute {
        self.read_log(ev.addr, mem, now);
        EvictRoute::InPlace
    }

    /// Synchronous commit: flush every dirty line with read-log-modify,
    /// stalling until the last write lands; the epoch is then persisted.
    fn on_epoch_boundary(
        &mut self,
        hier: &mut Hierarchy,
        mem: &mut Nvm,
        now: Cycle,
    ) -> BoundaryOutcome {
        let mut t = now;
        let mut scratch = std::mem::take(&mut self.flush_scratch);
        hier.take_dirty_lines_into(&mut scratch);
        for line in &scratch {
            // Per line: pre-image read, log append, in-place write chain;
            // distinct lines proceed concurrently across banks.
            let logged = self.read_log(line.addr, mem, now);
            let done = mem.write(logged, line.addr, line.value, AccessClass::WriteBack);
            t = t.max(done);
        }
        self.flush_scratch = scratch;
        let committed = self.epochs.commit();
        self.epochs.persist(committed);
        self.log.garbage_collect(committed);
        self.commits.incr();
        self.stall_cycles.add(t.saturating_since(now).raw());
        self.telemetry
            .record(now, None, EventKind::EpochCommit { eid: committed });
        // Single-undo: the epoch is durable the moment the flush lands.
        self.telemetry
            .record(t, None, EventKind::EpochPersist { eid: committed });
        BoundaryOutcome {
            committed,
            stall_until: Some(t),
        }
    }

    /// Crash mid-epoch: in-place eviction writes from the uncommitted epoch
    /// are undone by replaying the log backward to the persisted epoch.
    fn crash_recover(&mut self, mem: &mut Nvm, now: Cycle) -> RecoveryOutcome {
        let persisted = self.epochs.persisted();
        let (applied, done) = self.log.recover(mem, persisted, now);
        self.log.truncate_after_recovery(persisted);
        self.epochs.resume_after_recovery();
        RecoveryOutcome {
            recovered_to: persisted,
            entries_applied: applied,
            completed_at: done,
        }
    }

    fn stats(&self) -> SchemeStats {
        let log = self.log.stats();
        SchemeStats {
            commits: self.commits.get(),
            forced_commits: 0,
            log_entries: log.entries_written,
            log_bytes_written: log.bytes_written,
            log_bytes_live: log.bytes_live,
            buffer_flushes: 0,
            buffer_flushes_forced: 0,
            stall_cycles: self.stall_cycles.get(),
        }
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn telemetry_gauges(&self) -> Vec<(&'static str, f64)> {
        vec![("log_bytes_live", self.log.stats().bytes_live as f64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picl_types::config::NvmConfig;
    use picl_types::time::ClockDomain;
    use picl_types::{LineAddr, SystemConfig};

    fn rig() -> (Frm, Hierarchy, Nvm) {
        (
            Frm::new(),
            Hierarchy::new(&SystemConfig::paper_single_core()),
            Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000)),
        )
    }

    #[test]
    fn eviction_performs_read_log_modify() {
        let (mut f, _, mut m) = rig();
        m.state_mut().write_line(LineAddr::new(5), 50);
        let route = f.on_dirty_eviction(
            &EvictionEvent {
                addr: LineAddr::new(5),
                value: 51,
                eid: None,
            },
            &mut m,
            Cycle(0),
        );
        assert_eq!(route, EvictRoute::InPlace);
        assert_eq!(m.stats().ops(AccessClass::UndoPreimageRead), 1);
        assert_eq!(m.stats().ops(AccessClass::UndoLogRandom), 1);
        // The logged pre-image is the canonical (old) value.
        assert_eq!(f.log().iter_entries().next().unwrap().value, 50);
    }

    #[test]
    fn commit_stalls_until_flush_completes() {
        let (mut f, mut h, mut m) = rig();
        use picl_cache::hierarchy::AccessType;
        use picl_types::CoreId;
        for i in 0..10u64 {
            h.access(
                CoreId(0),
                LineAddr::new(i),
                AccessType::Store { new_value: i + 1 },
                &mut f,
                &mut m,
                Cycle(i),
            );
        }
        let out = f.on_epoch_boundary(&mut h, &mut m, Cycle(1000));
        let stall = out.stall_until.expect("FRM must stall");
        assert!(stall > Cycle(1000));
        assert_eq!(h.dirty_line_count(), 0);
        assert_eq!(f.persisted_eid(), EpochId(1));
        assert!(f.stats().stall_cycles > 0);
        // All ten lines are now in place in NVM.
        for i in 0..10u64 {
            assert_eq!(m.state().read_line(LineAddr::new(i)), i + 1);
        }
    }

    #[test]
    fn recovery_undoes_uncommitted_evictions() {
        let (mut f, _h, mut m) = rig();
        m.state_mut().write_line(LineAddr::new(3), 30);
        // Uncommitted epoch 1 eviction overwrites line 3 in place.
        f.on_dirty_eviction(
            &EvictionEvent {
                addr: LineAddr::new(3),
                value: 31,
                eid: None,
            },
            &mut m,
            Cycle(0),
        );
        m.state_mut().write_line(LineAddr::new(3), 31); // hierarchy's in-place write
        let out = f.crash_recover(&mut m, Cycle(100));
        assert_eq!(out.recovered_to, EpochId::ZERO);
        assert_eq!(out.entries_applied, 1);
        assert_eq!(m.state().read_line(LineAddr::new(3)), 30);
        assert_eq!(f.system_eid(), EpochId(1));
    }

    #[test]
    fn committed_epochs_survive_recovery() {
        let (mut f, mut h, mut m) = rig();
        use picl_cache::hierarchy::AccessType;
        use picl_types::CoreId;
        h.access(
            CoreId(0),
            LineAddr::new(9),
            AccessType::Store { new_value: 90 },
            &mut f,
            &mut m,
            Cycle(0),
        );
        f.on_epoch_boundary(&mut h, &mut m, Cycle(10));
        h.invalidate_all();
        let out = f.crash_recover(&mut m, Cycle(20));
        assert_eq!(out.recovered_to, EpochId(1));
        assert_eq!(m.state().read_line(LineAddr::new(9)), 90);
    }
}
