//! Prior-work software-transparent crash-consistency schemes (§VI-A).
//!
//! The paper compares PiCL against four representative designs plus an
//! unprotected baseline; all five are implemented here behind the same
//! [`ConsistencyScheme`](picl_cache::ConsistencyScheme) interface:
//!
//! * [`ideal::IdealNvm`] — no checkpointing, no crash consistency; the
//!   normalization baseline of every figure.
//! * [`frm::Frm`] — classic undo logging as used by high-frequency
//!   checkpointing designs: a read-log-modify NVM access sequence per dirty
//!   eviction and a synchronous stop-the-world cache flush at every commit.
//! * [`journaling::Journaling`] — redo logging with a fixed-size
//!   translation table; table-set overflow forces early commits, and commit
//!   both flushes the cache into the redo buffer and applies it.
//! * [`shadow::ShadowPaging`] — redo logging at 4 KB page granularity with
//!   in-module copy-on-write and the paper's two optimizations (local CoW,
//!   entry retention across epochs).
//! * [`thynvm::ThyNvm`] — dual block/page-granularity redo with
//!   single-checkpoint execution overlap: commit stalls only for the cache
//!   flush, while the previous checkpoint's apply proceeds in the
//!   background (at the cost of doubled table pressure).

pub mod frm;
pub mod ideal;
pub mod journaling;
pub mod shadow;
pub mod thynvm;

pub use frm::Frm;
pub use ideal::IdealNvm;
pub use journaling::Journaling;
pub use shadow::ShadowPaging;
pub use thynvm::ThyNvm;
