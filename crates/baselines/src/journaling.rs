//! Journaling: redo logging with a hardware translation table (§II-B,
//! §VI-A).
//!
//! Dirty evictions are absorbed into a redo buffer in NVM instead of being
//! written in place; a fixed-size, set-associative translation table maps
//! each absorbed line to its redo-buffer slot. Demand misses snoop the
//! table so reads see the freshest data. At commit the whole dirty cache is
//! flushed into the redo buffer and the buffer is *applied* — every entry
//! read back and written to its canonical address — all synchronously.
//!
//! The scalability problem the paper highlights: when a table **set** fills
//! up, the epoch must commit early, so workloads with large or scattered
//! write sets commit 6–64× more often than the epoch timer intends
//! (Fig. 11).

use std::collections::VecDeque;

use picl_cache::{
    BoundaryOutcome, ConsistencyScheme, EvictRoute, EvictionEvent, Hierarchy, RecoveryOutcome,
    SchemeStats, SetAssocCache, StoreDirective, StoreEvent,
};
use picl_nvm::{AccessClass, Nvm};
use picl_telemetry::{EventKind, Telemetry};
use picl_types::{config::TableConfig, stats::Counter, Cycle, EpochId, LineAddr};

use picl::epoch::EpochTracker;

/// Line index where the simulated redo-buffer region begins.
pub const REDO_REGION_BASE_LINE: u64 = 1 << 41;

/// A translation-table entry: the redo-buffer copy of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RedoSlot {
    value: u64,
}

/// The Journaling scheme.
#[derive(Debug)]
pub struct Journaling {
    epochs: EpochTracker,
    table: SetAssocCache<RedoSlot>,
    /// Entries that arrived while their table set was full; they force an
    /// early commit, which drains them.
    overflow: VecDeque<(LineAddr, u64)>,
    early_commit: bool,
    commits: Counter,
    forced_commits: Counter,
    redo_entries: Counter,
    redo_bytes: Counter,
    stall_cycles: Counter,
    telemetry: Telemetry,
    /// Reused across boundary flushes (one drain per epoch commit).
    flush_scratch: Vec<picl_cache::FlushLine>,
}

impl Journaling {
    /// Creates the scheme with the paper's table geometry (6144 entries,
    /// 16-way).
    pub fn new(table: &TableConfig) -> Self {
        table.validate().expect("valid table configuration");
        let sets = table.entries / table.ways;
        Journaling {
            epochs: EpochTracker::new(16),
            table: SetAssocCache::new(sets, table.ways),
            overflow: VecDeque::new(),
            early_commit: false,
            commits: Counter::new(),
            forced_commits: Counter::new(),
            redo_entries: Counter::new(),
            redo_bytes: Counter::new(),
            stall_cycles: Counter::new(),
            telemetry: Telemetry::off(),
            flush_scratch: Vec::new(),
        }
    }

    /// Lines currently tracked by the translation table.
    pub fn table_occupancy(&self) -> usize {
        self.table.len()
    }

    fn redo_line(&self, addr: LineAddr) -> LineAddr {
        LineAddr::new(REDO_REGION_BASE_LINE + addr.raw() % self.table.capacity() as u64)
    }

    /// Absorbs one line into the redo buffer, writing the NVM redo slot.
    /// Sets the early-commit flag if the table set was full.
    fn absorb(&mut self, addr: LineAddr, value: u64, mem: &mut Nvm, now: Cycle) -> Cycle {
        let done = mem.write(now, self.redo_line(addr), value, AccessClass::RedoLogWrite);
        self.redo_entries.incr();
        self.redo_bytes.add(64);
        if self.table.contains(addr) || self.table.set_len(addr) < self.table.ways() {
            self.table.insert(addr, RedoSlot { value });
        } else {
            // Set conflict: hardware cannot track this line — the epoch
            // must commit early. Hold the data aside until it does.
            self.overflow.push_back((addr, value));
            self.early_commit = true;
        }
        done
    }

    /// Applies all tracked redo entries to their canonical addresses and
    /// clears the table. Entries issue concurrently (the FCFS controller's
    /// banks provide the parallelism); each entry's canonical write chains
    /// after its own redo read. Returns the cycle the last write lands.
    fn apply_all(&mut self, mem: &mut Nvm, now: Cycle) -> Cycle {
        let mut done = now;
        let entries: Vec<(LineAddr, u64)> = self
            .table
            .iter()
            .map(|(a, s)| (a, s.value))
            .chain(self.overflow.iter().copied())
            .collect();
        for (addr, value) in entries {
            let (_, t_read) = mem.read(now, self.redo_line(addr), AccessClass::RedoApplyRead);
            done = done.max(mem.write(t_read, addr, value, AccessClass::RedoApplyWrite));
        }
        self.table.clear();
        self.overflow.clear();
        done
    }
}

impl ConsistencyScheme for Journaling {
    fn name(&self) -> &'static str {
        "Journaling"
    }

    fn system_eid(&self) -> EpochId {
        self.epochs.system()
    }

    fn persisted_eid(&self) -> EpochId {
        self.epochs.persisted()
    }

    fn on_store(&mut self, _: &StoreEvent, _: &mut Nvm, _: Cycle) -> StoreDirective {
        StoreDirective::default()
    }

    /// Dirty evictions divert into the redo buffer; canonical memory stays
    /// at the last committed state.
    fn on_dirty_eviction(&mut self, ev: &EvictionEvent, mem: &mut Nvm, now: Cycle) -> EvictRoute {
        self.absorb(ev.addr, ev.value, mem, now);
        EvictRoute::Absorbed
    }

    /// Reads must see redo-buffer contents ("this redo buffer is snooped on
    /// every memory access").
    fn forward_read(&mut self, addr: LineAddr, mem: &mut Nvm, now: Cycle) -> Option<(u64, Cycle)> {
        let value = self.table.peek(addr)?.value;
        let (_, done) = mem.read(now, self.redo_line(addr), AccessClass::RedoForwardRead);
        Some((value, done))
    }

    fn wants_early_commit(&self) -> bool {
        self.early_commit
    }

    /// Commit: synchronously flush the dirty cache into the redo buffer,
    /// then apply the whole buffer to canonical memory.
    fn on_epoch_boundary(
        &mut self,
        hier: &mut Hierarchy,
        mem: &mut Nvm,
        now: Cycle,
    ) -> BoundaryOutcome {
        if self.early_commit {
            self.forced_commits.incr();
            self.early_commit = false;
        }
        let mut flushed = now;
        let mut scratch = std::mem::take(&mut self.flush_scratch);
        hier.take_dirty_lines_into(&mut scratch);
        for line in &scratch {
            flushed = flushed.max(self.absorb(line.addr, line.value, mem, now));
        }
        self.flush_scratch = scratch;
        let t = self.apply_all(mem, flushed);
        let committed = self.epochs.commit();
        self.epochs.persist(committed);
        self.commits.incr();
        self.stall_cycles.add(t.saturating_since(now).raw());
        self.telemetry
            .record(now, None, EventKind::EpochCommit { eid: committed });
        self.telemetry
            .record(t, None, EventKind::EpochPersist { eid: committed });
        // Overflow during the flush itself was drained above; the epoch
        // that just committed needs no further forced commit.
        self.early_commit = false;
        BoundaryOutcome {
            committed,
            stall_until: Some(t),
        }
    }

    /// Canonical memory already holds the last committed state (the apply
    /// completed inside the commit stall); uncommitted redo entries are
    /// simply discarded.
    fn crash_recover(&mut self, _: &mut Nvm, now: Cycle) -> RecoveryOutcome {
        self.table.clear();
        self.overflow.clear();
        self.early_commit = false;
        let persisted = self.epochs.persisted();
        self.epochs.resume_after_recovery();
        RecoveryOutcome {
            recovered_to: persisted,
            entries_applied: 0,
            completed_at: now,
        }
    }

    fn stats(&self) -> SchemeStats {
        SchemeStats {
            commits: self.commits.get(),
            forced_commits: self.forced_commits.get(),
            log_entries: self.redo_entries.get(),
            log_bytes_written: self.redo_bytes.get(),
            log_bytes_live: self.table.len() as u64 * 64,
            buffer_flushes: 0,
            buffer_flushes_forced: 0,
            stall_cycles: self.stall_cycles.get(),
        }
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn telemetry_gauges(&self) -> Vec<(&'static str, f64)> {
        vec![("redo_table_occupancy", self.table.len() as f64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picl_types::config::NvmConfig;
    use picl_types::time::ClockDomain;
    use picl_types::SystemConfig;

    fn rig() -> (Journaling, Hierarchy, Nvm) {
        (
            Journaling::new(&TableConfig::paper_default()),
            Hierarchy::new(&SystemConfig::paper_single_core()),
            Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000)),
        )
    }

    fn evict(j: &mut Journaling, m: &mut Nvm, addr: u64, value: u64) -> EvictRoute {
        j.on_dirty_eviction(
            &EvictionEvent {
                addr: LineAddr::new(addr),
                value,
                eid: None,
            },
            m,
            Cycle(0),
        )
    }

    #[test]
    fn evictions_are_absorbed_not_in_place() {
        let (mut j, _, mut m) = rig();
        m.state_mut().write_line(LineAddr::new(4), 40);
        assert_eq!(evict(&mut j, &mut m, 4, 41), EvictRoute::Absorbed);
        // Canonical memory unchanged; redo write issued.
        assert_eq!(m.state().read_line(LineAddr::new(4)), 40);
        assert_eq!(m.stats().ops(AccessClass::RedoLogWrite), 1);
        assert_eq!(j.table_occupancy(), 1);
    }

    #[test]
    fn forward_read_returns_redo_value() {
        let (mut j, _, mut m) = rig();
        evict(&mut j, &mut m, 4, 41);
        let (v, done) = j.forward_read(LineAddr::new(4), &mut m, Cycle(10)).unwrap();
        assert_eq!(v, 41);
        assert!(done > Cycle(10));
        assert!(j
            .forward_read(LineAddr::new(5), &mut m, Cycle(10))
            .is_none());
    }

    #[test]
    fn commit_applies_and_clears() {
        let (mut j, mut h, mut m) = rig();
        evict(&mut j, &mut m, 4, 41);
        evict(&mut j, &mut m, 6, 61);
        let out = j.on_epoch_boundary(&mut h, &mut m, Cycle(100));
        assert!(out.stall_until.unwrap() > Cycle(100));
        assert_eq!(m.state().read_line(LineAddr::new(4)), 41);
        assert_eq!(m.state().read_line(LineAddr::new(6)), 61);
        assert_eq!(j.table_occupancy(), 0);
        assert_eq!(j.persisted_eid(), EpochId(1));
    }

    #[test]
    fn set_conflict_forces_early_commit() {
        let (mut j, _, mut m) = rig();
        // 384 sets (6144 entries, 16-way): lines k·384 collide in set 0.
        let sets = 384u64;
        for k in 0..17u64 {
            evict(&mut j, &mut m, k * sets, k);
        }
        assert!(
            j.wants_early_commit(),
            "17th way must overflow a 16-way set"
        );
    }

    #[test]
    fn early_commit_counts_as_forced() {
        let (mut j, mut h, mut m) = rig();
        let sets = 384u64;
        for k in 0..17u64 {
            evict(&mut j, &mut m, k * sets, k + 100);
        }
        let out = j.on_epoch_boundary(&mut h, &mut m, Cycle(0));
        assert_eq!(out.committed, EpochId(1));
        assert_eq!(j.stats().forced_commits, 1);
        assert!(!j.wants_early_commit());
        // The overflowed line was applied too.
        assert_eq!(m.state().read_line(LineAddr::new(16 * sets)), 116);
    }

    #[test]
    fn recovery_discards_uncommitted_redo() {
        let (mut j, mut h, mut m) = rig();
        m.state_mut().write_line(LineAddr::new(4), 40);
        // Commit epoch 1 with value 41.
        evict(&mut j, &mut m, 4, 41);
        j.on_epoch_boundary(&mut h, &mut m, Cycle(0));
        // Uncommitted epoch 2 eviction with value 42.
        evict(&mut j, &mut m, 4, 42);
        let out = j.crash_recover(&mut m, Cycle(10));
        assert_eq!(out.recovered_to, EpochId(1));
        assert_eq!(m.state().read_line(LineAddr::new(4)), 41);
        assert_eq!(j.table_occupancy(), 0);
        assert_eq!(j.system_eid(), EpochId(2));
    }
}
