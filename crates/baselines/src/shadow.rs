//! Shadow Paging: page-granularity redo logging (§VI-A).
//!
//! Like Journaling, but the translation table tracks 4 KB pages. The first
//! dirty eviction into an untracked page triggers a copy-on-write of the
//! whole page into the shadow region; later evictions write into the shadow
//! copy. At commit, dirtied shadow pages are written back to their
//! canonical addresses as page-sized sequential writes.
//!
//! Both optimizations from §VI-A are implemented:
//!
//! 1. CoW copies happen *locally inside the memory module* (one bulk NVM
//!    operation, no link round-trip of the data through the CPU);
//! 2. table entries are **retained** after commit, so the next epoch's
//!    writes to the same page skip the CoW; retained-but-clean entries are
//!    silently replaceable, so only sets full of *dirty* pages force an
//!    early commit.
//!
//! Page granularity is great for sequential writers (one entry covers 64
//! lines) and terrible for scattered writers (a 4 KB copy per stray line) —
//! exactly the astar-vs-mcf contrast the paper describes.

use picl_cache::{
    BoundaryOutcome, ConsistencyScheme, EvictRoute, EvictionEvent, Hierarchy, RecoveryOutcome,
    SchemeStats, SetAssocCache, StoreDirective, StoreEvent,
};
use picl_nvm::{AccessClass, Nvm};
use picl_telemetry::{EventKind, Telemetry};
use picl_types::{
    config::TableConfig, stats::Counter, Cycle, EpochId, LineAddr, PageAddr, PAGE_BYTES,
};

use picl::epoch::EpochTracker;

/// Line index where the simulated shadow-page region begins.
pub const SHADOW_REGION_BASE_LINE: u64 = 1 << 42;

/// One tracked page: the lines overwritten since the page's data last
/// matched canonical memory.
#[derive(Debug, Clone, Default)]
struct ShadowEntry {
    /// line-index-in-page → value, for lines diverging from canonical.
    delta: picl_types::hash::FastMap<u64, u64>,
}

impl ShadowEntry {
    fn is_clean(&self) -> bool {
        self.delta.is_empty()
    }
}

/// The Shadow-Paging scheme.
#[derive(Debug)]
pub struct ShadowPaging {
    epochs: EpochTracker,
    table: SetAssocCache<ShadowEntry>,
    /// Lines whose page could not be tracked; drained by the forced commit.
    overflow: Vec<(LineAddr, u64)>,
    early_commit: bool,
    commits: Counter,
    forced_commits: Counter,
    cow_copies: Counter,
    page_writebacks: Counter,
    stall_cycles: Counter,
    shadow_bytes: Counter,
    telemetry: Telemetry,
    /// Reused across boundary flushes (one drain per epoch commit).
    flush_scratch: Vec<picl_cache::FlushLine>,
}

impl ShadowPaging {
    /// Creates the scheme with the paper's table geometry.
    pub fn new(table: &TableConfig) -> Self {
        table.validate().expect("valid table configuration");
        ShadowPaging {
            epochs: EpochTracker::new(16),
            table: SetAssocCache::new(table.entries / table.ways, table.ways),
            overflow: Vec::new(),
            early_commit: false,
            commits: Counter::new(),
            forced_commits: Counter::new(),
            cow_copies: Counter::new(),
            page_writebacks: Counter::new(),
            stall_cycles: Counter::new(),
            shadow_bytes: Counter::new(),
            telemetry: Telemetry::off(),
            flush_scratch: Vec::new(),
        }
    }

    /// Pages currently tracked (retained entries included).
    pub fn table_occupancy(&self) -> usize {
        self.table.len()
    }

    /// Copy-on-write page copies performed so far.
    pub fn cow_count(&self) -> u64 {
        self.cow_copies.get()
    }

    fn key(page: PageAddr) -> LineAddr {
        LineAddr::new(page.raw())
    }

    fn shadow_line(&self, page: PageAddr, index_in_page: u64) -> LineAddr {
        let slot = page.raw() % self.table.capacity() as u64;
        LineAddr::new(SHADOW_REGION_BASE_LINE + slot * (PAGE_BYTES / 64) + index_in_page)
    }

    /// Absorbs one line into its shadow page, allocating (with CoW) as
    /// needed. Returns the completion cycle; sets the early-commit flag on
    /// an untrackable page.
    fn absorb(&mut self, addr: LineAddr, value: u64, mem: &mut Nvm, now: Cycle) -> Cycle {
        let page = addr.page();
        let key = Self::key(page);
        let mut t = now;
        if self.table.peek(key).is_none() {
            // Translation write miss: try to allocate, CoW-ing the page.
            if self.table.set_len(key) == self.table.ways() {
                // Retained-but-clean entries are silently reclaimable.
                let clean_victim = self
                    .table
                    .set_entries(key)
                    .find(|(_, e)| e.is_clean())
                    .map(|(a, _)| a);
                match clean_victim {
                    Some(v) => {
                        self.table.remove(v);
                    }
                    None => {
                        self.overflow.push((addr, value));
                        self.early_commit = true;
                        return t;
                    }
                }
            }
            // Local CoW inside the memory module (§VI-A optimization 1).
            t = mem.write_bulk(
                t,
                self.shadow_line(page, 0),
                PAGE_BYTES,
                AccessClass::CowPageCopy,
            );
            self.cow_copies.incr();
            self.table.insert(key, ShadowEntry::default());
        }
        let t_write = mem.write(
            t,
            self.shadow_line(page, addr.index_in_page()),
            value,
            AccessClass::RedoLogWrite,
        );
        self.shadow_bytes.add(64);
        self.table
            .peek_mut(key)
            .expect("entry just ensured")
            .delta
            .insert(addr.index_in_page(), value);
        t_write
    }
}

impl ConsistencyScheme for ShadowPaging {
    fn name(&self) -> &'static str {
        "Shadow"
    }

    fn system_eid(&self) -> EpochId {
        self.epochs.system()
    }

    fn persisted_eid(&self) -> EpochId {
        self.epochs.persisted()
    }

    fn on_store(&mut self, _: &StoreEvent, _: &mut Nvm, _: Cycle) -> StoreDirective {
        StoreDirective::default()
    }

    fn on_dirty_eviction(&mut self, ev: &EvictionEvent, mem: &mut Nvm, now: Cycle) -> EvictRoute {
        self.absorb(ev.addr, ev.value, mem, now);
        EvictRoute::Absorbed
    }

    /// Reads of shadowed lines come from the shadow page.
    fn forward_read(&mut self, addr: LineAddr, mem: &mut Nvm, now: Cycle) -> Option<(u64, Cycle)> {
        let page = addr.page();
        let value = *self
            .table
            .peek(Self::key(page))?
            .delta
            .get(&addr.index_in_page())?;
        let line = self.shadow_line(page, addr.index_in_page());
        let (_, done) = mem.read(now, line, AccessClass::RedoForwardRead);
        Some((value, done))
    }

    fn wants_early_commit(&self) -> bool {
        self.early_commit
    }

    /// Commit: flush the dirty cache into shadow pages, then write every
    /// dirtied page back to its canonical address as one page-sized
    /// sequential write. Entries are retained with their deltas cleared.
    fn on_epoch_boundary(
        &mut self,
        hier: &mut Hierarchy,
        mem: &mut Nvm,
        now: Cycle,
    ) -> BoundaryOutcome {
        if self.early_commit {
            self.forced_commits.incr();
            self.early_commit = false;
        }
        let mut flushed = now;
        let mut scratch = std::mem::take(&mut self.flush_scratch);
        hier.take_dirty_lines_into(&mut scratch);
        for line in &scratch {
            flushed = flushed.max(self.absorb(line.addr, line.value, mem, now));
        }
        self.flush_scratch = scratch;
        // Page write-back of every dirtied page (concurrent across banks);
        // retain the entry.
        let dirty_pages: Vec<LineAddr> = self
            .table
            .iter()
            .filter(|(_, e)| !e.is_clean())
            .map(|(k, _)| k)
            .collect();
        let mut t = flushed;
        for key in dirty_pages {
            let page = PageAddr::new(key.raw());
            let done = mem.write_bulk(
                flushed,
                page.first_line(),
                PAGE_BYTES,
                AccessClass::ShadowPageWriteBack,
            );
            t = t.max(done);
            self.page_writebacks.incr();
            let entry = self.table.peek_mut(key).expect("listed above");
            for (idx, value) in entry.delta.drain() {
                mem.state_mut()
                    .write_line(LineAddr::new(page.first_line().raw() + idx), value);
            }
        }
        // Untracked overflow lines are applied directly.
        for (addr, value) in std::mem::take(&mut self.overflow) {
            t = t.max(mem.write(flushed, addr, value, AccessClass::RedoApplyWrite));
        }
        let committed = self.epochs.commit();
        self.epochs.persist(committed);
        self.commits.incr();
        self.stall_cycles.add(t.saturating_since(now).raw());
        self.telemetry
            .record(now, None, EventKind::EpochCommit { eid: committed });
        self.telemetry
            .record(t, None, EventKind::EpochPersist { eid: committed });
        // Overflow during the flush itself was drained above; the epoch
        // that just committed needs no further forced commit.
        self.early_commit = false;
        BoundaryOutcome {
            committed,
            stall_until: Some(t),
        }
    }

    /// Canonical memory holds the last commit; shadow pages and the table
    /// are discarded.
    fn crash_recover(&mut self, _: &mut Nvm, now: Cycle) -> RecoveryOutcome {
        self.table.clear();
        self.overflow.clear();
        self.early_commit = false;
        let persisted = self.epochs.persisted();
        self.epochs.resume_after_recovery();
        RecoveryOutcome {
            recovered_to: persisted,
            entries_applied: 0,
            completed_at: now,
        }
    }

    fn stats(&self) -> SchemeStats {
        SchemeStats {
            commits: self.commits.get(),
            forced_commits: self.forced_commits.get(),
            log_entries: self.cow_copies.get() + self.shadow_bytes.get() / 64,
            log_bytes_written: self.cow_copies.get() * PAGE_BYTES + self.shadow_bytes.get(),
            log_bytes_live: self.table.len() as u64 * PAGE_BYTES,
            buffer_flushes: 0,
            buffer_flushes_forced: 0,
            stall_cycles: self.stall_cycles.get(),
        }
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn telemetry_gauges(&self) -> Vec<(&'static str, f64)> {
        vec![("shadow_table_occupancy", self.table.len() as f64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picl_types::config::NvmConfig;
    use picl_types::time::ClockDomain;
    use picl_types::SystemConfig;

    fn rig() -> (ShadowPaging, Hierarchy, Nvm) {
        (
            ShadowPaging::new(&TableConfig::paper_default()),
            Hierarchy::new(&SystemConfig::paper_single_core()),
            Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000)),
        )
    }

    fn evict(s: &mut ShadowPaging, m: &mut Nvm, line: u64, value: u64) {
        s.on_dirty_eviction(
            &EvictionEvent {
                addr: LineAddr::new(line),
                value,
                eid: None,
            },
            m,
            Cycle(0),
        );
    }

    #[test]
    fn first_eviction_cows_the_page() {
        let (mut s, _, mut m) = rig();
        evict(&mut s, &mut m, 5, 55);
        assert_eq!(s.cow_count(), 1);
        assert_eq!(m.stats().ops(AccessClass::CowPageCopy), 1);
        // Same page again: no new CoW.
        evict(&mut s, &mut m, 6, 66);
        assert_eq!(s.cow_count(), 1);
        assert_eq!(s.table_occupancy(), 1);
        // Canonical untouched.
        assert_eq!(m.state().read_line(LineAddr::new(5)), 0);
    }

    #[test]
    fn one_entry_covers_64_lines() {
        let (mut s, _, mut m) = rig();
        for i in 0..64 {
            evict(&mut s, &mut m, i, i);
        }
        assert_eq!(s.table_occupancy(), 1);
        assert_eq!(s.cow_count(), 1);
    }

    #[test]
    fn forward_read_sees_shadowed_lines_only() {
        let (mut s, _, mut m) = rig();
        evict(&mut s, &mut m, 5, 55);
        let (v, _) = s.forward_read(LineAddr::new(5), &mut m, Cycle(0)).unwrap();
        assert_eq!(v, 55);
        // Line 6 shares the page but was never overwritten.
        assert!(s.forward_read(LineAddr::new(6), &mut m, Cycle(0)).is_none());
    }

    #[test]
    fn commit_writes_pages_back_and_retains_entries() {
        let (mut s, mut h, mut m) = rig();
        evict(&mut s, &mut m, 5, 55);
        let out = s.on_epoch_boundary(&mut h, &mut m, Cycle(0));
        assert!(out.stall_until.is_some());
        assert_eq!(m.state().read_line(LineAddr::new(5)), 55);
        assert_eq!(s.table_occupancy(), 1, "entry retained after commit");
        // Next epoch write to the same page: no CoW again.
        evict(&mut s, &mut m, 7, 77);
        assert_eq!(s.cow_count(), 1);
    }

    #[test]
    fn full_set_of_dirty_pages_forces_commit() {
        let (mut s, _, mut m) = rig();
        let sets = 384u64;
        // 17 dirty pages in the same table set (page stride = sets).
        for k in 0..17u64 {
            evict(&mut s, &mut m, k * sets * 64, k);
        }
        assert!(s.wants_early_commit());
    }

    #[test]
    fn clean_retained_entries_are_reclaimable() {
        let (mut s, mut h, mut m) = rig();
        let sets = 384u64;
        for k in 0..16u64 {
            evict(&mut s, &mut m, k * sets * 64, k);
        }
        // Commit: all 16 entries retained but clean.
        s.on_epoch_boundary(&mut h, &mut m, Cycle(0));
        // A 17th page in the same set replaces a clean entry silently.
        evict(&mut s, &mut m, 16 * sets * 64, 99);
        assert!(!s.wants_early_commit());
        assert_eq!(s.stats().forced_commits, 0);
    }

    #[test]
    fn recovery_discards_uncommitted_shadows() {
        let (mut s, mut h, mut m) = rig();
        evict(&mut s, &mut m, 5, 55);
        s.on_epoch_boundary(&mut h, &mut m, Cycle(0));
        evict(&mut s, &mut m, 5, 56); // uncommitted epoch 2
        let out = s.crash_recover(&mut m, Cycle(10));
        assert_eq!(out.recovered_to, EpochId(1));
        assert_eq!(m.state().read_line(LineAddr::new(5)), 55);
        assert_eq!(s.table_occupancy(), 0);
    }
}
