//! Property tests for the baseline schemes: each redo-based scheme's
//! forwarded reads must always reflect the newest absorbed value, and its
//! commit must install exactly the absorbed values into canonical memory.

use proptest::prelude::*;

use picl_baselines::{Journaling, ShadowPaging, ThyNvm};
use picl_cache::{ConsistencyScheme, EvictionEvent, Hierarchy};
use picl_nvm::Nvm;
use picl_types::time::ClockDomain;
use picl_types::{config::NvmConfig, config::TableConfig, Cycle, LineAddr, SystemConfig};

fn mem() -> Nvm {
    Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000))
}

fn hier() -> Hierarchy {
    Hierarchy::new(&SystemConfig::paper_single_core())
}

fn evict(s: &mut dyn ConsistencyScheme, m: &mut Nvm, line: u64, value: u64) {
    s.on_dirty_eviction(
        &EvictionEvent {
            addr: LineAddr::new(line),
            value,
            eid: None,
        },
        m,
        Cycle(0),
    );
}

/// Reference semantics shared by all redo schemes: after a sequence of
/// absorbed evictions, a read of any line must see the newest absorbed
/// value (from the scheme) or the canonical value (from memory).
fn check_read_coherence(
    scheme: &mut dyn ConsistencyScheme,
    m: &mut Nvm,
    expected: &std::collections::HashMap<u64, u64>,
) -> Result<(), TestCaseError> {
    for (&line, &value) in expected {
        let got = match scheme.forward_read(LineAddr::new(line), m, Cycle(0)) {
            Some((v, _)) => v,
            None => m.state().read_line(LineAddr::new(line)),
        };
        prop_assert_eq!(got, value, "line {} stale", line);
    }
    Ok(())
}

fn eviction_seq() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec(((0u64..2000), (1u64..u64::MAX)), 1..120)
}

proptest! {
    /// Journaling: reads coherent mid-epoch; commit installs every value.
    #[test]
    fn journaling_read_and_commit_coherence(seq in eviction_seq()) {
        let mut s = Journaling::new(&TableConfig::paper_default());
        let mut m = mem();
        let mut h = hier();
        let mut expected = std::collections::HashMap::new();
        for &(line, value) in &seq {
            evict(&mut s, &mut m, line, value);
            expected.insert(line, value);
        }
        check_read_coherence(&mut s, &mut m, &expected)?;
        s.on_epoch_boundary(&mut h, &mut m, Cycle(0));
        for (&line, &value) in &expected {
            prop_assert_eq!(m.state().read_line(LineAddr::new(line)), value);
        }
        prop_assert_eq!(s.table_occupancy(), 0);
    }

    /// Shadow Paging: same contract, page-granularity implementation.
    #[test]
    fn shadow_read_and_commit_coherence(seq in eviction_seq()) {
        let mut s = ShadowPaging::new(&TableConfig::paper_default());
        let mut m = mem();
        let mut h = hier();
        let mut expected = std::collections::HashMap::new();
        for &(line, value) in &seq {
            evict(&mut s, &mut m, line, value);
            expected.insert(line, value);
        }
        check_read_coherence(&mut s, &mut m, &expected)?;
        s.on_epoch_boundary(&mut h, &mut m, Cycle(0));
        for (&line, &value) in &expected {
            prop_assert_eq!(m.state().read_line(LineAddr::new(line)), value);
        }
    }

    /// ThyNVM: same contract across the dual tables and the one-epoch
    /// apply lag (values land in canonical by the *second* boundary).
    #[test]
    fn thynvm_read_and_commit_coherence(seq in eviction_seq()) {
        let mut s = ThyNvm::new(&TableConfig::paper_default());
        let mut m = mem();
        let mut h = hier();
        let mut expected = std::collections::HashMap::new();
        for &(line, value) in &seq {
            evict(&mut s, &mut m, line, value);
            expected.insert(line, value);
        }
        check_read_coherence(&mut s, &mut m, &expected)?;
        s.on_epoch_boundary(&mut h, &mut m, Cycle(0));
        s.on_epoch_boundary(&mut h, &mut m, Cycle(1000));
        for (&line, &value) in &expected {
            prop_assert_eq!(m.state().read_line(LineAddr::new(line)), value);
        }
        prop_assert_eq!(s.block_occupancy() + s.page_occupancy(), 0);
    }

    /// All redo schemes: a crash before any commit leaves canonical memory
    /// untouched by the absorbed values.
    #[test]
    fn uncommitted_evictions_never_reach_canonical(seq in eviction_seq()) {
        let table = TableConfig::paper_default();
        let schemes: Vec<Box<dyn ConsistencyScheme>> = vec![
            Box::new(Journaling::new(&table)),
            Box::new(ShadowPaging::new(&table)),
            Box::new(ThyNvm::new(&table)),
        ];
        for mut s in schemes {
            let mut m = mem();
            for &(line, value) in &seq {
                evict(s.as_mut(), &mut m, line, value);
            }
            s.crash_recover(&mut m, Cycle(0));
            for &(line, _) in &seq {
                prop_assert_eq!(
                    m.state().read_line(LineAddr::new(line)),
                    0,
                    "{}: uncommitted eviction leaked to canonical line {}",
                    s.name(), line
                );
            }
        }
    }
}
