//! A vendored, dependency-free stand-in for the `criterion` crate.
//!
//! Implements exactly what `benches/micro.rs` uses: [`Criterion`],
//! [`BenchmarkGroup`] (`throughput`, `sample_size`, `bench_function`,
//! `finish`), [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`Throughput`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock loop: one untimed warm-up call to
//! size the iteration count toward a ~100 ms budget, then `sample_size`
//! timed samples; the report prints the per-iteration mean, min, and
//! (when a throughput was declared) elements or bytes per second. There
//! is no outlier analysis, no comparison to saved baselines, and no HTML
//! output — it exists so `cargo bench` gives useful numbers in a hermetic
//! build environment.
//!
//! When the binary is invoked with `--test` (as `cargo test --benches`
//! does), every routine is run exactly once, untimed, so benches act as
//! smoke tests.

use std::time::{Duration, Instant};

/// Per-sample iteration sizing hint (accepted for API compatibility; the
/// shim times whole samples either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many iterations per setup (cheap input).
    SmallInput,
    /// Few iterations per setup (expensive input).
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted for API compatibility;
    /// only `--test` is honored, via [`Criterion::default`]).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures one routine and prints its report line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{}/{}: ok (test mode)", self.name, id);
            return self;
        }
        let (mean, min) = bencher.summarize();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>12}/s", format_rate(n as f64 / (mean * 1e-9)))
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:>10}B/s", format_rate(n as f64 / (mean * 1e-9)))
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<28} mean {:>12} min {:>12}{}",
            self.name,
            id,
            format_ns(mean),
            format_ns(min),
            rate
        );
        self
    }

    /// Ends the group (upstream writes reports here; the shim prints as it
    /// goes, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    /// (total duration, iterations) per sample.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        let iters = Self::calibrate(|| {
            let start = Instant::now();
            std::hint::black_box(routine());
            start.elapsed()
        });
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push((start.elapsed(), iters));
        }
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let iters = Self::calibrate(|| {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            start.elapsed()
        });
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples.push((start.elapsed(), iters));
        }
    }

    /// One warm-up call sizes per-sample iteration counts so each sample
    /// takes roughly `BUDGET / sample_size`.
    fn calibrate(warmup: impl FnOnce() -> Duration) -> u64 {
        const SAMPLE_BUDGET: Duration = Duration::from_millis(5);
        let once = warmup().max(Duration::from_nanos(1));
        (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64
    }

    /// (mean ns/iter, min ns/iter) over all samples.
    fn summarize(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut total_ns = 0.0;
        let mut total_iters = 0.0;
        for &(dur, iters) in &self.samples {
            let per = dur.as_nanos() as f64 / iters as f64;
            min = min.min(per);
            total_ns += dur.as_nanos() as f64;
            total_iters += iters as f64;
        }
        if total_iters == 0.0 {
            (0.0, 0.0)
        } else {
            (total_ns / total_iters, min)
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
        };
        let mut calls = 0u64;
        let mut group = c.benchmark_group("shim");
        group.sample_size(2).throughput(Throughput::Elements(1));
        group.bench_function("counter", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
        };
        let mut total = 0u64;
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |v| total += v, BatchSize::SmallInput)
        });
        assert!(total > 0);
        assert_eq!(total % 3, 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 50,
            test_mode: true,
        };
        let mut calls = 0u64;
        let mut group = c.benchmark_group("shim");
        group.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn formatting_scales() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("us"));
        assert!(format_ns(12_300_000.0).contains("ms"));
        assert!(format_ns(2.3e9).contains(" s"));
        assert!(format_rate(5.0e9).contains('G'));
        assert!(format_rate(5.0e6).contains('M'));
        assert!(format_rate(5.0e3).contains('K'));
        assert!(format_rate(5.0) == "5.0");
    }
}
