//! Property tests: hierarchy-wide invariants under randomized multicore
//! access sequences.
//!
//! A reference map tracks the freshest value of every line; at every step,
//! the hierarchy's cached copy (if any) and the NVM copy must together
//! cover it: the cached copy always matches the reference, and a line
//! absent from all caches must match in NVM (for an in-place scheme).

use proptest::prelude::*;
use proptest::strategy::ValueTree;

use picl_cache::hierarchy::AccessType;
use picl_cache::{
    BoundaryOutcome, ConsistencyScheme, EvictRoute, EvictionEvent, Hierarchy, RecoveryOutcome,
    SchemeStats, StoreDirective, StoreEvent,
};
use picl_nvm::Nvm;
use picl_types::time::ClockDomain;
use picl_types::{config::NvmConfig, CoreId, Cycle, EpochId, LineAddr, SystemConfig};

/// Write-through-to-canonical scheme: every eviction in place, no extras.
#[derive(Debug, Default)]
struct InPlace;

impl ConsistencyScheme for InPlace {
    fn name(&self) -> &'static str {
        "in-place"
    }
    fn system_eid(&self) -> EpochId {
        EpochId(1)
    }
    fn persisted_eid(&self) -> EpochId {
        EpochId::ZERO
    }
    fn on_store(&mut self, _: &StoreEvent, _: &mut Nvm, _: Cycle) -> StoreDirective {
        StoreDirective::default()
    }
    fn on_dirty_eviction(&mut self, _: &EvictionEvent, _: &mut Nvm, _: Cycle) -> EvictRoute {
        EvictRoute::InPlace
    }
    fn on_epoch_boundary(&mut self, _: &mut Hierarchy, _: &mut Nvm, _: Cycle) -> BoundaryOutcome {
        BoundaryOutcome {
            committed: EpochId(1),
            stall_until: None,
        }
    }
    fn crash_recover(&mut self, _: &mut Nvm, now: Cycle) -> RecoveryOutcome {
        RecoveryOutcome {
            recovered_to: EpochId::ZERO,
            entries_applied: 0,
            completed_at: now,
        }
    }
    fn stats(&self) -> SchemeStats {
        SchemeStats::default()
    }
}

fn tiny_cfg(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::paper_multicore(cores);
    cfg.l1 = picl_types::config::CacheConfig::new(512, 2, Cycle(1));
    cfg.l2 = picl_types::config::CacheConfig::new(2048, 4, Cycle(4));
    cfg.llc_per_core = picl_types::config::CacheConfig::new(8192, 4, Cycle(30));
    cfg
}

#[derive(Debug, Clone)]
struct Op {
    core: usize,
    line: u64,
    store: bool,
}

fn ops_strategy(cores: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        ((0..cores), (0u64..600), any::<bool>()).prop_map(|(core, line, store)| Op {
            core,
            line,
            store,
        }),
        1..600,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cached values always match the reference; after the run, flushing
    /// everything makes NVM match the reference exactly (nothing lost,
    /// nothing duplicated, across cores and recalls).
    #[test]
    fn no_value_is_ever_lost(cores in proptest::sample::select(vec![1usize, 2, 4]), seed in any::<u64>()) {
        let cfg = tiny_cfg(cores);
        let mut hier = Hierarchy::new(&cfg);
        let mut scheme = InPlace;
        let mut mem = Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000));
        let mut reference = std::collections::HashMap::new();

        let ops = {
            let mut runner = proptest::test_runner::TestRunner::deterministic();
            // Derive the op sequence from the seed for shrinkability-free
            // but reproducible sequences.
            let _ = seed;
            ops_strategy(cores).new_tree(&mut runner).unwrap().current()
        };

        let mut token = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let access = if op.store {
                token += 1;
                reference.insert(op.line, token);
                AccessType::Store { new_value: token }
            } else {
                AccessType::Load
            };
            hier.access(
                CoreId(op.core),
                LineAddr::new(op.line),
                access,
                &mut scheme,
                &mut mem,
                Cycle(i as u64 * 10),
            );
            if let Some(cached) = hier.cached_value(LineAddr::new(op.line)) {
                let want = reference.get(&op.line).copied()
                    .unwrap_or_else(|| mem.state().read_line(LineAddr::new(op.line)));
                prop_assert_eq!(cached, want, "line {} stale after op {}", op.line, i);
            }
        }

        // Drain everything: NVM must now equal the reference.
        let now = Cycle(1_000_000_000);
        for line in hier.take_dirty_lines() {
            mem.write(now, line.addr, line.value, picl_nvm::AccessClass::WriteBack);
        }
        for (&line, &value) in &reference {
            prop_assert_eq!(
                mem.state().read_line(LineAddr::new(line)),
                value,
                "line {} lost", line
            );
        }
    }

    /// The directory invariant: after any sequence, every line is cached
    /// at most once across all private caches (single-owner coherence).
    #[test]
    fn single_owner_after_any_sequence(cores in proptest::sample::select(vec![2usize, 4]), n_ops in 10usize..400) {
        let cfg = tiny_cfg(cores);
        let mut hier = Hierarchy::new(&cfg);
        let mut scheme = InPlace;
        let mut mem = Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000));
        let mut rng = picl_types::Rng::new(n_ops as u64);
        for i in 0..n_ops {
            let core = rng.below(cores as u64) as usize;
            let line = rng.below(64); // tight set: heavy sharing
            let access = if rng.chance(0.5) {
                AccessType::Store { new_value: i as u64 + 1 }
            } else {
                AccessType::Load
            };
            hier.access(
                CoreId(core),
                LineAddr::new(line),
                access,
                &mut scheme,
                &mut mem,
                Cycle(i as u64 * 7),
            );
        }
        // take_dirty_lines must never yield the same address twice — a
        // duplicate would mean two live copies of one line.
        let flushed = hier.take_dirty_lines();
        let mut addrs: Vec<_> = flushed.iter().map(|f| f.addr).collect();
        let before = addrs.len();
        addrs.sort_unstable();
        addrs.dedup();
        prop_assert_eq!(before, addrs.len(), "duplicate cached copies detected");
    }
}
