//! Property tests: the epoch-indexed dirty-line fast path against the
//! brute-force full-scan reference.
//!
//! Random interleavings of tagged stores, loads (conflict pressure forces
//! evictions and back-invalidations), ACS drains, full flushes, and
//! crashes must leave the fast drains returning *exactly* the line set a
//! full scan of every cache slot would, and the O(1) dirty counters equal
//! to a recount.

use proptest::prelude::*;

use picl_cache::hierarchy::AccessType;
use picl_cache::{
    BoundaryOutcome, ConsistencyScheme, EvictRoute, EvictionEvent, Hierarchy, RecoveryOutcome,
    SchemeStats, StoreDirective, StoreEvent,
};
use picl_nvm::Nvm;
use picl_types::time::ClockDomain;
use picl_types::{config::NvmConfig, CoreId, Cycle, EpochId, LineAddr, SystemConfig};

/// In-place scheme that tags stores with a settable epoch (or leaves them
/// untagged), standing in for PiCL's cache-driven logging.
#[derive(Debug, Default)]
struct Tagger {
    tag_with: Option<EpochId>,
}

impl ConsistencyScheme for Tagger {
    fn name(&self) -> &'static str {
        "tagger"
    }
    fn system_eid(&self) -> EpochId {
        EpochId(1)
    }
    fn persisted_eid(&self) -> EpochId {
        EpochId::ZERO
    }
    fn on_store(&mut self, _: &StoreEvent, _: &mut Nvm, _: Cycle) -> StoreDirective {
        StoreDirective {
            new_eid: self.tag_with,
        }
    }
    fn on_dirty_eviction(&mut self, _: &EvictionEvent, _: &mut Nvm, _: Cycle) -> EvictRoute {
        EvictRoute::InPlace
    }
    fn on_epoch_boundary(&mut self, _: &mut Hierarchy, _: &mut Nvm, _: Cycle) -> BoundaryOutcome {
        BoundaryOutcome {
            committed: EpochId(1),
            stall_until: None,
        }
    }
    fn crash_recover(&mut self, _: &mut Nvm, now: Cycle) -> RecoveryOutcome {
        RecoveryOutcome {
            recovered_to: EpochId::ZERO,
            entries_applied: 0,
            completed_at: now,
        }
    }
    fn stats(&self) -> SchemeStats {
        SchemeStats::default()
    }
}

fn tiny_cfg(cores: usize) -> SystemConfig {
    let mut cfg = SystemConfig::paper_multicore(cores);
    cfg.l1 = picl_types::config::CacheConfig::new(512, 2, Cycle(1));
    cfg.l2 = picl_types::config::CacheConfig::new(2048, 4, Cycle(4));
    cfg.llc_per_core = picl_types::config::CacheConfig::new(8192, 4, Cycle(30));
    cfg
}

#[derive(Debug, Clone)]
enum Op {
    /// Store on `core` to `line`, tagged `tag` (0 = untagged).
    Store { core: usize, line: u64, tag: u64 },
    /// Load on `core` from `line` (evictions, recalls, ownership moves).
    Load { core: usize, line: u64 },
    /// ACS pass for epoch `eid`: fast drain must equal the read-only
    /// reference scan.
    Acs { eid: u64 },
    /// Synchronous full flush (the baselines' boundary drain).
    FlushAll,
    /// Power loss: all volatile state and the index disappear.
    Crash,
}

fn op_strategy(cores: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => ((0..cores), (0u64..600), (0u64..4))
            .prop_map(|(core, line, tag)| Op::Store { core, line, tag }),
        3 => ((0..cores), (0u64..600)).prop_map(|(core, line)| Op::Load { core, line }),
        2 => (0u64..4).prop_map(|eid| Op::Acs { eid }),
        1 => Just(Op::FlushAll),
        1 => Just(Op::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fast drains return exactly the full-scan line set, and the O(1)
    /// counters match recounts, at every drain point of any interleaving.
    #[test]
    fn epoch_index_matches_full_scan(
        cores in proptest::sample::select(vec![1usize, 2, 4]),
        ops in proptest::collection::vec(op_strategy(4), 1..500),
    ) {
        let cfg = tiny_cfg(cores);
        let mut hier = Hierarchy::new(&cfg);
        let mut scheme = Tagger::default();
        let mut mem = Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000));

        for (i, op) in ops.iter().enumerate() {
            let now = Cycle(i as u64 * 10);
            match *op {
                Op::Store { core, line, tag } => {
                    scheme.tag_with = (tag != 0).then_some(EpochId(tag));
                    hier.access(
                        CoreId(core % cores),
                        LineAddr::new(line),
                        AccessType::Store { new_value: i as u64 + 1 },
                        &mut scheme,
                        &mut mem,
                        now,
                    );
                }
                Op::Load { core, line } => {
                    hier.access(
                        CoreId(core % cores),
                        LineAddr::new(line),
                        AccessType::Load,
                        &mut scheme,
                        &mut mem,
                        now,
                    );
                }
                Op::Acs { eid } => {
                    let want = hier.reference_lines_with_eid(EpochId(eid));
                    let got = hier.take_lines_with_eid(EpochId(eid));
                    prop_assert_eq!(got, want, "ACS drain diverged at op {}", i);
                }
                Op::FlushAll => {
                    let want = hier.reference_dirty_lines();
                    let got = hier.take_dirty_lines();
                    prop_assert_eq!(got, want, "full flush diverged at op {}", i);
                    prop_assert_eq!(hier.dirty_line_count(), 0);
                }
                Op::Crash => {
                    hier.invalidate_all();
                    prop_assert_eq!(hier.dirty_line_count(), 0);
                    prop_assert!(hier.take_dirty_lines().is_empty());
                }
            }
            // The O(1) census must agree with a recount at every step.
            let reference = hier.reference_dirty_lines();
            prop_assert_eq!(
                hier.dirty_line_count(),
                reference.len(),
                "dirty count diverged at op {}", i
            );
            let tagged = reference.iter().filter(|f| f.eid.is_some()).count();
            prop_assert_eq!(
                hier.tagged_dirty_count(),
                tagged,
                "tagged count diverged at op {}", i
            );
        }

        // Terminal drain: whatever remains must match the reference too.
        let want = hier.reference_dirty_lines();
        prop_assert_eq!(hier.take_dirty_lines(), want);
        prop_assert_eq!(hier.dirty_line_count(), 0);
    }

    /// A hierarchy in reference-scan mode and one on the fast path fed the
    /// same operations produce identical drains — the machinery `picl
    /// bench` relies on for its differential check.
    #[test]
    fn reference_mode_is_equivalent(
        ops in proptest::collection::vec(op_strategy(2), 1..300),
    ) {
        let cfg = tiny_cfg(2);
        let mut fast = Hierarchy::new(&cfg);
        let mut reference = Hierarchy::new(&cfg);
        reference.set_reference_scan(true);
        let mut scheme = Tagger::default();
        let mut mem_a = Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000));
        let mut mem_b = Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000));

        for (i, op) in ops.iter().enumerate() {
            let now = Cycle(i as u64 * 10);
            match *op {
                Op::Store { core, line, tag } => {
                    scheme.tag_with = (tag != 0).then_some(EpochId(tag));
                    let access = AccessType::Store { new_value: i as u64 + 1 };
                    let a = fast.access(CoreId(core % 2), LineAddr::new(line), access,
                        &mut scheme, &mut mem_a, now);
                    let b = reference.access(CoreId(core % 2), LineAddr::new(line), access,
                        &mut scheme, &mut mem_b, now);
                    prop_assert_eq!(a, b);
                }
                Op::Load { core, line } => {
                    let a = fast.access(CoreId(core % 2), LineAddr::new(line), AccessType::Load,
                        &mut scheme, &mut mem_a, now);
                    let b = reference.access(CoreId(core % 2), LineAddr::new(line), AccessType::Load,
                        &mut scheme, &mut mem_b, now);
                    prop_assert_eq!(a, b);
                }
                Op::Acs { eid } => {
                    prop_assert_eq!(
                        fast.take_lines_with_eid(EpochId(eid)),
                        reference.take_lines_with_eid(EpochId(eid)),
                        "ACS drains diverged at op {}", i
                    );
                }
                Op::FlushAll => {
                    prop_assert_eq!(fast.take_dirty_lines(), reference.take_dirty_lines());
                }
                Op::Crash => {
                    fast.invalidate_all();
                    reference.invalidate_all();
                }
            }
            prop_assert_eq!(fast.dirty_line_count(), reference.dirty_line_count());
        }
    }
}
