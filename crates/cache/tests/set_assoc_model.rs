//! Property tests: `SetAssocCache` against a reference model.
//!
//! The reference is a per-set vector ordered by recency; the cache must
//! agree on membership, payloads, and LRU victim choice for arbitrary
//! operation sequences.

use proptest::prelude::*;

use picl_cache::set_assoc::Insertion;
use picl_cache::SetAssocCache;
use picl_types::LineAddr;

#[derive(Debug, Clone)]
enum Op {
    Get(u64),
    Insert(u64, u32),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64).prop_map(Op::Get),
        ((0u64..64), any::<u32>()).prop_map(|(a, v)| Op::Insert(a, v)),
        (0u64..64).prop_map(Op::Remove),
    ]
}

/// Reference: per set, most-recently-used last.
#[derive(Debug, Default)]
struct ModelSet {
    entries: Vec<(u64, u32)>,
}

struct Model {
    sets: Vec<ModelSet>,
    ways: usize,
}

impl Model {
    fn new(sets: usize, ways: usize) -> Self {
        Model {
            sets: (0..sets).map(|_| ModelSet::default()).collect(),
            ways,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        (addr % self.sets.len() as u64) as usize
    }

    fn get(&mut self, addr: u64) -> Option<u32> {
        let si = self.set_of(addr);
        let set = &mut self.sets[si];
        let pos = set.entries.iter().position(|(a, _)| *a == addr)?;
        let e = set.entries.remove(pos);
        let v = e.1;
        set.entries.push(e);
        Some(v)
    }

    fn insert(&mut self, addr: u64, value: u32) -> Option<u64> {
        let ways = self.ways;
        let si = self.set_of(addr);
        let set = &mut self.sets[si];
        if let Some(pos) = set.entries.iter().position(|(a, _)| *a == addr) {
            set.entries.remove(pos);
            set.entries.push((addr, value));
            return None;
        }
        let victim = if set.entries.len() == ways {
            Some(set.entries.remove(0).0)
        } else {
            None
        };
        set.entries.push((addr, value));
        victim
    }

    fn remove(&mut self, addr: u64) -> Option<u32> {
        let si = self.set_of(addr);
        let set = &mut self.sets[si];
        let pos = set.entries.iter().position(|(a, _)| *a == addr)?;
        Some(set.entries.remove(pos).1)
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        sets in 1usize..8,
        ways in 1usize..5,
    ) {
        let mut cache = SetAssocCache::new(sets, ways);
        let mut model = Model::new(sets, ways);
        for op in ops {
            match op {
                Op::Get(a) => {
                    let got = cache.get(LineAddr::new(a)).map(|v| *v);
                    prop_assert_eq!(got, model.get(a), "get({})", a);
                }
                Op::Insert(a, v) => {
                    let got = cache.insert(LineAddr::new(a), v);
                    let expected_victim = model.insert(a, v);
                    match (got, expected_victim) {
                        (Insertion::Evicted(va, _), Some(ma)) => {
                            prop_assert_eq!(va, LineAddr::new(ma), "victim for insert({})", a);
                        }
                        (Insertion::Fit, None) | (Insertion::Replaced(_), None) => {}
                        (got, expected) => prop_assert!(
                            false,
                            "insert({}) diverged: cache {:?}, model victim {:?}",
                            a, got, expected
                        ),
                    }
                }
                Op::Remove(a) => {
                    prop_assert_eq!(cache.remove(LineAddr::new(a)), model.remove(a), "remove({})", a);
                }
            }
            // Capacity invariant.
            prop_assert!(cache.len() <= cache.capacity());
        }
        // Final contents agree.
        let mut cache_entries: Vec<(u64, u32)> =
            cache.iter().map(|(a, v)| (a.raw(), *v)).collect();
        let mut model_entries: Vec<(u64, u32)> = model
            .sets
            .iter()
            .flat_map(|s| s.entries.iter().copied())
            .collect();
        cache_entries.sort_unstable();
        model_entries.sort_unstable();
        prop_assert_eq!(cache_entries, model_entries);
    }
}
