//! Property test: [`PackedLineCache`] against the retained reference
//! structure, [`SetAssocCache<CacheLineMeta>`].
//!
//! The packed table is the hot-path representation (flat word arrays,
//! bitfield metadata); the struct cache is the readable reference the
//! rest of the crate is specified against. Arbitrary interleavings of
//! the operations the hierarchy actually performs — fills, stores that
//! re-tag a line's EID, capacity evictions, asynchronous cache scans
//! draining one epoch, and crash-style clears — must keep the two
//! structures in lockstep: same hits, same victims, same survivors.

use proptest::prelude::*;

use picl_cache::packed::{decode_line, encode_line};
use picl_cache::set_assoc::Insertion;
use picl_cache::{CacheLineMeta, PackedLineCache, SetAssocCache};
use picl_types::{EpochId, LineAddr};

const SETS: usize = 4;
const WAYS: usize = 2;

#[derive(Debug, Clone)]
enum Op {
    /// A load hit/miss probe: hits refresh recency in both structures.
    Access(u64),
    /// A fill or store: insert (or overwrite) the line with this metadata.
    Insert(u64, CacheLineMeta),
    /// A store to a resident line: mark dirty and re-tag its EID in place.
    Store(u64, u64, u64),
    /// An invalidation: remove the line outright.
    Remove(u64),
    /// The asynchronous cache scan: extract every dirty line tagged `eid`,
    /// leaving it clean and untagged in place.
    Acs(u64),
    /// A crash: all volatile state is lost.
    Crash,
}

fn meta_strategy() -> impl Strategy<Value = CacheLineMeta> {
    (any::<u64>(), any::<bool>(), 0u64..16).prop_map(|(value, dirty, eid)| CacheLineMeta {
        value,
        dirty,
        // Odd draws are untagged: lines filled from memory have no EID.
        eid: (eid % 2 == 0).then_some(EpochId(eid / 2)),
    })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..32).prop_map(Op::Access),
        ((0u64..32), meta_strategy()).prop_map(|(a, m)| Op::Insert(a, m)),
        ((0u64..32), any::<u64>(), 0u64..8).prop_map(|(a, v, e)| Op::Store(a, v, e)),
        (0u64..32).prop_map(Op::Remove),
        (0u64..8).prop_map(Op::Acs),
        Just(Op::Crash),
    ]
}

/// Every resident line, sorted by address, decoded to plain metadata.
fn packed_contents(packed: &PackedLineCache) -> Vec<(LineAddr, CacheLineMeta)> {
    let mut out: Vec<_> = packed
        .iter()
        .map(|(addr, word, value)| (addr, decode_line(word, value)))
        .collect();
    out.sort_unstable_by_key(|&(a, _)| a);
    out
}

fn struct_contents(cache: &SetAssocCache<CacheLineMeta>) -> Vec<(LineAddr, CacheLineMeta)> {
    let mut out: Vec<_> = cache.iter().map(|(addr, m)| (addr, *m)).collect();
    out.sort_unstable_by_key(|&(a, _)| a);
    out
}

proptest! {
    #[test]
    fn packed_vs_struct(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut packed = PackedLineCache::new(SETS, WAYS);
        let mut model: SetAssocCache<CacheLineMeta> = SetAssocCache::new(SETS, WAYS);

        for op in ops {
            match op {
                Op::Access(raw) => {
                    let addr = LineAddr::new(raw);
                    let packed_hit = packed.probe(addr);
                    let model_hit = model.get(addr).map(|m| *m);
                    prop_assert_eq!(packed_hit.is_some(), model_hit.is_some());
                    if let Some(slot) = packed_hit {
                        packed.touch(slot);
                        prop_assert_eq!(
                            decode_line(packed.word(slot), packed.value(slot)),
                            model_hit.unwrap()
                        );
                    }
                }
                Op::Insert(raw, meta) => {
                    let addr = LineAddr::new(raw);
                    let (word, value) = encode_line(&meta);
                    let packed_out = packed.insert(addr, word, value);
                    let model_out = model.insert(addr, meta);
                    match (packed_out, model_out) {
                        (picl_cache::PackedInsertion::Fit, Insertion::Fit) => {}
                        (
                            picl_cache::PackedInsertion::Replaced { word, value },
                            Insertion::Replaced(old),
                        ) => prop_assert_eq!(decode_line(word, value), old),
                        (
                            picl_cache::PackedInsertion::Evicted { addr, word, value },
                            Insertion::Evicted(m_addr, m_meta),
                        ) => {
                            prop_assert_eq!(addr, m_addr, "victim choice diverged");
                            prop_assert_eq!(decode_line(word, value), m_meta);
                        }
                        (p, m) => {
                            return Err(TestCaseError::fail(format!(
                                "insertion outcome diverged: packed {p:?} vs struct {m:?}"
                            )))
                        }
                    }
                }
                Op::Store(raw, value, eid) => {
                    let addr = LineAddr::new(raw);
                    let slot = packed.probe(addr);
                    let meta = model.get(addr);
                    prop_assert_eq!(slot.is_some(), meta.is_some());
                    if let (Some(slot), Some(meta)) = (slot, meta) {
                        packed.touch(slot);
                        let stored = CacheLineMeta::dirty(value, EpochId(eid));
                        let (word, value) = encode_line(&stored);
                        packed.set_slot(slot, word, value);
                        *meta = stored;
                    }
                }
                Op::Remove(raw) => {
                    let addr = LineAddr::new(raw);
                    let packed_out = packed.remove(addr).map(|(w, v)| decode_line(w, v));
                    let model_out = model.remove(addr);
                    prop_assert_eq!(packed_out, model_out);
                }
                Op::Acs(eid) => {
                    let eid = EpochId(eid);
                    let mut drained_packed = Vec::new();
                    packed.for_each_mut(|addr, word, value| {
                        let meta = decode_line(*word, *value);
                        if meta.dirty && meta.eid == Some(eid) {
                            drained_packed.push((addr, *value));
                            let (w, v) = encode_line(&CacheLineMeta::clean(*value));
                            *word = w;
                            *value = v;
                        }
                    });
                    drained_packed.sort_unstable_by_key(|&(a, _)| a);
                    let mut drained_model = Vec::new();
                    for (addr, meta) in model.iter_mut() {
                        if meta.dirty && meta.eid == Some(eid) {
                            drained_model.push((addr, meta.value));
                            *meta = CacheLineMeta::clean(meta.value);
                        }
                    }
                    drained_model.sort_unstable_by_key(|&(a, _)| a);
                    prop_assert_eq!(drained_packed, drained_model);
                }
                Op::Crash => {
                    packed.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(packed.len(), model.len());
        }
        prop_assert_eq!(packed_contents(&packed), struct_contents(&model));
    }
}
