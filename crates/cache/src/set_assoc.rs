//! A set-associative cache array with LRU replacement.
//!
//! Generic over the per-line payload so the same structure backs private
//! caches (payload [`CacheLineMeta`](crate::line::CacheLineMeta)), the LLC
//! (a directory-augmented payload), and the baselines' translation tables
//! (address-mapping payloads) — the paper configures all of these as
//! set-associative arrays.
//!
//! Storage is one contiguous arena of `sets × ways` slots with a fixed
//! stride per set and a per-set occupancy bitmap, so a lookup touches one
//! cache-resident word plus at most `ways` adjacent entries — no per-set
//! allocations, no pointer chasing on the hit path.

use picl_types::LineAddr;

#[derive(Debug, Clone)]
struct Entry<T> {
    addr: LineAddr,
    payload: T,
    last_use: u64,
}

/// A set-associative, LRU-replaced map from [`LineAddr`] to `T`.
#[derive(Debug, Clone)]
pub struct SetAssocCache<T> {
    /// Contiguous slot arena; set `s` occupies `[s*ways, (s+1)*ways)`.
    slots: Vec<Option<Entry<T>>>,
    /// Per-set occupancy bitmap (bit `w` = slot `s*ways + w` occupied).
    occ: Vec<u64>,
    sets: usize,
    ways: usize,
    len: usize,
    use_clock: u64,
}

impl<T> SetAssocCache<T> {
    /// Creates a cache with `sets` sets of `ways` ways. Power-of-two set
    /// counts index by bit masking (hardware caches); other counts (the
    /// baselines' 384-set translation tables) index by modulo.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or if `ways` exceeds 64 (the
    /// occupancy word width).
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "sets must be nonzero");
        assert!(ways > 0, "ways must be nonzero");
        assert!(ways <= 64, "ways must fit the occupancy word");
        let mut slots = Vec::new();
        slots.resize_with(sets * ways, || None);
        SetAssocCache {
            slots,
            occ: vec![0; sets],
            sets,
            ways,
            len: 0,
            use_clock: 0,
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        let n = self.sets;
        if n.is_power_of_two() {
            (addr.raw() as usize) & (n - 1)
        } else {
            (addr.raw() % n as u64) as usize
        }
    }

    /// Slot index of `addr` within its set's stride, if resident.
    fn find(&self, addr: LineAddr) -> Option<usize> {
        let si = self.set_index(addr);
        let base = si * self.ways;
        let mut occ = self.occ[si];
        while occ != 0 {
            let w = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            let slot = base + w;
            if self.slots[slot]
                .as_ref()
                .expect("occupancy bit set for empty slot")
                .addr
                == addr
            {
                return Some(slot);
            }
        }
        None
    }

    /// Whether `addr` is resident (no LRU update).
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.find(addr).is_some()
    }

    /// Looks up `addr`, updating recency. Returns the payload if resident.
    pub fn get(&mut self, addr: LineAddr) -> Option<&mut T> {
        let slot = self.find(addr)?;
        // The recency clock only advances on hits (and inserts): a miss
        // must not age the resident lines it never touched.
        self.use_clock += 1;
        let e = self.slots[slot].as_mut().expect("found slot is occupied");
        e.last_use = self.use_clock;
        Some(&mut e.payload)
    }

    /// Looks up `addr` without updating recency.
    pub fn peek(&self, addr: LineAddr) -> Option<&T> {
        let slot = self.find(addr)?;
        Some(&self.slots[slot].as_ref().expect("occupied").payload)
    }

    /// Looks up `addr` mutably without updating recency.
    pub fn peek_mut(&mut self, addr: LineAddr) -> Option<&mut T> {
        let slot = self.find(addr)?;
        Some(&mut self.slots[slot].as_mut().expect("occupied").payload)
    }

    /// Inserts `addr` with `payload`, making it most-recently used.
    ///
    /// If `addr` was already resident its payload is replaced and returned
    /// as `Replaced`. If the set was full, the LRU victim is evicted and
    /// returned as `Evicted`.
    pub fn insert(&mut self, addr: LineAddr, payload: T) -> Insertion<T> {
        self.use_clock += 1;
        let clock = self.use_clock;

        if let Some(slot) = self.find(addr) {
            let e = self.slots[slot].as_mut().expect("occupied");
            e.last_use = clock;
            let old = std::mem::replace(&mut e.payload, payload);
            return Insertion::Replaced(old);
        }

        let si = self.set_index(addr);
        let base = si * self.ways;
        let free = !self.occ[si] & Self::way_mask(self.ways);
        if free != 0 {
            let w = free.trailing_zeros() as usize;
            self.occ[si] |= 1 << w;
            self.len += 1;
            self.slots[base + w] = Some(Entry {
                addr,
                payload,
                last_use: clock,
            });
            return Insertion::Fit;
        }

        // Set full: evict the LRU way (use-clock values are unique, so the
        // minimum is unambiguous).
        let mut victim_w = 0;
        let mut victim_use = u64::MAX;
        for w in 0..self.ways {
            let lu = self.slots[base + w].as_ref().expect("full set").last_use;
            if lu < victim_use {
                victim_use = lu;
                victim_w = w;
            }
        }
        let victim = self.slots[base + victim_w]
            .replace(Entry {
                addr,
                payload,
                last_use: clock,
            })
            .expect("full set");
        Insertion::Evicted(victim.addr, victim.payload)
    }

    /// Removes `addr`, returning its payload if it was resident.
    pub fn remove(&mut self, addr: LineAddr) -> Option<T> {
        let slot = self.find(addr)?;
        let si = slot / self.ways;
        let w = slot % self.ways;
        self.occ[si] &= !(1 << w);
        self.len -= 1;
        Some(self.slots[slot].take().expect("occupied").payload)
    }

    fn way_mask(ways: usize) -> u64 {
        if ways == 64 {
            u64::MAX
        } else {
            (1u64 << ways) - 1
        }
    }

    /// Iterates over all resident `(addr, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|e| (e.addr, &e.payload)))
    }

    /// Iterates mutably over all resident `(addr, payload)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut T)> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.as_mut().map(|e| (e.addr, &mut e.payload)))
    }

    /// Removes every entry for which `pred` returns true, yielding them.
    pub fn drain_filter(
        &mut self,
        mut pred: impl FnMut(LineAddr, &T) -> bool,
    ) -> Vec<(LineAddr, T)> {
        let mut out = Vec::new();
        for slot in 0..self.slots.len() {
            let matched = match &self.slots[slot] {
                Some(e) => pred(e.addr, &e.payload),
                None => false,
            };
            if matched {
                let e = self.slots[slot].take().expect("checked occupied");
                let si = slot / self.ways;
                self.occ[si] &= !(1 << (slot % self.ways));
                self.len -= 1;
                out.push((e.addr, e.payload));
            }
        }
        out
    }

    /// Number of resident lines in the set that `addr` maps to.
    pub fn set_len(&self, addr: LineAddr) -> usize {
        self.occ[self.set_index(addr)].count_ones() as usize
    }

    /// Iterates over the `(addr, payload)` pairs in the set `addr` maps to.
    pub fn set_entries(&self, addr: LineAddr) -> impl Iterator<Item = (LineAddr, &T)> {
        let si = self.set_index(addr);
        self.slots[si * self.ways..(si + 1) * self.ways]
            .iter()
            .filter_map(|s| s.as_ref().map(|e| (e.addr, &e.payload)))
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        for occ in &mut self.occ {
            *occ = 0;
        }
        self.len = 0;
    }
}

/// Outcome of [`SetAssocCache::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Insertion<T> {
    /// The line fit without displacing anything.
    Fit,
    /// The line was already resident; its old payload is returned.
    Replaced(T),
    /// The set was full; the LRU `(addr, payload)` was evicted.
    Evicted(LineAddr, T),
}

impl<T> Insertion<T> {
    /// The evicted victim, if any.
    pub fn into_victim(self) -> Option<(LineAddr, T)> {
        match self {
            Insertion::Evicted(a, p) => Some((a, p)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn basic_insert_get() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(matches!(c.insert(addr(1), "a"), Insertion::Fit));
        assert_eq!(c.get(addr(1)), Some(&mut "a"));
        assert_eq!(c.peek(addr(1)), Some(&"a"));
        assert!(c.contains(addr(1)));
        assert!(!c.contains(addr(2)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.capacity(), 8);
    }

    #[test]
    fn replace_returns_old_payload() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(addr(0), 1);
        match c.insert(addr(0), 2) {
            Insertion::Replaced(old) => assert_eq!(old, 1),
            other => panic!("expected Replaced, got {other:?}"),
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways: lines 0, 4, 8 all map to set 0 (4 sets? no: 1 set).
        let mut c = SetAssocCache::new(1, 2);
        c.insert(addr(0), "zero");
        c.insert(addr(1), "one");
        // Touch 0 so 1 becomes LRU.
        c.get(addr(0));
        match c.insert(addr(2), "two") {
            Insertion::Evicted(a, p) => {
                assert_eq!(a, addr(1));
                assert_eq!(p, "one");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(addr(0)));
        assert!(c.contains(addr(2)));
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(addr(0), 0);
        c.insert(addr(1), 1);
        c.peek(addr(0)); // no recency update: 0 stays LRU
        let victim = c.insert(addr(2), 2).into_victim().unwrap();
        assert_eq!(victim.0, addr(0));
    }

    #[test]
    fn missed_get_does_not_touch_lru() {
        // Regression: `get` used to advance the use clock on misses. The
        // clock bump itself never reordered residents, but the contract is
        // that only hits and inserts age the set — pin it: after a storm
        // of misses, the LRU victim must be exactly the line that was
        // least-recently *hit*, as if the misses never happened.
        let mut c = SetAssocCache::new(1, 2);
        c.insert(addr(0), "zero");
        c.insert(addr(1), "one");
        c.get(addr(0)); // 1 is now LRU
        let clock_before_storm = c.use_clock;
        for miss in 100..1100 {
            assert!(c.get(addr(miss)).is_none());
        }
        assert_eq!(
            c.use_clock, clock_before_storm,
            "misses must not advance the recency clock"
        );
        let victim = c.insert(addr(2), "two").into_victim().unwrap();
        assert_eq!(victim.0, addr(1), "miss storm changed the LRU victim");
    }

    #[test]
    fn addresses_map_to_distinct_sets() {
        let mut c = SetAssocCache::new(4, 1);
        for i in 0..4 {
            assert!(matches!(c.insert(addr(i), i), Insertion::Fit));
        }
        assert_eq!(c.len(), 4);
        // Line 4 conflicts with line 0 (same low bits).
        let victim = c.insert(addr(4), 4).into_victim().unwrap();
        assert_eq!(victim.0, addr(0));
    }

    #[test]
    fn remove_and_clear() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(addr(1), 1);
        c.insert(addr(2), 2);
        assert_eq!(c.remove(addr(1)), Some(1));
        assert_eq!(c.remove(addr(1)), None);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn iter_and_drain_filter() {
        let mut c = SetAssocCache::new(4, 2);
        for i in 0..6 {
            c.insert(addr(i), i as i32);
        }
        assert_eq!(c.iter().count(), 6);
        let drained = c.drain_filter(|_, v| v % 2 == 0);
        assert_eq!(drained.len(), 3);
        assert_eq!(c.len(), 3);
        for (_, v) in c.iter() {
            assert!(v % 2 == 1);
        }
    }

    #[test]
    fn iter_mut_mutates_in_place() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(addr(0), 1);
        for (_, v) in c.iter_mut() {
            *v += 10;
        }
        assert_eq!(c.peek(addr(0)), Some(&11));
    }

    #[test]
    fn non_power_of_two_sets_index_by_modulo() {
        let mut c = SetAssocCache::new(3, 1);
        c.insert(addr(0), "a");
        c.insert(addr(1), "b");
        c.insert(addr(2), "c");
        assert_eq!(c.len(), 3);
        // Line 3 maps to set 0, evicting line 0.
        let victim = c.insert(addr(3), "d").into_victim().unwrap();
        assert_eq!(victim.0, addr(0));
    }

    #[test]
    #[should_panic(expected = "sets must be nonzero")]
    fn zero_sets_panics() {
        let _ = SetAssocCache::<()>::new(0, 1);
    }

    #[test]
    fn peek_mut_does_not_touch_lru() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(addr(0), 0);
        c.insert(addr(1), 1);
        *c.peek_mut(addr(0)).unwrap() = 99;
        let victim = c.insert(addr(2), 2).into_victim().unwrap();
        assert_eq!(victim, (addr(0), 99));
    }

    #[test]
    fn full_set_reuses_freed_slots() {
        let mut c = SetAssocCache::new(1, 3);
        c.insert(addr(0), 0);
        c.insert(addr(1), 1);
        c.insert(addr(2), 2);
        assert_eq!(c.set_len(addr(0)), 3);
        c.remove(addr(1));
        assert!(matches!(c.insert(addr(3), 3), Insertion::Fit));
        assert_eq!(c.len(), 3);
        let present: Vec<u64> = {
            let mut v: Vec<u64> = c.set_entries(addr(0)).map(|(a, _)| a.raw()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(present, vec![0, 2, 3]);
    }
}
