//! A set-associative cache array with LRU replacement.
//!
//! Generic over the per-line payload so the same structure backs private
//! caches (payload [`CacheLineMeta`](crate::line::CacheLineMeta)), the LLC
//! (a directory-augmented payload), and the baselines' translation tables
//! (address-mapping payloads) — the paper configures all of these as
//! set-associative arrays.

use picl_types::LineAddr;

#[derive(Debug, Clone)]
struct Entry<T> {
    addr: LineAddr,
    payload: T,
    last_use: u64,
}

/// A set-associative, LRU-replaced map from [`LineAddr`] to `T`.
#[derive(Debug, Clone)]
pub struct SetAssocCache<T> {
    sets: Vec<Vec<Entry<T>>>,
    ways: usize,
    use_clock: u64,
}

impl<T> SetAssocCache<T> {
    /// Creates a cache with `sets` sets of `ways` ways. Power-of-two set
    /// counts index by bit masking (hardware caches); other counts (the
    /// baselines' 384-set translation tables) index by modulo.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "sets must be nonzero");
        assert!(ways > 0, "ways must be nonzero");
        SetAssocCache {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            use_clock: 0,
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        let n = self.sets.len();
        if n.is_power_of_two() {
            (addr.raw() as usize) & (n - 1)
        } else {
            (addr.raw() % n as u64) as usize
        }
    }

    /// Whether `addr` is resident (no LRU update).
    pub fn contains(&self, addr: LineAddr) -> bool {
        let set = &self.sets[self.set_index(addr)];
        set.iter().any(|e| e.addr == addr)
    }

    /// Looks up `addr`, updating recency. Returns the payload if resident.
    pub fn get(&mut self, addr: LineAddr) -> Option<&mut T> {
        self.use_clock += 1;
        let clock = self.use_clock;
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        set.iter_mut().find(|e| e.addr == addr).map(|e| {
            e.last_use = clock;
            &mut e.payload
        })
    }

    /// Looks up `addr` without updating recency.
    pub fn peek(&self, addr: LineAddr) -> Option<&T> {
        let set = &self.sets[self.set_index(addr)];
        set.iter().find(|e| e.addr == addr).map(|e| &e.payload)
    }

    /// Looks up `addr` mutably without updating recency.
    pub fn peek_mut(&mut self, addr: LineAddr) -> Option<&mut T> {
        let idx = self.set_index(addr);
        self.sets[idx]
            .iter_mut()
            .find(|e| e.addr == addr)
            .map(|e| &mut e.payload)
    }

    /// Inserts `addr` with `payload`, making it most-recently used.
    ///
    /// If `addr` was already resident its payload is replaced and returned
    /// as `Replaced`. If the set was full, the LRU victim is evicted and
    /// returned as `Evicted`.
    pub fn insert(&mut self, addr: LineAddr, payload: T) -> Insertion<T> {
        self.use_clock += 1;
        let clock = self.use_clock;
        let idx = self.set_index(addr);
        let ways = self.ways;
        let set = &mut self.sets[idx];

        if let Some(e) = set.iter_mut().find(|e| e.addr == addr) {
            e.last_use = clock;
            let old = std::mem::replace(&mut e.payload, payload);
            return Insertion::Replaced(old);
        }

        let mut victim = None;
        if set.len() == ways {
            let (vi, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .expect("full set is nonempty");
            let e = set.swap_remove(vi);
            victim = Some((e.addr, e.payload));
        }
        set.push(Entry {
            addr,
            payload,
            last_use: clock,
        });
        match victim {
            Some((a, p)) => Insertion::Evicted(a, p),
            None => Insertion::Fit,
        }
    }

    /// Removes `addr`, returning its payload if it was resident.
    pub fn remove(&mut self, addr: LineAddr) -> Option<T> {
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|e| e.addr == addr)?;
        Some(set.swap_remove(pos).payload)
    }

    /// Iterates over all resident `(addr, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.sets.iter().flatten().map(|e| (e.addr, &e.payload))
    }

    /// Iterates mutably over all resident `(addr, payload)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut T)> {
        self.sets
            .iter_mut()
            .flatten()
            .map(|e| (e.addr, &mut e.payload))
    }

    /// Removes every entry for which `pred` returns true, yielding them.
    pub fn drain_filter(
        &mut self,
        mut pred: impl FnMut(LineAddr, &T) -> bool,
    ) -> Vec<(LineAddr, T)> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            let mut i = 0;
            while i < set.len() {
                if pred(set[i].addr, &set[i].payload) {
                    let e = set.swap_remove(i);
                    out.push((e.addr, e.payload));
                } else {
                    i += 1;
                }
            }
        }
        out
    }

    /// Number of resident lines in the set that `addr` maps to.
    pub fn set_len(&self, addr: LineAddr) -> usize {
        self.sets[self.set_index(addr)].len()
    }

    /// Iterates over the `(addr, payload)` pairs in the set `addr` maps to.
    pub fn set_entries(&self, addr: LineAddr) -> impl Iterator<Item = (LineAddr, &T)> {
        self.sets[self.set_index(addr)]
            .iter()
            .map(|e| (e.addr, &e.payload))
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

/// Outcome of [`SetAssocCache::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Insertion<T> {
    /// The line fit without displacing anything.
    Fit,
    /// The line was already resident; its old payload is returned.
    Replaced(T),
    /// The set was full; the LRU `(addr, payload)` was evicted.
    Evicted(LineAddr, T),
}

impl<T> Insertion<T> {
    /// The evicted victim, if any.
    pub fn into_victim(self) -> Option<(LineAddr, T)> {
        match self {
            Insertion::Evicted(a, p) => Some((a, p)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn basic_insert_get() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(matches!(c.insert(addr(1), "a"), Insertion::Fit));
        assert_eq!(c.get(addr(1)), Some(&mut "a"));
        assert_eq!(c.peek(addr(1)), Some(&"a"));
        assert!(c.contains(addr(1)));
        assert!(!c.contains(addr(2)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.capacity(), 8);
    }

    #[test]
    fn replace_returns_old_payload() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(addr(0), 1);
        match c.insert(addr(0), 2) {
            Insertion::Replaced(old) => assert_eq!(old, 1),
            other => panic!("expected Replaced, got {other:?}"),
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways: lines 0, 4, 8 all map to set 0 (4 sets? no: 1 set).
        let mut c = SetAssocCache::new(1, 2);
        c.insert(addr(0), "zero");
        c.insert(addr(1), "one");
        // Touch 0 so 1 becomes LRU.
        c.get(addr(0));
        match c.insert(addr(2), "two") {
            Insertion::Evicted(a, p) => {
                assert_eq!(a, addr(1));
                assert_eq!(p, "one");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(addr(0)));
        assert!(c.contains(addr(2)));
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(addr(0), 0);
        c.insert(addr(1), 1);
        c.peek(addr(0)); // no recency update: 0 stays LRU
        let victim = c.insert(addr(2), 2).into_victim().unwrap();
        assert_eq!(victim.0, addr(0));
    }

    #[test]
    fn addresses_map_to_distinct_sets() {
        let mut c = SetAssocCache::new(4, 1);
        for i in 0..4 {
            assert!(matches!(c.insert(addr(i), i), Insertion::Fit));
        }
        assert_eq!(c.len(), 4);
        // Line 4 conflicts with line 0 (same low bits).
        let victim = c.insert(addr(4), 4).into_victim().unwrap();
        assert_eq!(victim.0, addr(0));
    }

    #[test]
    fn remove_and_clear() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(addr(1), 1);
        c.insert(addr(2), 2);
        assert_eq!(c.remove(addr(1)), Some(1));
        assert_eq!(c.remove(addr(1)), None);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn iter_and_drain_filter() {
        let mut c = SetAssocCache::new(4, 2);
        for i in 0..6 {
            c.insert(addr(i), i as i32);
        }
        assert_eq!(c.iter().count(), 6);
        let drained = c.drain_filter(|_, v| v % 2 == 0);
        assert_eq!(drained.len(), 3);
        assert_eq!(c.len(), 3);
        for (_, v) in c.iter() {
            assert!(v % 2 == 1);
        }
    }

    #[test]
    fn iter_mut_mutates_in_place() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(addr(0), 1);
        for (_, v) in c.iter_mut() {
            *v += 10;
        }
        assert_eq!(c.peek(addr(0)), Some(&11));
    }

    #[test]
    fn non_power_of_two_sets_index_by_modulo() {
        let mut c = SetAssocCache::new(3, 1);
        c.insert(addr(0), "a");
        c.insert(addr(1), "b");
        c.insert(addr(2), "c");
        assert_eq!(c.len(), 3);
        // Line 3 maps to set 0, evicting line 0.
        let victim = c.insert(addr(3), "d").into_victim().unwrap();
        assert_eq!(victim.0, addr(0));
    }

    #[test]
    #[should_panic(expected = "sets must be nonzero")]
    fn zero_sets_panics() {
        let _ = SetAssocCache::<()>::new(0, 1);
    }

    #[test]
    fn peek_mut_does_not_touch_lru() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(addr(0), 0);
        c.insert(addr(1), 1);
        *c.peek_mut(addr(0)).unwrap() = 99;
        let victim = c.insert(addr(2), 2).into_victim().unwrap();
        assert_eq!(victim, (addr(0), 99));
    }
}
