//! The multicore L1/L2/LLC cache hierarchy.
//!
//! Geometry and latencies come from Table IV. Private L1 and L2 are
//! *exclusive* of each other (a line lives in exactly one of them), which
//! keeps a single authoritative copy of every line's metadata; the shared
//! LLC is *inclusive* of all private caches via directory slots:
//!
//! * [`LlcSlot::Present`] — data and metadata live in the LLC;
//! * [`LlcSlot::Owned`] — the line is held by one core's private caches
//!   (single-owner coherence; a second core's access recalls it, and an LLC
//!   eviction back-invalidates it).
//!
//! Consistency-scheme hooks fire exactly where the paper's Figs. 7 and 8
//! put them: on every store (with pre-store metadata, wherever the line is
//! held) and on every dirty line leaving the LLC toward memory.

use picl_nvm::{AccessClass, Nvm};
use picl_telemetry::{EventKind, Telemetry};
use picl_types::{config::SystemConfig, stats::Counter, CoreId, Cycle, EpochId, LineAddr};

use crate::line::{CacheLineMeta, FlushLine};
use crate::scheme::{ConsistencyScheme, EvictRoute, EvictionEvent, StoreEvent};
use crate::set_assoc::SetAssocCache;

/// An LLC slot: either the data itself or a pointer to the owning core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcSlot {
    /// Data and metadata are resident in the LLC.
    Present(CacheLineMeta),
    /// The line is held in this core's private caches.
    Owned(CoreId),
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared LLC hit (including a recall from another core).
    Llc,
    /// LLC miss serviced by main memory.
    Memory,
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the requested data is available to the core.
    pub data_ready: Cycle,
    /// Level that serviced the access.
    pub level: HitLevel,
}

/// Load or store, as presented to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessType {
    /// A load of the line's current value.
    Load,
    /// A store installing a new value token.
    Store {
        /// The token the store writes.
        new_value: u64,
    },
}

/// Hit/miss/traffic counters for the hierarchy.
#[derive(Debug, Clone, Default)]
pub struct HierarchyStats {
    /// L1 hits.
    pub l1_hits: Counter,
    /// L2 hits.
    pub l2_hits: Counter,
    /// LLC hits (including recalls).
    pub llc_hits: Counter,
    /// Accesses serviced by memory.
    pub memory_accesses: Counter,
    /// Dirty lines evicted from the LLC.
    pub dirty_evictions: Counter,
    /// Clean lines evicted from the LLC.
    pub clean_evictions: Counter,
    /// Lines recalled from another core's private caches.
    pub recalls: Counter,
    /// Private copies invalidated because their LLC slot was evicted.
    pub back_invalidations: Counter,
    /// Stores observed.
    pub stores: Counter,
    /// Loads observed.
    pub loads: Counter,
}

/// The three-level hierarchy shared by all cores.
#[derive(Debug)]
pub struct Hierarchy {
    l1: Vec<SetAssocCache<CacheLineMeta>>,
    l2: Vec<SetAssocCache<CacheLineMeta>>,
    llc: SetAssocCache<LlcSlot>,
    l1_lat: Cycle,
    l2_lat: Cycle,
    llc_lat: Cycle,
    stats: HierarchyStats,
    telemetry: Telemetry,
}

impl Hierarchy {
    /// Builds the hierarchy for a system configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; validate it first with
    /// [`SystemConfig::validate`].
    pub fn new(cfg: &SystemConfig) -> Self {
        cfg.validate().expect("valid system configuration");
        let llc_cfg = cfg.llc_total();
        Hierarchy {
            l1: (0..cfg.cores)
                .map(|_| SetAssocCache::new(cfg.l1.sets(), cfg.l1.ways))
                .collect(),
            l2: (0..cfg.cores)
                .map(|_| SetAssocCache::new(cfg.l2.sets(), cfg.l2.ways))
                .collect(),
            llc: SetAssocCache::new(llc_cfg.sets(), llc_cfg.ways),
            l1_lat: cfg.l1.latency,
            l2_lat: cfg.l2.latency,
            llc_lat: cfg.llc_per_core.latency,
            stats: HierarchyStats::default(),
            telemetry: Telemetry::off(),
        }
    }

    /// Routes hierarchy events (dirty write-backs) to `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Performs one access for `core`; the scheme observes stores and
    /// evictions and may absorb or augment memory traffic.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        access: AccessType,
        scheme: &mut dyn ConsistencyScheme,
        mem: &mut Nvm,
        now: Cycle,
    ) -> AccessResult {
        let c = core.index();
        assert!(c < self.l1.len(), "core {core} out of range");
        match access {
            AccessType::Load => self.stats.loads.incr(),
            AccessType::Store { .. } => self.stats.stores.incr(),
        }

        // L1 hit: the fast path.
        if self.l1[c].contains(addr) {
            self.stats.l1_hits.incr();
            if let AccessType::Store { new_value } = access {
                let meta = self.l1[c].get(addr).expect("checked contains");
                let mut m = *meta;
                Self::do_store(&mut m, addr, new_value, scheme, mem, now);
                *self.l1[c].get(addr).expect("still resident") = m;
            } else {
                self.l1[c].get(addr);
            }
            return AccessResult {
                data_ready: now + self.l1_lat,
                level: HitLevel::L1,
            };
        }

        // L2 hit: move the line up (exclusive L1/L2).
        let (mut meta, level, data_ready) = if let Some(meta) = self.l2[c].remove(addr) {
            self.stats.l2_hits.incr();
            (meta, HitLevel::L2, now + self.l2_lat)
        } else {
            match self.llc.get(addr).copied() {
                Some(LlcSlot::Present(meta)) => {
                    self.stats.llc_hits.incr();
                    *self.llc.peek_mut(addr).expect("slot present") = LlcSlot::Owned(core);
                    (meta, HitLevel::Llc, now + self.llc_lat)
                }
                Some(LlcSlot::Owned(owner)) if owner != core => {
                    // Another core holds it: recall through the LLC.
                    self.stats.llc_hits.incr();
                    self.stats.recalls.incr();
                    let meta = self.recall_private(owner, addr);
                    *self.llc.peek_mut(addr).expect("slot present") = LlcSlot::Owned(core);
                    (meta, HitLevel::Llc, now + self.llc_lat)
                }
                Some(LlcSlot::Owned(_)) => {
                    unreachable!("line owned by {core} but missing from its private caches")
                }
                None => {
                    // Miss: fetch from the scheme (redo forwarding) or NVM.
                    self.stats.memory_accesses.incr();
                    let (value, ready) = match scheme.forward_read(addr, mem, now) {
                        Some(hit) => hit,
                        None => mem.read(now, addr, AccessClass::DemandRead),
                    };
                    let victim = self.llc.insert(addr, LlcSlot::Owned(core)).into_victim();
                    if let Some((vaddr, vslot)) = victim {
                        self.dispose_llc_victim(vaddr, vslot, scheme, mem, now);
                    }
                    (CacheLineMeta::clean(value), HitLevel::Memory, ready)
                }
            }
        };

        if let AccessType::Store { new_value } = access {
            Self::do_store(&mut meta, addr, new_value, scheme, mem, now);
        }
        self.fill_l1(core, addr, meta, scheme, mem, now);

        AccessResult { data_ready, level }
    }

    /// Applies a store to a line's metadata, firing the scheme hook with
    /// the pre-store state (Figs. 7/8 transitions).
    fn do_store(
        meta: &mut CacheLineMeta,
        addr: LineAddr,
        new_value: u64,
        scheme: &mut dyn ConsistencyScheme,
        mem: &mut Nvm,
        now: Cycle,
    ) {
        let ev = StoreEvent {
            addr,
            old_value: meta.value,
            old_eid: meta.eid,
            was_dirty: meta.dirty,
        };
        let directive = scheme.on_store(&ev, mem, now);
        meta.value = new_value;
        meta.dirty = true;
        if let Some(eid) = directive.new_eid {
            meta.eid = Some(eid);
        }
    }

    /// Installs a line into `core`'s L1, rippling victims down: L1 victim →
    /// L2; L2 victim → its (guaranteed-present) LLC slot.
    fn fill_l1(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        meta: CacheLineMeta,
        scheme: &mut dyn ConsistencyScheme,
        mem: &mut Nvm,
        now: Cycle,
    ) {
        let c = core.index();
        if let Some((v1_addr, v1_meta)) = self.l1[c].insert(addr, meta).into_victim() {
            if let Some((v2_addr, v2_meta)) = self.l2[c].insert(v1_addr, v1_meta).into_victim() {
                // The L2 victim leaves the private caches: deposit its data
                // into its LLC directory slot.
                match self.llc.peek_mut(v2_addr) {
                    Some(slot @ LlcSlot::Owned(_)) => *slot = LlcSlot::Present(v2_meta),
                    Some(LlcSlot::Present(_)) => {
                        unreachable!("private line {v2_addr} already present in LLC")
                    }
                    None => {
                        // Its slot was evicted concurrently — cannot happen
                        // because LLC evictions back-invalidate first.
                        unreachable!("private line {v2_addr} lost its LLC slot");
                    }
                }
                let _ = (scheme, mem, now);
            }
        }
    }

    /// Removes a line from `owner`'s private caches, returning its
    /// authoritative metadata.
    fn recall_private(&mut self, owner: CoreId, addr: LineAddr) -> CacheLineMeta {
        let o = owner.index();
        self.l1[o]
            .remove(addr)
            .or_else(|| self.l2[o].remove(addr))
            .unwrap_or_else(|| panic!("directory says {owner} holds {addr}, but it does not"))
    }

    /// Disposes of an evicted LLC slot: back-invalidate if owned, then let
    /// the scheme route the write-back if dirty.
    fn dispose_llc_victim(
        &mut self,
        addr: LineAddr,
        slot: LlcSlot,
        scheme: &mut dyn ConsistencyScheme,
        mem: &mut Nvm,
        now: Cycle,
    ) {
        let meta = match slot {
            LlcSlot::Present(meta) => meta,
            LlcSlot::Owned(owner) => {
                self.stats.back_invalidations.incr();
                self.recall_private(owner, addr)
            }
        };
        if meta.dirty {
            self.stats.dirty_evictions.incr();
            self.telemetry
                .record(now, None, EventKind::DirtyWriteback { addr });
            let ev = EvictionEvent {
                addr,
                value: meta.value,
                eid: meta.eid,
            };
            if scheme.on_dirty_eviction(&ev, mem, now) == EvictRoute::InPlace {
                mem.write(now, addr, meta.value, AccessClass::WriteBack);
            }
        } else {
            self.stats.clean_evictions.incr();
        }
    }

    /// Extracts every dirty line in the hierarchy (private caches and LLC),
    /// marking them clean and untagged in place. This is the synchronous
    /// cache flush of prior-work schemes; the caller writes the returned
    /// lines wherever its scheme requires.
    pub fn take_dirty_lines(&mut self) -> Vec<FlushLine> {
        self.take_matching(|m| m.dirty)
    }

    /// Extracts dirty lines tagged with exactly `eid`, marking them clean —
    /// the asynchronous cache scan (§III-C). Dirty private copies are
    /// snooped exactly as the paper describes.
    pub fn take_lines_with_eid(&mut self, eid: EpochId) -> Vec<FlushLine> {
        self.take_matching(|m| m.dirty && m.eid == Some(eid))
    }

    fn take_matching(&mut self, pred: impl Fn(&CacheLineMeta) -> bool) -> Vec<FlushLine> {
        let mut out = Vec::new();
        let mut grab = |addr: LineAddr, meta: &mut CacheLineMeta| {
            if pred(meta) {
                out.push(FlushLine {
                    addr,
                    value: meta.value,
                    eid: meta.eid,
                });
                meta.dirty = false;
                meta.eid = None;
            }
        };
        for cache in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            for (addr, meta) in cache.iter_mut() {
                grab(addr, meta);
            }
        }
        for (addr, slot) in self.llc.iter_mut() {
            if let LlcSlot::Present(meta) = slot {
                grab(addr, meta);
            }
        }
        out
    }

    /// Number of dirty lines currently in the hierarchy.
    pub fn dirty_line_count(&self) -> usize {
        let private: usize = self
            .l1
            .iter()
            .chain(self.l2.iter())
            .map(|c| c.iter().filter(|(_, m)| m.dirty).count())
            .sum();
        let llc = self
            .llc
            .iter()
            .filter(|(_, s)| matches!(s, LlcSlot::Present(m) if m.dirty))
            .count();
        private + llc
    }

    /// The current cached value of `addr`, if resident anywhere.
    pub fn cached_value(&self, addr: LineAddr) -> Option<u64> {
        for cache in self.l1.iter().chain(self.l2.iter()) {
            if let Some(meta) = cache.peek(addr) {
                return Some(meta.value);
            }
        }
        match self.llc.peek(addr) {
            Some(LlcSlot::Present(meta)) => Some(meta.value),
            _ => None,
        }
    }

    /// Simulates power loss: every volatile line disappears.
    pub fn invalidate_all(&mut self) {
        for cache in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            cache.clear();
        }
        self.llc.clear();
    }

    /// Total lines resident in the LLC (data or directory slots).
    pub fn llc_len(&self) -> usize {
        self.llc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{BoundaryOutcome, RecoveryOutcome, SchemeStats, StoreDirective};
    use picl_types::config::NvmConfig;
    use picl_types::time::ClockDomain;

    /// Minimal pass-through scheme recording hook invocations.
    #[derive(Debug, Default)]
    struct Probe {
        stores: Vec<StoreEvent>,
        evictions: Vec<EvictionEvent>,
        tag_with: Option<EpochId>,
    }

    impl ConsistencyScheme for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn system_eid(&self) -> EpochId {
            EpochId(1)
        }
        fn persisted_eid(&self) -> EpochId {
            EpochId::ZERO
        }
        fn on_store(&mut self, ev: &StoreEvent, _: &mut Nvm, _: Cycle) -> StoreDirective {
            self.stores.push(*ev);
            StoreDirective {
                new_eid: self.tag_with,
            }
        }
        fn on_dirty_eviction(&mut self, ev: &EvictionEvent, _: &mut Nvm, _: Cycle) -> EvictRoute {
            self.evictions.push(*ev);
            EvictRoute::InPlace
        }
        fn on_epoch_boundary(
            &mut self,
            _: &mut Hierarchy,
            _: &mut Nvm,
            _: Cycle,
        ) -> BoundaryOutcome {
            BoundaryOutcome {
                committed: EpochId(1),
                stall_until: None,
            }
        }
        fn crash_recover(&mut self, _: &mut Nvm, now: Cycle) -> RecoveryOutcome {
            RecoveryOutcome {
                recovered_to: EpochId::ZERO,
                entries_applied: 0,
                completed_at: now,
            }
        }
        fn stats(&self) -> SchemeStats {
            SchemeStats::default()
        }
    }

    fn tiny_config(cores: usize) -> SystemConfig {
        let mut cfg = SystemConfig::paper_multicore(cores);
        cfg.l1 = picl_types::config::CacheConfig::new(1024, 2, Cycle(1)); // 8 sets
        cfg.l2 = picl_types::config::CacheConfig::new(4096, 4, Cycle(4)); // 16 sets
        cfg.llc_per_core = picl_types::config::CacheConfig::new(16384, 4, Cycle(30));
        cfg
    }

    fn rig(cores: usize) -> (Hierarchy, Probe, Nvm) {
        let cfg = tiny_config(cores);
        (
            Hierarchy::new(&cfg),
            Probe::default(),
            Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000)),
        )
    }

    fn load(
        h: &mut Hierarchy,
        s: &mut Probe,
        m: &mut Nvm,
        core: usize,
        line: u64,
        now: u64,
    ) -> AccessResult {
        h.access(
            CoreId(core),
            LineAddr::new(line),
            AccessType::Load,
            s,
            m,
            Cycle(now),
        )
    }

    fn store(
        h: &mut Hierarchy,
        s: &mut Probe,
        m: &mut Nvm,
        core: usize,
        line: u64,
        value: u64,
        now: u64,
    ) -> AccessResult {
        h.access(
            CoreId(core),
            LineAddr::new(line),
            AccessType::Store { new_value: value },
            s,
            m,
            Cycle(now),
        )
    }

    #[test]
    fn miss_then_hit_levels() {
        let (mut h, mut s, mut m) = rig(1);
        let r1 = load(&mut h, &mut s, &mut m, 0, 5, 0);
        assert_eq!(r1.level, HitLevel::Memory);
        let r2 = load(&mut h, &mut s, &mut m, 0, 5, 1000);
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.data_ready, Cycle(1001));
        assert_eq!(h.stats().l1_hits.get(), 1);
        assert_eq!(h.stats().memory_accesses.get(), 1);
    }

    #[test]
    fn store_fires_hook_with_pre_store_metadata() {
        let (mut h, mut s, mut m) = rig(1);
        m.state_mut().write_line(LineAddr::new(9), 77);
        store(&mut h, &mut s, &mut m, 0, 9, 100, 0);
        assert_eq!(s.stores.len(), 1);
        let ev = s.stores[0];
        assert_eq!(ev.old_value, 77);
        assert_eq!(ev.old_eid, None);
        assert!(!ev.was_dirty);
        assert_eq!(h.cached_value(LineAddr::new(9)), Some(100));
    }

    #[test]
    fn second_store_sees_dirty_and_tag() {
        let (mut h, mut s, mut m) = rig(1);
        s.tag_with = Some(EpochId(4));
        store(&mut h, &mut s, &mut m, 0, 9, 1, 0);
        store(&mut h, &mut s, &mut m, 0, 9, 2, 10);
        let ev = s.stores[1];
        assert!(ev.was_dirty);
        assert_eq!(ev.old_eid, Some(EpochId(4)));
        assert_eq!(ev.old_value, 1);
    }

    #[test]
    fn dirty_lines_eventually_evict_in_place() {
        let (mut h, mut s, mut m) = rig(1);
        // Store to many distinct lines to overflow the small hierarchy.
        for i in 0..2000 {
            store(&mut h, &mut s, &mut m, 0, i, i + 1, i * 10);
        }
        assert!(!s.evictions.is_empty(), "no evictions observed");
        assert!(h.stats().dirty_evictions.get() > 0);
        // In-place routing updated canonical NVM state for evicted lines.
        let ev = s.evictions[0];
        assert_eq!(m.state().read_line(ev.addr), ev.value);
    }

    #[test]
    fn exclusive_l1_l2_no_duplicate_dirty() {
        let (mut h, mut s, mut m) = rig(1);
        for i in 0..64 {
            store(&mut h, &mut s, &mut m, 0, i, i + 1, i);
        }
        let flushed = h.take_dirty_lines();
        let mut addrs: Vec<_> = flushed.iter().map(|f| f.addr).collect();
        let before = addrs.len();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(before, addrs.len(), "duplicate dirty lines extracted");
        assert_eq!(h.dirty_line_count(), 0);
    }

    #[test]
    fn take_dirty_preserves_values() {
        let (mut h, mut s, mut m) = rig(1);
        store(&mut h, &mut s, &mut m, 0, 1, 11, 0);
        store(&mut h, &mut s, &mut m, 0, 2, 22, 1);
        let mut flushed = h.take_dirty_lines();
        flushed.sort_by_key(|f| f.addr);
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].value, 11);
        assert_eq!(flushed[1].value, 22);
        // Lines stay resident, now clean.
        assert_eq!(h.cached_value(LineAddr::new(1)), Some(11));
        assert!(h.take_dirty_lines().is_empty());
    }

    #[test]
    fn take_lines_with_eid_filters() {
        let (mut h, mut s, mut m) = rig(1);
        s.tag_with = Some(EpochId(1));
        store(&mut h, &mut s, &mut m, 0, 1, 10, 0);
        s.tag_with = Some(EpochId(2));
        store(&mut h, &mut s, &mut m, 0, 2, 20, 1);
        let got = h.take_lines_with_eid(EpochId(1));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].addr, LineAddr::new(1));
        assert_eq!(h.dirty_line_count(), 1);
        let rest = h.take_lines_with_eid(EpochId(2));
        assert_eq!(rest.len(), 1);
        assert_eq!(h.dirty_line_count(), 0);
    }

    #[test]
    fn cross_core_recall_moves_ownership() {
        let (mut h, mut s, mut m) = rig(2);
        store(&mut h, &mut s, &mut m, 0, 7, 42, 0);
        // Core 1 reads the same line: recall, not memory access.
        let r = load(&mut h, &mut s, &mut m, 1, 7, 100);
        assert_eq!(r.level, HitLevel::Llc);
        assert_eq!(h.stats().recalls.get(), 1);
        assert_eq!(h.cached_value(LineAddr::new(7)), Some(42));
        // Core 1 now hits in its own L1.
        let r2 = load(&mut h, &mut s, &mut m, 1, 7, 200);
        assert_eq!(r2.level, HitLevel::L1);
        // The dirty bit traveled with the line.
        assert_eq!(h.dirty_line_count(), 1);
    }

    #[test]
    fn llc_eviction_back_invalidates_private_copy() {
        let (mut h, mut s, mut m) = rig(1);
        // Lines k·64 all map to LLC set 0 (64 sets), L1 set 0, L2 set 0.
        // The 4-way LLC set overflows while early lines still sit in the
        // private caches, forcing back-invalidations.
        for k in 0..12u64 {
            store(&mut h, &mut s, &mut m, 0, k * 64, k + 1, k * 5);
        }
        assert!(h.stats().back_invalidations.get() > 0);
        // Back-invalidated dirty lines were written in place.
        assert!(!s.evictions.is_empty());
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let (mut h, mut s, mut m) = rig(1);
        store(&mut h, &mut s, &mut m, 0, 3, 33, 0);
        assert!(h.llc_len() > 0);
        h.invalidate_all();
        assert_eq!(h.llc_len(), 0);
        assert_eq!(h.dirty_line_count(), 0);
        assert_eq!(h.cached_value(LineAddr::new(3)), None);
    }

    #[test]
    fn load_returns_memory_value() {
        let (mut h, mut s, mut m) = rig(1);
        m.state_mut().write_line(LineAddr::new(50), 123);
        load(&mut h, &mut s, &mut m, 0, 50, 0);
        assert_eq!(h.cached_value(LineAddr::new(50)), Some(123));
    }

    #[test]
    fn clean_evictions_are_silent() {
        let (mut h, mut s, mut m) = rig(1);
        for i in 0..2000 {
            load(&mut h, &mut s, &mut m, 0, i, i * 3);
        }
        assert!(h.stats().clean_evictions.get() > 0);
        assert!(s.evictions.is_empty());
        assert_eq!(h.stats().dirty_evictions.get(), 0);
    }
}
