//! The multicore L1/L2/LLC cache hierarchy.
//!
//! Geometry and latencies come from Table IV. Private L1 and L2 are
//! *exclusive* of each other (a line lives in exactly one of them), which
//! keeps a single authoritative copy of every line's metadata; the shared
//! LLC is *inclusive* of all private caches via directory slots. Each LLC
//! slot is either the line itself (data + metadata) or a directory pointer
//! naming the one core whose private caches hold it (single-owner
//! coherence; a second core's access recalls it, and an LLC eviction
//! back-invalidates it).
//!
//! All three levels are [`PackedLineCache`] tables: per-line state packs
//! into one metadata `u64` (dirty bit, PiCL's optional EID tag, and — for
//! LLC directory slots — the owner core; see [`crate::packed`] for the bit
//! layout), so the hot access path is a handful of contiguous word loads
//! instead of struct walks.
//!
//! Consistency-scheme hooks fire exactly where the paper's Figs. 7 and 8
//! put them: on every store (with pre-store metadata, wherever the line is
//! held) and on every dirty line leaving the LLC toward memory.
//!
//! # The epoch index
//!
//! The ACS pass ([`Hierarchy::take_lines_with_eid`]) and the baselines'
//! synchronous flushes ([`Hierarchy::take_dirty_lines`]) used to walk every
//! slot of every cache — O(capacity) per epoch regardless of how much work
//! an epoch actually dirtied. The hierarchy maintains a side-index of
//! *candidate* dirty lines, bucketed by EID tag, plus O(1) dirty counters:
//!
//! * every store that dirties a clean line, or moves a line to a new EID
//!   tag, appends the address to the bucket for its (new) tag;
//! * bucket entries are never eagerly removed — a drained, evicted, or
//!   re-tagged line simply leaves a *stale* candidate behind;
//! * at drain time each candidate is located through the inclusive LLC
//!   directory (O(1): its slot either holds the data or names the one
//!   owning core) and taken only if its authoritative metadata still
//!   matches the filter.
//!
//! The invariant that makes the fast path exact: **every dirty line tagged
//! `e` is a candidate in bucket `e`, and every untagged dirty line is a
//! candidate in the untagged bucket** — stale candidates are filtered, but
//! no dirty line can hide outside its bucket. Drains emit lines sorted by
//! address, so the NVM write order (and therefore every downstream timing)
//! is identical between the fast path and the full-scan reference path
//! ([`Hierarchy::set_reference_scan`]).

use picl_nvm::{AccessClass, Nvm};
use picl_telemetry::{EventKind, Telemetry};
use picl_types::hash::FastMap;
use picl_types::{config::SystemConfig, stats::Counter, CoreId, Cycle, EpochId, LineAddr};

use crate::line::{CacheLineMeta, FlushLine};
use crate::packed::{decode_line, PackedInsertion, PackedLineCache, DIRTY, FIELD, OWNED, TAGGED};
use crate::scheme::{ConsistencyScheme, EvictRoute, EvictionEvent, StoreEvent};

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared LLC hit (including a recall from another core).
    Llc,
    /// LLC miss serviced by main memory.
    Memory,
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the requested data is available to the core.
    pub data_ready: Cycle,
    /// Level that serviced the access.
    pub level: HitLevel,
}

/// Load or store, as presented to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessType {
    /// A load of the line's current value.
    Load,
    /// A store installing a new value token.
    Store {
        /// The token the store writes.
        new_value: u64,
    },
}

/// Hit/miss/traffic counters for the hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 hits.
    pub l1_hits: Counter,
    /// L2 hits.
    pub l2_hits: Counter,
    /// LLC hits (including recalls).
    pub llc_hits: Counter,
    /// Accesses serviced by memory.
    pub memory_accesses: Counter,
    /// Dirty lines evicted from the LLC.
    pub dirty_evictions: Counter,
    /// Clean lines evicted from the LLC.
    pub clean_evictions: Counter,
    /// Lines recalled from another core's private caches.
    pub recalls: Counter,
    /// Private copies invalidated because their LLC slot was evicted.
    pub back_invalidations: Counter,
    /// Stores observed.
    pub stores: Counter,
    /// Loads observed.
    pub loads: Counter,
}

/// The three-level hierarchy shared by all cores.
#[derive(Debug)]
pub struct Hierarchy {
    l1: Vec<PackedLineCache>,
    l2: Vec<PackedLineCache>,
    llc: PackedLineCache,
    l1_lat: Cycle,
    l2_lat: Cycle,
    llc_lat: Cycle,
    stats: HierarchyStats,
    telemetry: Telemetry,
    /// Candidate dirty lines per EID tag (lazily invalidated; see module
    /// docs for the invariant).
    epoch_index: FastMap<EpochId, Vec<LineAddr>>,
    /// Candidate dirty lines with no EID tag.
    untagged_dirty: Vec<LineAddr>,
    /// Exact count of dirty lines anywhere in the hierarchy.
    dirty_total: usize,
    /// Exact count of dirty lines carrying an EID tag.
    dirty_tagged: usize,
    /// When set, drains and counts use brute-force full scans (the
    /// pre-index behavior) instead of the epoch index.
    reference_scan: bool,
}

/// LLC directory word naming `core` as the line's owner.
#[inline]
fn owned_word(core: usize) -> u64 {
    OWNED | core as u64
}

impl Hierarchy {
    /// Builds the hierarchy for a system configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; validate it first with
    /// [`SystemConfig::validate`].
    pub fn new(cfg: &SystemConfig) -> Self {
        cfg.validate().expect("valid system configuration");
        let llc_cfg = cfg.llc_total();
        Hierarchy {
            l1: (0..cfg.cores)
                .map(|_| PackedLineCache::new(cfg.l1.sets(), cfg.l1.ways))
                .collect(),
            l2: (0..cfg.cores)
                .map(|_| PackedLineCache::new(cfg.l2.sets(), cfg.l2.ways))
                .collect(),
            llc: PackedLineCache::new(llc_cfg.sets(), llc_cfg.ways),
            l1_lat: cfg.l1.latency,
            l2_lat: cfg.l2.latency,
            llc_lat: cfg.llc_per_core.latency,
            stats: HierarchyStats::default(),
            telemetry: Telemetry::off(),
            epoch_index: FastMap::default(),
            untagged_dirty: Vec::new(),
            dirty_total: 0,
            dirty_tagged: 0,
            reference_scan: false,
        }
    }

    /// Routes hierarchy events (dirty write-backs) to `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Switches drains and dirty counts to brute-force full scans — the
    /// differential reference for validating the epoch index. The index
    /// and counters are still maintained, so a reference hierarchy stays
    /// cheap to flip back.
    pub fn set_reference_scan(&mut self, reference: bool) {
        self.reference_scan = reference;
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Performs one access for `core`; the scheme observes stores and
    /// evictions and may absorb or augment memory traffic.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        access: AccessType,
        scheme: &mut dyn ConsistencyScheme,
        mem: &mut Nvm,
        now: Cycle,
    ) -> AccessResult {
        let c = core.index();
        assert!(c < self.l1.len(), "core {core} out of range");
        match access {
            AccessType::Load => self.stats.loads.incr(),
            AccessType::Store { .. } => self.stats.stores.incr(),
        }

        // L1 hit: the fast path — one probe, one recency stamp, and (for
        // stores) the metadata word updated in place.
        if let Some(slot) = self.l1[c].probe(addr) {
            self.stats.l1_hits.incr();
            self.l1[c].touch(slot);
            if let AccessType::Store { new_value } = access {
                let word = self.l1[c].word(slot);
                let value = self.l1[c].value(slot);
                let (word, value) =
                    self.apply_store(addr, word, value, new_value, scheme, mem, now);
                self.l1[c].set_slot(slot, word, value);
            }
            return AccessResult {
                data_ready: now + self.l1_lat,
                level: HitLevel::L1,
            };
        }

        // L2 hit: move the line up (exclusive L1/L2).
        let (word, value, level, data_ready) = if let Some(slot) = self.l2[c].probe(addr) {
            self.stats.l2_hits.incr();
            let (word, value) = self.l2[c].take_at(slot);
            (word, value, HitLevel::L2, now + self.l2_lat)
        } else if let Some(slot) = self.llc.probe(addr) {
            self.stats.llc_hits.incr();
            self.llc.touch(slot);
            let lword = self.llc.word(slot);
            if lword & OWNED != 0 {
                let owner = (lword & FIELD) as usize;
                assert!(
                    owner != c,
                    "line owned by {core} but missing from its private caches"
                );
                // Another core holds it: recall through the LLC.
                self.stats.recalls.incr();
                let (word, value) = self.recall_private(owner, addr);
                self.llc.set_word(slot, owned_word(c));
                (word, value, HitLevel::Llc, now + self.llc_lat)
            } else {
                let value = self.llc.value(slot);
                self.llc.set_word(slot, owned_word(c));
                (lword, value, HitLevel::Llc, now + self.llc_lat)
            }
        } else {
            // Miss: fetch from the scheme (redo forwarding) or NVM.
            self.stats.memory_accesses.incr();
            let (value, ready) = match scheme.forward_read(addr, mem, now) {
                Some(hit) => hit,
                None => mem.read(now, addr, AccessClass::DemandRead),
            };
            if let PackedInsertion::Evicted {
                addr: vaddr,
                word: vword,
                value: vvalue,
            } = self.llc.insert(addr, owned_word(c), 0)
            {
                self.dispose_llc_victim(vaddr, vword, vvalue, scheme, mem, now);
            }
            // A line filled from memory is clean and untagged: word 0.
            (0, value, HitLevel::Memory, ready)
        };

        let (word, value) = match access {
            AccessType::Store { new_value } => {
                self.apply_store(addr, word, value, new_value, scheme, mem, now)
            }
            AccessType::Load => (word, value),
        };
        self.fill_l1(c, addr, word, value, scheme, mem, now);

        AccessResult { data_ready, level }
    }

    /// Applies a store to a line's packed state, firing the scheme hook
    /// with the pre-store metadata (Figs. 7/8 transitions) and keeping the
    /// epoch index coherent. Returns the post-store `(word, value)`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn apply_store(
        &mut self,
        addr: LineAddr,
        word: u64,
        value: u64,
        new_value: u64,
        scheme: &mut dyn ConsistencyScheme,
        mem: &mut Nvm,
        now: Cycle,
    ) -> (u64, u64) {
        let was_dirty = word & DIRTY != 0;
        let was_tagged = word & TAGGED != 0;
        let ev = StoreEvent {
            addr,
            old_value: value,
            old_eid: if was_tagged {
                Some(EpochId(word & FIELD))
            } else {
                None
            },
            was_dirty,
        };
        let directive = scheme.on_store(&ev, mem, now);
        // No directive: the line keeps its old tag (or stays untagged).
        let new_word = match directive.new_eid {
            Some(eid) => {
                debug_assert!(eid.0 <= FIELD, "EID overflows the packed field");
                DIRTY | TAGGED | eid.0
            }
            None => DIRTY | (word & (TAGGED | FIELD)),
        };

        if !was_dirty {
            self.dirty_total += 1;
        }
        let now_tagged = new_word & TAGGED != 0;
        if now_tagged && !(was_dirty && was_tagged) {
            self.dirty_tagged += 1;
        }
        // A line enters a bucket when it turns dirty or changes tag; a
        // dirty line keeping its tag is already a candidate there. Untagged
        // words keep zero FIELD bits, so the XOR compares tags exactly.
        if !was_dirty || (new_word ^ word) & (TAGGED | FIELD) != 0 {
            if now_tagged {
                self.epoch_index
                    .entry(EpochId(new_word & FIELD))
                    .or_default()
                    .push(addr);
            } else {
                self.push_untagged(addr);
            }
        }
        (new_word, new_value)
    }

    /// Appends an untagged dirty candidate, compacting the bucket when
    /// stale entries dominate (schemes that never flush — Ideal — would
    /// otherwise grow it with one stale entry per re-dirtied eviction).
    fn push_untagged(&mut self, addr: LineAddr) {
        // Compact BEFORE pushing: during `apply_store` the stored line's
        // state is a detached copy not yet written back to the arrays, so a
        // post-push compaction would see it clean and drop it.
        if self.untagged_dirty.len() > 64 && self.untagged_dirty.len() > 4 * self.dirty_total {
            let mut keep = std::mem::take(&mut self.untagged_dirty);
            keep.sort_unstable();
            keep.dedup();
            keep.retain(|&a| matches!(self.locate(a), Some(m) if m.dirty && m.eid.is_none()));
            self.untagged_dirty = keep;
        }
        self.untagged_dirty.push(addr);
    }

    /// Installs a line into `core`'s L1, rippling victims down: L1 victim →
    /// L2; L2 victim → its (guaranteed-present) LLC slot.
    #[allow(clippy::too_many_arguments)]
    fn fill_l1(
        &mut self,
        c: usize,
        addr: LineAddr,
        word: u64,
        value: u64,
        scheme: &mut dyn ConsistencyScheme,
        mem: &mut Nvm,
        now: Cycle,
    ) {
        if let PackedInsertion::Evicted {
            addr: v1_addr,
            word: v1_word,
            value: v1_value,
        } = self.l1[c].insert(addr, word, value)
        {
            if let PackedInsertion::Evicted {
                addr: v2_addr,
                word: v2_word,
                value: v2_value,
            } = self.l2[c].insert(v1_addr, v1_word, v1_value)
            {
                // The L2 victim leaves the private caches: deposit its data
                // into its LLC directory slot. The slot must exist and be a
                // directory pointer — LLC evictions back-invalidate first.
                let slot = self
                    .llc
                    .probe(v2_addr)
                    .unwrap_or_else(|| panic!("private line {v2_addr} lost its LLC slot"));
                debug_assert!(
                    self.llc.word(slot) & OWNED != 0,
                    "private line {v2_addr} already present in LLC"
                );
                self.llc.set_slot(slot, v2_word, v2_value);
                let _ = (scheme, mem, now);
            }
        }
    }

    /// Removes a line from `owner`'s private caches, returning its
    /// authoritative packed state.
    fn recall_private(&mut self, owner: usize, addr: LineAddr) -> (u64, u64) {
        if let Some(slot) = self.l1[owner].probe(addr) {
            self.l1[owner].take_at(slot)
        } else if let Some(slot) = self.l2[owner].probe(addr) {
            self.l2[owner].take_at(slot)
        } else {
            panic!("directory says core {owner} holds {addr}, but it does not")
        }
    }

    /// Disposes of an evicted LLC slot: back-invalidate if owned, then let
    /// the scheme route the write-back if dirty.
    fn dispose_llc_victim(
        &mut self,
        addr: LineAddr,
        word: u64,
        value: u64,
        scheme: &mut dyn ConsistencyScheme,
        mem: &mut Nvm,
        now: Cycle,
    ) {
        let (word, value) = if word & OWNED != 0 {
            self.stats.back_invalidations.incr();
            self.recall_private((word & FIELD) as usize, addr)
        } else {
            (word, value)
        };
        if word & DIRTY != 0 {
            // The line leaves the hierarchy; its bucket candidate goes
            // stale and is filtered at the next drain.
            self.dirty_total -= 1;
            let tagged = word & TAGGED != 0;
            if tagged {
                self.dirty_tagged -= 1;
            }
            self.stats.dirty_evictions.incr();
            self.telemetry
                .record(now, None, EventKind::DirtyWriteback { addr });
            let ev = EvictionEvent {
                addr,
                value,
                eid: tagged.then_some(EpochId(word & FIELD)),
            };
            if scheme.on_dirty_eviction(&ev, mem, now) == EvictRoute::InPlace {
                mem.write(now, addr, value, AccessClass::WriteBack);
            }
        } else {
            self.stats.clean_evictions.incr();
        }
    }

    /// Extracts every dirty line in the hierarchy (private caches and LLC),
    /// marking them clean and untagged in place. This is the synchronous
    /// cache flush of prior-work schemes; the caller writes the returned
    /// lines wherever its scheme requires.
    pub fn take_dirty_lines(&mut self) -> Vec<FlushLine> {
        let mut out = Vec::new();
        self.take_dirty_lines_into(&mut out);
        out
    }

    /// [`Hierarchy::take_dirty_lines`] into a caller-owned scratch vector
    /// (cleared first), avoiding a fresh allocation per flush. Lines are
    /// returned sorted by address.
    pub fn take_dirty_lines_into(&mut self, out: &mut Vec<FlushLine>) {
        out.clear();
        if self.reference_scan {
            self.take_matching_scan(|m| m.dirty, out);
            self.epoch_index.clear();
            self.untagged_dirty.clear();
        } else {
            let buckets: Vec<Vec<LineAddr>> =
                self.epoch_index.drain().map(|(_, addrs)| addrs).collect();
            for bucket in buckets {
                self.drain_candidates(&bucket, None, out);
            }
            let untagged = std::mem::take(&mut self.untagged_dirty);
            self.drain_candidates(&untagged, None, out);
            debug_assert_eq!(self.dirty_total, 0, "dirty line missed by the epoch index");
            debug_assert_eq!(self.dirty_tagged, 0, "tag count out of sync");
        }
        out.sort_unstable_by_key(|f| f.addr);
    }

    /// Extracts dirty lines tagged with exactly `eid`, marking them clean —
    /// the asynchronous cache scan (§III-C). Dirty private copies are
    /// snooped exactly as the paper describes.
    pub fn take_lines_with_eid(&mut self, eid: EpochId) -> Vec<FlushLine> {
        let mut out = Vec::new();
        self.take_lines_with_eid_into(eid, &mut out);
        out
    }

    /// [`Hierarchy::take_lines_with_eid`] into a caller-owned scratch
    /// vector (cleared first). Lines are returned sorted by address.
    pub fn take_lines_with_eid_into(&mut self, eid: EpochId, out: &mut Vec<FlushLine>) {
        out.clear();
        if self.reference_scan {
            self.take_matching_scan(|m| m.dirty && m.eid == Some(eid), out);
            self.epoch_index.remove(&eid);
        } else if let Some(bucket) = self.epoch_index.remove(&eid) {
            self.drain_candidates(&bucket, Some(eid), out);
        }
        out.sort_unstable_by_key(|f| f.addr);
    }

    /// Validates each candidate against its authoritative metadata and
    /// grabs the survivors: locate through the inclusive LLC directory,
    /// take if dirty (and tagged `filter`, when given), mark clean.
    fn drain_candidates(
        &mut self,
        candidates: &[LineAddr],
        filter: Option<EpochId>,
        out: &mut Vec<FlushLine>,
    ) {
        for &addr in candidates {
            let Some(lslot) = self.llc.probe(addr) else {
                continue;
            };
            let lword = self.llc.word(lslot);
            let grabbed = if lword & OWNED != 0 {
                let o = (lword & FIELD) as usize;
                let (in_l1, slot) = match self.l1[o].probe(addr) {
                    Some(s) => (true, s),
                    None => (
                        false,
                        self.l2[o]
                            .probe(addr)
                            .expect("owned line missing from owner's private caches"),
                    ),
                };
                let table = if in_l1 {
                    &mut self.l1[o]
                } else {
                    &mut self.l2[o]
                };
                match grab_word(table.word(slot), table.value(slot), addr, filter, out) {
                    Some((cleared, was_tagged)) => {
                        table.set_word(slot, cleared);
                        Some(was_tagged)
                    }
                    None => None,
                }
            } else {
                match grab_word(lword, self.llc.value(lslot), addr, filter, out) {
                    Some((cleared, was_tagged)) => {
                        self.llc.set_word(lslot, cleared);
                        Some(was_tagged)
                    }
                    None => None,
                }
            };
            if let Some(was_tagged) = grabbed {
                self.dirty_total -= 1;
                if was_tagged {
                    self.dirty_tagged -= 1;
                }
            }
        }
    }

    /// The brute-force drain: walk every slot of every cache (the
    /// reference path the epoch index is checked against).
    fn take_matching_scan(
        &mut self,
        pred: impl Fn(&CacheLineMeta) -> bool,
        out: &mut Vec<FlushLine>,
    ) {
        let mut grabbed = 0usize;
        let mut tagged = 0usize;
        {
            let mut grab = |addr: LineAddr, word: &mut u64, value: &mut u64| {
                if *word & OWNED != 0 {
                    return;
                }
                let meta = decode_line(*word, *value);
                if pred(&meta) {
                    out.push(FlushLine {
                        addr,
                        value: meta.value,
                        eid: meta.eid,
                    });
                    grabbed += 1;
                    if meta.eid.is_some() {
                        tagged += 1;
                    }
                    *word &= !(DIRTY | TAGGED | FIELD);
                }
            };
            for cache in self.l1.iter_mut().chain(self.l2.iter_mut()) {
                cache.for_each_mut(&mut grab);
            }
            self.llc.for_each_mut(&mut grab);
        }
        self.dirty_total -= grabbed;
        self.dirty_tagged -= tagged;
    }

    /// Read-only full scan of every dirty line, sorted by address — the
    /// oracle the index coherence proptests compare drains against.
    pub fn reference_dirty_lines(&self) -> Vec<FlushLine> {
        self.scan_matching(|m| m.dirty)
    }

    /// Read-only full scan of dirty lines tagged `eid`, sorted by address.
    pub fn reference_lines_with_eid(&self, eid: EpochId) -> Vec<FlushLine> {
        self.scan_matching(|m| m.dirty && m.eid == Some(eid))
    }

    fn scan_matching(&self, pred: impl Fn(&CacheLineMeta) -> bool) -> Vec<FlushLine> {
        let mut out = Vec::new();
        {
            let mut scan = |(addr, word, value): (LineAddr, u64, u64)| {
                if word & OWNED != 0 {
                    return;
                }
                let meta = decode_line(word, value);
                if pred(&meta) {
                    out.push(FlushLine {
                        addr,
                        value: meta.value,
                        eid: meta.eid,
                    });
                }
            };
            for cache in self.l1.iter().chain(self.l2.iter()) {
                cache.iter().for_each(&mut scan);
            }
            self.llc.iter().for_each(&mut scan);
        }
        out.sort_unstable_by_key(|f| f.addr);
        out
    }

    /// Number of dirty lines currently in the hierarchy. O(1) from the
    /// maintained counter; a full recount in reference mode.
    pub fn dirty_line_count(&self) -> usize {
        if self.reference_scan {
            self.recount(|m| m.dirty)
        } else {
            self.dirty_total
        }
    }

    /// Number of dirty lines carrying an EID tag (the PiCL `lines_tagged`
    /// gauge). O(1) from the maintained counter; a recount in reference
    /// mode.
    pub fn tagged_dirty_count(&self) -> usize {
        if self.reference_scan {
            self.recount(|m| m.dirty && m.eid.is_some())
        } else {
            self.dirty_tagged
        }
    }

    fn recount(&self, pred: impl Fn(&CacheLineMeta) -> bool) -> usize {
        self.l1
            .iter()
            .chain(self.l2.iter())
            .chain(std::iter::once(&self.llc))
            .map(|c| {
                c.iter()
                    .filter(|&(_, w, v)| w & OWNED == 0 && pred(&decode_line(w, v)))
                    .count()
            })
            .sum()
    }

    /// Authoritative metadata of `addr` if resident anywhere, located in
    /// O(1) through the inclusive LLC directory.
    fn locate(&self, addr: LineAddr) -> Option<CacheLineMeta> {
        let slot = self.llc.probe(addr)?;
        let word = self.llc.word(slot);
        if word & OWNED != 0 {
            let o = (word & FIELD) as usize;
            let (table, slot) = match self.l1[o].probe(addr) {
                Some(s) => (&self.l1[o], s),
                None => (&self.l2[o], self.l2[o].probe(addr)?),
            };
            Some(decode_line(table.word(slot), table.value(slot)))
        } else {
            Some(decode_line(word, self.llc.value(slot)))
        }
    }

    /// The current cached value of `addr`, if resident anywhere.
    pub fn cached_value(&self, addr: LineAddr) -> Option<u64> {
        self.locate(addr).map(|m| m.value)
    }

    /// Simulates power loss: every volatile line disappears.
    pub fn invalidate_all(&mut self) {
        for cache in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            cache.clear();
        }
        self.llc.clear();
        self.epoch_index.clear();
        self.untagged_dirty.clear();
        self.dirty_total = 0;
        self.dirty_tagged = 0;
    }

    /// Total lines resident in the LLC (data or directory slots).
    pub fn llc_len(&self) -> usize {
        self.llc.len()
    }
}

/// Takes a line's packed state if it is dirty (and tagged `filter`, when
/// given): pushes the flush record and returns the cleaned word plus
/// whether the grabbed line carried a tag. `None` if it did not match.
#[inline]
fn grab_word(
    word: u64,
    value: u64,
    addr: LineAddr,
    filter: Option<EpochId>,
    out: &mut Vec<FlushLine>,
) -> Option<(u64, bool)> {
    if word & DIRTY == 0 {
        return None;
    }
    let tagged = word & TAGGED != 0;
    let eid = tagged.then_some(EpochId(word & FIELD));
    if let Some(f) = filter {
        if eid != Some(f) {
            return None;
        }
    }
    out.push(FlushLine { addr, value, eid });
    Some((word & !(DIRTY | TAGGED | FIELD), tagged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{BoundaryOutcome, RecoveryOutcome, SchemeStats, StoreDirective};
    use picl_types::config::NvmConfig;
    use picl_types::time::ClockDomain;

    /// Minimal pass-through scheme recording hook invocations.
    #[derive(Debug, Default)]
    struct Probe {
        stores: Vec<StoreEvent>,
        evictions: Vec<EvictionEvent>,
        tag_with: Option<EpochId>,
    }

    impl ConsistencyScheme for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn system_eid(&self) -> EpochId {
            EpochId(1)
        }
        fn persisted_eid(&self) -> EpochId {
            EpochId::ZERO
        }
        fn on_store(&mut self, ev: &StoreEvent, _: &mut Nvm, _: Cycle) -> StoreDirective {
            self.stores.push(*ev);
            StoreDirective {
                new_eid: self.tag_with,
            }
        }
        fn on_dirty_eviction(&mut self, ev: &EvictionEvent, _: &mut Nvm, _: Cycle) -> EvictRoute {
            self.evictions.push(*ev);
            EvictRoute::InPlace
        }
        fn on_epoch_boundary(
            &mut self,
            _: &mut Hierarchy,
            _: &mut Nvm,
            _: Cycle,
        ) -> BoundaryOutcome {
            BoundaryOutcome {
                committed: EpochId(1),
                stall_until: None,
            }
        }
        fn crash_recover(&mut self, _: &mut Nvm, now: Cycle) -> RecoveryOutcome {
            RecoveryOutcome {
                recovered_to: EpochId::ZERO,
                entries_applied: 0,
                completed_at: now,
            }
        }
        fn stats(&self) -> SchemeStats {
            SchemeStats::default()
        }
    }

    fn tiny_config(cores: usize) -> SystemConfig {
        let mut cfg = SystemConfig::paper_multicore(cores);
        cfg.l1 = picl_types::config::CacheConfig::new(1024, 2, Cycle(1)); // 8 sets
        cfg.l2 = picl_types::config::CacheConfig::new(4096, 4, Cycle(4)); // 16 sets
        cfg.llc_per_core = picl_types::config::CacheConfig::new(16384, 4, Cycle(30));
        cfg
    }

    fn rig(cores: usize) -> (Hierarchy, Probe, Nvm) {
        let cfg = tiny_config(cores);
        (
            Hierarchy::new(&cfg),
            Probe::default(),
            Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000)),
        )
    }

    fn load(
        h: &mut Hierarchy,
        s: &mut Probe,
        m: &mut Nvm,
        core: usize,
        line: u64,
        now: u64,
    ) -> AccessResult {
        h.access(
            CoreId(core),
            LineAddr::new(line),
            AccessType::Load,
            s,
            m,
            Cycle(now),
        )
    }

    fn store(
        h: &mut Hierarchy,
        s: &mut Probe,
        m: &mut Nvm,
        core: usize,
        line: u64,
        value: u64,
        now: u64,
    ) -> AccessResult {
        h.access(
            CoreId(core),
            LineAddr::new(line),
            AccessType::Store { new_value: value },
            s,
            m,
            Cycle(now),
        )
    }

    #[test]
    fn miss_then_hit_levels() {
        let (mut h, mut s, mut m) = rig(1);
        let r1 = load(&mut h, &mut s, &mut m, 0, 5, 0);
        assert_eq!(r1.level, HitLevel::Memory);
        let r2 = load(&mut h, &mut s, &mut m, 0, 5, 1000);
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.data_ready, Cycle(1001));
        assert_eq!(h.stats().l1_hits.get(), 1);
        assert_eq!(h.stats().memory_accesses.get(), 1);
    }

    #[test]
    fn store_fires_hook_with_pre_store_metadata() {
        let (mut h, mut s, mut m) = rig(1);
        m.state_mut().write_line(LineAddr::new(9), 77);
        store(&mut h, &mut s, &mut m, 0, 9, 100, 0);
        assert_eq!(s.stores.len(), 1);
        let ev = s.stores[0];
        assert_eq!(ev.old_value, 77);
        assert_eq!(ev.old_eid, None);
        assert!(!ev.was_dirty);
        assert_eq!(h.cached_value(LineAddr::new(9)), Some(100));
    }

    #[test]
    fn second_store_sees_dirty_and_tag() {
        let (mut h, mut s, mut m) = rig(1);
        s.tag_with = Some(EpochId(4));
        store(&mut h, &mut s, &mut m, 0, 9, 1, 0);
        store(&mut h, &mut s, &mut m, 0, 9, 2, 10);
        let ev = s.stores[1];
        assert!(ev.was_dirty);
        assert_eq!(ev.old_eid, Some(EpochId(4)));
        assert_eq!(ev.old_value, 1);
    }

    #[test]
    fn dirty_lines_eventually_evict_in_place() {
        let (mut h, mut s, mut m) = rig(1);
        // Store to many distinct lines to overflow the small hierarchy.
        for i in 0..2000 {
            store(&mut h, &mut s, &mut m, 0, i, i + 1, i * 10);
        }
        assert!(!s.evictions.is_empty(), "no evictions observed");
        assert!(h.stats().dirty_evictions.get() > 0);
        // In-place routing updated canonical NVM state for evicted lines.
        let ev = s.evictions[0];
        assert_eq!(m.state().read_line(ev.addr), ev.value);
    }

    #[test]
    fn exclusive_l1_l2_no_duplicate_dirty() {
        let (mut h, mut s, mut m) = rig(1);
        for i in 0..64 {
            store(&mut h, &mut s, &mut m, 0, i, i + 1, i);
        }
        let flushed = h.take_dirty_lines();
        let mut addrs: Vec<_> = flushed.iter().map(|f| f.addr).collect();
        let before = addrs.len();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(before, addrs.len(), "duplicate dirty lines extracted");
        assert_eq!(h.dirty_line_count(), 0);
    }

    #[test]
    fn take_dirty_preserves_values() {
        let (mut h, mut s, mut m) = rig(1);
        store(&mut h, &mut s, &mut m, 0, 1, 11, 0);
        store(&mut h, &mut s, &mut m, 0, 2, 22, 1);
        let flushed = h.take_dirty_lines();
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].value, 11);
        assert_eq!(flushed[1].value, 22);
        // Lines stay resident, now clean.
        assert_eq!(h.cached_value(LineAddr::new(1)), Some(11));
        assert!(h.take_dirty_lines().is_empty());
    }

    #[test]
    fn take_lines_with_eid_filters() {
        let (mut h, mut s, mut m) = rig(1);
        s.tag_with = Some(EpochId(1));
        store(&mut h, &mut s, &mut m, 0, 1, 10, 0);
        s.tag_with = Some(EpochId(2));
        store(&mut h, &mut s, &mut m, 0, 2, 20, 1);
        let got = h.take_lines_with_eid(EpochId(1));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].addr, LineAddr::new(1));
        assert_eq!(h.dirty_line_count(), 1);
        let rest = h.take_lines_with_eid(EpochId(2));
        assert_eq!(rest.len(), 1);
        assert_eq!(h.dirty_line_count(), 0);
    }

    #[test]
    fn drains_are_sorted_by_address() {
        let (mut h, mut s, mut m) = rig(1);
        s.tag_with = Some(EpochId(1));
        // Store in descending order; the drain must still come out sorted.
        for i in (0..32u64).rev() {
            store(&mut h, &mut s, &mut m, 0, i, i + 1, (32 - i) * 3);
        }
        let flushed = h.take_dirty_lines();
        assert!(
            flushed.windows(2).all(|w| w[0].addr < w[1].addr),
            "flush order not sorted: {:?}",
            flushed.iter().map(|f| f.addr).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fast_drain_matches_reference_scan() {
        let seq: &[(u64, Option<u64>)] = &[
            (1, Some(1)),
            (2, Some(1)),
            (3, Some(2)),
            (1, Some(2)), // re-tag line 1: stale candidate left in bucket 1
            (4, None),    // untagged dirty
        ];
        let run = |reference: bool| {
            let (mut h, mut s, mut m) = rig(1);
            h.set_reference_scan(reference);
            for (i, &(line, tag)) in seq.iter().enumerate() {
                s.tag_with = tag.map(EpochId);
                store(&mut h, &mut s, &mut m, 0, line, line * 10, i as u64);
            }
            let e1 = h.take_lines_with_eid(EpochId(1));
            let e2 = h.take_lines_with_eid(EpochId(2));
            let rest = h.take_dirty_lines();
            (e1, e2, rest)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn tagged_count_tracks_tags() {
        let (mut h, mut s, mut m) = rig(1);
        s.tag_with = None;
        store(&mut h, &mut s, &mut m, 0, 1, 10, 0);
        assert_eq!(h.dirty_line_count(), 1);
        assert_eq!(h.tagged_dirty_count(), 0);
        s.tag_with = Some(EpochId(3));
        store(&mut h, &mut s, &mut m, 0, 1, 11, 1);
        store(&mut h, &mut s, &mut m, 0, 2, 20, 2);
        assert_eq!(h.dirty_line_count(), 2);
        assert_eq!(h.tagged_dirty_count(), 2);
        h.take_lines_with_eid(EpochId(3));
        assert_eq!(h.tagged_dirty_count(), 0);
        assert_eq!(h.dirty_line_count(), 0);
    }

    #[test]
    fn cross_core_recall_moves_ownership() {
        let (mut h, mut s, mut m) = rig(2);
        store(&mut h, &mut s, &mut m, 0, 7, 42, 0);
        // Core 1 reads the same line: recall, not memory access.
        let r = load(&mut h, &mut s, &mut m, 1, 7, 100);
        assert_eq!(r.level, HitLevel::Llc);
        assert_eq!(h.stats().recalls.get(), 1);
        assert_eq!(h.cached_value(LineAddr::new(7)), Some(42));
        // Core 1 now hits in its own L1.
        let r2 = load(&mut h, &mut s, &mut m, 1, 7, 200);
        assert_eq!(r2.level, HitLevel::L1);
        // The dirty bit traveled with the line.
        assert_eq!(h.dirty_line_count(), 1);
    }

    #[test]
    fn recalled_line_still_drains_by_eid() {
        // A candidate recorded while core 0 held the line must still be
        // found after the line migrates to core 1's private caches.
        let (mut h, mut s, mut m) = rig(2);
        s.tag_with = Some(EpochId(5));
        store(&mut h, &mut s, &mut m, 0, 7, 42, 0);
        load(&mut h, &mut s, &mut m, 1, 7, 100);
        let got = h.take_lines_with_eid(EpochId(5));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].addr, LineAddr::new(7));
        assert_eq!(got[0].value, 42);
        assert_eq!(h.dirty_line_count(), 0);
    }

    #[test]
    fn llc_eviction_back_invalidates_private_copy() {
        let (mut h, mut s, mut m) = rig(1);
        // Lines k·64 all map to LLC set 0 (64 sets), L1 set 0, L2 set 0.
        // The 4-way LLC set overflows while early lines still sit in the
        // private caches, forcing back-invalidations.
        for k in 0..12u64 {
            store(&mut h, &mut s, &mut m, 0, k * 64, k + 1, k * 5);
        }
        assert!(h.stats().back_invalidations.get() > 0);
        // Back-invalidated dirty lines were written in place.
        assert!(!s.evictions.is_empty());
        // Evicted lines left the dirty census; residents remain.
        assert_eq!(h.dirty_line_count(), h.reference_dirty_lines().len());
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let (mut h, mut s, mut m) = rig(1);
        store(&mut h, &mut s, &mut m, 0, 3, 33, 0);
        assert!(h.llc_len() > 0);
        h.invalidate_all();
        assert_eq!(h.llc_len(), 0);
        assert_eq!(h.dirty_line_count(), 0);
        assert_eq!(h.cached_value(LineAddr::new(3)), None);
        assert!(h.take_dirty_lines().is_empty());
    }

    #[test]
    fn load_returns_memory_value() {
        let (mut h, mut s, mut m) = rig(1);
        m.state_mut().write_line(LineAddr::new(50), 123);
        load(&mut h, &mut s, &mut m, 0, 50, 0);
        assert_eq!(h.cached_value(LineAddr::new(50)), Some(123));
    }

    #[test]
    fn clean_evictions_are_silent() {
        let (mut h, mut s, mut m) = rig(1);
        for i in 0..2000 {
            load(&mut h, &mut s, &mut m, 0, i, i * 3);
        }
        assert!(h.stats().clean_evictions.get() > 0);
        assert!(s.evictions.is_empty());
        assert_eq!(h.stats().dirty_evictions.get(), 0);
    }

    #[test]
    fn eviction_pressure_keeps_census_exact() {
        // Heavy conflict traffic (evictions, back-invalidations, stale
        // candidates) must leave the O(1) census equal to a recount.
        let (mut h, mut s, mut m) = rig(1);
        for i in 0..3000u64 {
            s.tag_with = (i % 3 != 0).then_some(EpochId(i / 500));
            store(&mut h, &mut s, &mut m, 0, (i * 7) % 600, i + 1, i * 2);
        }
        assert_eq!(h.dirty_line_count(), h.reference_dirty_lines().len());
        let tagged_ref = h
            .reference_dirty_lines()
            .iter()
            .filter(|f| f.eid.is_some())
            .count();
        assert_eq!(h.tagged_dirty_count(), tagged_ref);
        for e in 0..7 {
            let want = h.reference_lines_with_eid(EpochId(e));
            let got = h.take_lines_with_eid(EpochId(e));
            assert_eq!(got, want, "ACS drain diverged for epoch {e}");
        }
        let want = h.reference_dirty_lines();
        assert_eq!(h.take_dirty_lines(), want);
        assert_eq!(h.dirty_line_count(), 0);
    }
}
