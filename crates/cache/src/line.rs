//! Per-line cache metadata.

use picl_types::{EpochId, LineAddr};

/// Metadata carried by a cached line as it moves through the hierarchy.
///
/// This is the augmented cache entry of Fig. 5b: conventional state (valid
/// is implied by presence, dirty is explicit) plus PiCL's per-line EID tag.
/// The `value` field is the functional 64-bit stand-in for the line's data
/// (see `picl_nvm::state`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLineMeta {
    /// The line's current data token.
    pub value: u64,
    /// Whether the line differs from the copy at its canonical NVM address.
    pub dirty: bool,
    /// The epoch in which the line was last modified; `None` for lines
    /// loaded from memory that have not been stored to ("a line loaded from
    /// the memory to the LLC initially has no EID associated", §IV-A).
    pub eid: Option<EpochId>,
}

impl CacheLineMeta {
    /// Metadata for a line freshly filled from memory: clean, untagged.
    pub fn clean(value: u64) -> Self {
        CacheLineMeta {
            value,
            dirty: false,
            eid: None,
        }
    }

    /// Metadata for a dirty line tagged with the epoch that modified it.
    pub fn dirty(value: u64, eid: EpochId) -> Self {
        CacheLineMeta {
            value,
            dirty: true,
            eid: Some(eid),
        }
    }
}

/// A dirty line extracted from the hierarchy for write-back — by an
/// eviction, a synchronous flush, or PiCL's asynchronous cache scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushLine {
    /// The line's address.
    pub addr: LineAddr,
    /// The data token to be written back.
    pub value: u64,
    /// The line's EID tag at extraction time.
    pub eid: Option<EpochId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = CacheLineMeta::clean(5);
        assert!(!c.dirty);
        assert_eq!(c.eid, None);
        assert_eq!(c.value, 5);

        let d = CacheLineMeta::dirty(6, EpochId(3));
        assert!(d.dirty);
        assert_eq!(d.eid, Some(EpochId(3)));
    }
}
