//! Cache hierarchy with epoch-ID metadata.
//!
//! Models the paper's three-level hierarchy (Table IV): private per-core L1
//! and L2 caches and a shared, inclusive last-level cache. PiCL's hardware
//! additions live in the metadata each line carries: a dirty bit and an
//! optional epoch-ID tag (§IV-A, Fig. 5b).
//!
//! * [`mod@line`] — cache-line metadata, including the EID tag.
//! * [`packed`] — the struct-of-arrays line table the hierarchy runs on:
//!   per-line state bitfield-packed into parallel flat `u64` arrays.
//! * [`set_assoc`] — the generic set-associative LRU cache array, retained
//!   as the baselines' translation tables and as the reference structure
//!   the packed table is property-tested against.
//! * [`hierarchy`] — the multicore L1/L2/LLC composition with an
//!   MESI-lite single-owner coherence model and inclusive back-
//!   invalidation; produces the store/eviction events consistency schemes
//!   hook (Figs. 7 and 8).
//! * [`scheme`] — the [`ConsistencyScheme`] trait: the seam between the
//!   hierarchy/simulator and PiCL or any of the prior-work baselines.
//!
//! # Coherence model
//!
//! The evaluation runs *multiprogrammed* (not shared-memory) mixes, so the
//! hierarchy implements single-owner coherence: a line resides in at most
//! one core's private caches at a time; a second core's access recalls it
//! through the LLC. This preserves every event the schemes care about
//! (store hits in private caches, LLC evictions, snooped write-backs)
//! without a full MESI state machine. Within one core the hierarchy is
//! inclusive: L1 ⊆ L2, and every private line has an LLC directory entry.

pub mod hierarchy;
pub mod line;
pub mod packed;
pub mod scheme;
pub mod set_assoc;

pub use hierarchy::{AccessResult, Hierarchy, HierarchyStats, HitLevel};
pub use line::{CacheLineMeta, FlushLine};
pub use packed::{PackedInsertion, PackedLineCache};
pub use scheme::{
    BoundaryOutcome, ConsistencyScheme, EvictRoute, EvictionEvent, RecoveryOutcome, SchemeStats,
    StoreDirective, StoreEvent,
};
pub use set_assoc::SetAssocCache;
