//! The consistency-scheme interface.
//!
//! A [`ConsistencyScheme`] is the hardware mechanism that makes NVM contents
//! crash-consistent. The simulator and cache hierarchy call into it at the
//! points the paper identifies (Figs. 3, 7, 8):
//!
//! * **stores** — where PiCL detects cross-epoch modification and creates
//!   undo entries from the cache;
//! * **dirty LLC evictions** — where undo logging performs read-log-modify
//!   and redo logging absorbs the write into a redo buffer;
//! * **demand misses** — where redo logging must forward data that lives in
//!   the redo buffer instead of the canonical address;
//! * **epoch boundaries** — where prior work stalls the world to flush the
//!   cache and PiCL merely bumps `SystemEID` and kicks ACS;
//! * **crashes** — where the scheme's recovery procedure patches main
//!   memory back to the last persisted checkpoint.

use picl_nvm::Nvm;
use picl_telemetry::Telemetry;
use picl_types::{Cycle, EpochId, LineAddr};

use crate::hierarchy::Hierarchy;

/// A store observed by the cache hierarchy, with pre-store metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEvent {
    /// Line being stored to.
    pub addr: LineAddr,
    /// The line's data token *before* this store.
    pub old_value: u64,
    /// The line's EID tag before this store (`None` = never stored since
    /// fill; the "no EID associated" state of §IV-A).
    pub old_eid: Option<EpochId>,
    /// Whether the line was already dirty.
    pub was_dirty: bool,
}

/// What the scheme wants done to the stored line's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreDirective {
    /// New EID tag for the line (`None` leaves the line untagged; schemes
    /// without EID tracking always return `None`).
    pub new_eid: Option<EpochId>,
}

/// A dirty line leaving the LLC toward memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionEvent {
    /// Line being evicted.
    pub addr: LineAddr,
    /// The data token to be written back.
    pub value: u64,
    /// The line's EID tag.
    pub eid: Option<EpochId>,
}

/// How the hierarchy should dispose of a dirty eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictRoute {
    /// Write the line to its canonical NVM address (undo-based schemes).
    /// The hierarchy performs the write and charges it as ordinary
    /// write-back traffic.
    InPlace,
    /// The scheme captured the line (e.g., into a redo buffer or shadow
    /// page) and issued its own NVM traffic; the canonical address must
    /// *not* be updated.
    Absorbed,
}

/// Result of an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryOutcome {
    /// The epoch that just committed.
    pub committed: EpochId,
    /// If the scheme required a synchronous (stop-the-world) flush, the
    /// cycle at which execution may resume.
    pub stall_until: Option<Cycle>,
}

/// Result of crash recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The checkpoint that main memory was restored to. Memory now holds
    /// exactly the values it held when this epoch committed.
    pub recovered_to: EpochId,
    /// Log or table entries applied while patching memory.
    pub entries_applied: u64,
    /// Cycle at which recovery finished (includes log-scan time).
    pub completed_at: Cycle,
}

/// Counters every scheme reports; drives Figs. 11, 13, and 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchemeStats {
    /// Epoch commits, including forced early commits.
    pub commits: u64,
    /// Commits forced early by hardware-resource overflow (translation
    /// table full) rather than the epoch timer.
    pub forced_commits: u64,
    /// Log entries created (undo entries, redo entries, or CoW pages).
    pub log_entries: u64,
    /// Bytes appended to durable log storage.
    pub log_bytes_written: u64,
    /// Bytes of log storage currently live (not yet garbage collected).
    pub log_bytes_live: u64,
    /// On-chip undo-buffer flushes (PiCL only).
    pub buffer_flushes: u64,
    /// Undo-buffer flushes forced by a bloom-filter hit on eviction.
    pub buffer_flushes_forced: u64,
    /// Total cycles execution was stalled by synchronous flushes.
    pub stall_cycles: u64,
}

/// The hardware crash-consistency mechanism under test.
///
/// Object-safe: the simulator holds a `Box<dyn ConsistencyScheme>` chosen
/// per run.
pub trait ConsistencyScheme {
    /// Scheme name for reports ("PiCL", "FRM", …).
    fn name(&self) -> &'static str;

    /// The currently executing (uncommitted) epoch.
    fn system_eid(&self) -> EpochId;

    /// The most recent fully durable, recoverable epoch.
    fn persisted_eid(&self) -> EpochId;

    /// A store is being performed; pre-store metadata in `ev`. The scheme
    /// may create undo entries (issuing NVM traffic through `mem`) and
    /// returns the line's new EID tag.
    fn on_store(&mut self, ev: &StoreEvent, mem: &mut Nvm, now: Cycle) -> StoreDirective;

    /// A dirty line is leaving the LLC. The scheme may issue extra traffic
    /// (pre-image reads, log writes) and decides whether the canonical
    /// address is updated.
    fn on_dirty_eviction(&mut self, ev: &EvictionEvent, mem: &mut Nvm, now: Cycle) -> EvictRoute;

    /// A demand miss for `addr`: if the current data lives in a scheme
    /// structure (redo buffer, shadow page), return the value and the cycle
    /// it is available, charging the access to `mem`. Returning `None`
    /// lets the hierarchy read the canonical address.
    fn forward_read(&mut self, addr: LineAddr, mem: &mut Nvm, now: Cycle) -> Option<(u64, Cycle)> {
        let _ = (addr, mem, now);
        None
    }

    /// Whether a hardware resource overflowed such that the current epoch
    /// must commit early (checked by the simulator after every access).
    fn wants_early_commit(&self) -> bool {
        false
    }

    /// An epoch boundary: commit the executing epoch. Prior-work schemes
    /// synchronously flush the cache here; PiCL bumps `SystemEID`, runs the
    /// asynchronous cache scan for `SystemEID − ACS-gap`, and never stalls.
    fn on_epoch_boundary(
        &mut self,
        hier: &mut Hierarchy,
        mem: &mut Nvm,
        now: Cycle,
    ) -> BoundaryOutcome;

    /// Power failure: all volatile state (caches, on-chip buffers) is lost;
    /// the simulator has already invalidated the hierarchy. Patch `mem`
    /// back to the last persisted checkpoint using only durable state and
    /// report what was recovered.
    fn crash_recover(&mut self, mem: &mut Nvm, now: Cycle) -> RecoveryOutcome;

    /// Counters for reports.
    fn stats(&self) -> SchemeStats;

    /// Hands the scheme a telemetry handle so it can record its internal
    /// events (epoch commits, undo drains, ACS passes, …). The default
    /// discards the handle; schemes without interesting internals need not
    /// implement it.
    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        let _ = telemetry;
    }

    /// Instantaneous gauges the periodic sampler should snapshot, as
    /// `(series name, value)` pairs (e.g. undo-buffer fill, live log
    /// bytes). The default reports nothing.
    fn telemetry_gauges(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A do-nothing scheme proving the trait is object-safe and exercising
    /// the default method bodies.
    #[derive(Debug, Default)]
    struct Noop;

    impl ConsistencyScheme for Noop {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn system_eid(&self) -> EpochId {
            EpochId(1)
        }
        fn persisted_eid(&self) -> EpochId {
            EpochId::ZERO
        }
        fn on_store(&mut self, _: &StoreEvent, _: &mut Nvm, _: Cycle) -> StoreDirective {
            StoreDirective::default()
        }
        fn on_dirty_eviction(&mut self, _: &EvictionEvent, _: &mut Nvm, _: Cycle) -> EvictRoute {
            EvictRoute::InPlace
        }
        fn on_epoch_boundary(
            &mut self,
            _: &mut Hierarchy,
            _: &mut Nvm,
            _: Cycle,
        ) -> BoundaryOutcome {
            BoundaryOutcome {
                committed: EpochId(1),
                stall_until: None,
            }
        }
        fn crash_recover(&mut self, _: &mut Nvm, now: Cycle) -> RecoveryOutcome {
            RecoveryOutcome {
                recovered_to: EpochId::ZERO,
                entries_applied: 0,
                completed_at: now,
            }
        }
        fn stats(&self) -> SchemeStats {
            SchemeStats::default()
        }
    }

    #[test]
    fn trait_is_object_safe_with_defaults() {
        use picl_types::config::NvmConfig;
        use picl_types::time::ClockDomain;

        let mut boxed: Box<dyn ConsistencyScheme> = Box::new(Noop);
        let mut mem = Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000));
        assert_eq!(boxed.name(), "noop");
        assert!(!boxed.wants_early_commit());
        assert!(boxed
            .forward_read(LineAddr::new(0), &mut mem, Cycle(0))
            .is_none());
        assert_eq!(boxed.persisted_eid(), EpochId::ZERO);
        boxed.attach_telemetry(Telemetry::off());
        assert!(boxed.telemetry_gauges().is_empty());
    }

    #[test]
    fn store_directive_default_is_untagged() {
        assert_eq!(StoreDirective::default().new_eid, None);
    }
}
