//! Packed struct-of-arrays cache tables — the data-oriented hot path.
//!
//! [`SetAssocCache`](crate::set_assoc::SetAssocCache) keeps each line as an
//! `Option<Entry<T>>` (~48–56 bytes with the niche, the payload, and the
//! recency stamp interleaved), so a 4-way set probe walks four scattered
//! struct slots. [`PackedLineCache`] stores the same state as four parallel
//! flat `u64` arrays — tag, packed metadata word, data token, recency
//! stamp — plus the per-set occupancy bitmap. A probe is then one bitmap
//! word and up to `ways` adjacent tag words, all in at most two cache
//! lines, with no `Option` discriminants and no payload bytes pulled in
//! until the hit is known.
//!
//! # Metadata word layout
//!
//! All per-line metadata the hierarchy needs packs into one `u64`:
//!
//! ```text
//!   bit 63      DIRTY    line differs from its canonical NVM copy
//!   bit 62      TAGGED   the EID field is meaningful (PiCL's per-line tag)
//!   bit 61      OWNED    LLC only: the slot is a directory pointer and the
//!                        field holds the owning core, not an EID
//!   bits 60..56 (zero)   reserved
//!   bits 55..0  FIELD    EID raw value (TAGGED) or owner core id (OWNED)
//! ```
//!
//! Invariant: when `TAGGED` (or `OWNED`) is clear the `FIELD` bits are
//! zero, so whole-word equality doubles as semantic equality and "did the
//! tag change?" is one XOR + mask.
//!
//! The table itself does not interpret the word beyond moving it around;
//! [`Hierarchy`](crate::hierarchy::Hierarchy) owns the encoding via
//! [`encode_line`]/[`decode_line`].

use picl_types::{EpochId, LineAddr};

use crate::line::CacheLineMeta;

/// Metadata word bit: the line is dirty.
pub const DIRTY: u64 = 1 << 63;
/// Metadata word bit: the `FIELD` bits carry an epoch-ID tag.
pub const TAGGED: u64 = 1 << 62;
/// Metadata word bit (LLC directory): the `FIELD` bits name the owning core.
pub const OWNED: u64 = 1 << 61;
/// Metadata word mask: the 56-bit EID / owner field.
pub const FIELD: u64 = (1 << 56) - 1;

/// Packs [`CacheLineMeta`] into a `(metadata word, value)` pair.
///
/// # Panics
///
/// Debug-asserts the EID fits the 56-bit field (at one epoch per
/// microsecond that is two millennia of simulated time).
#[inline]
pub fn encode_line(meta: &CacheLineMeta) -> (u64, u64) {
    let mut word = 0u64;
    if meta.dirty {
        word |= DIRTY;
    }
    if let Some(eid) = meta.eid {
        debug_assert!(eid.0 <= FIELD, "EID {} overflows the packed field", eid.0);
        word |= TAGGED | (eid.0 & FIELD);
    }
    (word, meta.value)
}

/// Unpacks a `(metadata word, value)` pair into [`CacheLineMeta`].
#[inline]
pub fn decode_line(word: u64, value: u64) -> CacheLineMeta {
    debug_assert_eq!(word & OWNED, 0, "directory word decoded as line metadata");
    CacheLineMeta {
        value,
        dirty: word & DIRTY != 0,
        eid: (word & TAGGED != 0).then_some(EpochId(word & FIELD)),
    }
}

/// A set-associative, LRU-replaced map from [`LineAddr`] to a packed
/// `(metadata word, value)` pair, stored struct-of-arrays.
///
/// Replacement semantics are identical to
/// [`SetAssocCache`](crate::set_assoc::SetAssocCache): a global use clock
/// advances only on hits ([`touch`](Self::touch)) and inserts, and the
/// victim of a full set is the way with the minimum stamp (stamps are
/// unique, so the choice is unambiguous) — the property test
/// `packed_vs_struct` pins the two structures victim-for-victim.
#[derive(Debug, Clone)]
pub struct PackedLineCache {
    /// Line address per slot; meaningful only where the occupancy bit is set.
    tags: Vec<u64>,
    /// Packed metadata word per slot (see module docs for the layout).
    words: Vec<u64>,
    /// Data token per slot.
    values: Vec<u64>,
    /// Recency stamp per slot.
    last_use: Vec<u64>,
    /// Per-set occupancy bitmap (bit `w` = slot `s*ways + w` occupied).
    occ: Vec<u64>,
    sets: usize,
    ways: usize,
    len: usize,
    use_clock: u64,
}

impl PackedLineCache {
    /// Creates a table with `sets` sets of `ways` ways. Power-of-two set
    /// counts index by bit masking; other counts index by modulo.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or if `ways` exceeds 64 (the
    /// occupancy word width).
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "sets must be nonzero");
        assert!(ways > 0, "ways must be nonzero");
        assert!(ways <= 64, "ways must fit the occupancy word");
        let cap = sets * ways;
        PackedLineCache {
            tags: vec![0; cap],
            words: vec![0; cap],
            values: vec![0; cap],
            last_use: vec![0; cap],
            occ: vec![0; sets],
            sets,
            ways,
            len: 0,
            use_clock: 0,
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn set_index(&self, addr: LineAddr) -> usize {
        let n = self.sets;
        if n.is_power_of_two() {
            (addr.raw() as usize) & (n - 1)
        } else {
            (addr.raw() % n as u64) as usize
        }
    }

    /// Slot index of `addr`, if resident. No recency update — pair with
    /// [`touch`](Self::touch) on the hit path.
    #[inline]
    pub fn probe(&self, addr: LineAddr) -> Option<usize> {
        let si = self.set_index(addr);
        let base = si * self.ways;
        let raw = addr.raw();
        let mut occ = self.occ[si];
        while occ != 0 {
            let w = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            if self.tags[base + w] == raw {
                return Some(base + w);
            }
        }
        None
    }

    /// Whether `addr` is resident (no recency update).
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.probe(addr).is_some()
    }

    /// Marks `slot` most-recently used. The recency clock advances only
    /// here and on inserts: a missed probe must not age resident lines.
    #[inline]
    pub fn touch(&mut self, slot: usize) {
        self.use_clock += 1;
        self.last_use[slot] = self.use_clock;
    }

    /// The address resident in `slot`.
    #[inline]
    pub fn addr_at(&self, slot: usize) -> LineAddr {
        LineAddr::new(self.tags[slot])
    }

    /// The metadata word in `slot`.
    #[inline]
    pub fn word(&self, slot: usize) -> u64 {
        self.words[slot]
    }

    /// The data token in `slot`.
    #[inline]
    pub fn value(&self, slot: usize) -> u64 {
        self.values[slot]
    }

    /// Overwrites the metadata word in `slot` (no recency update).
    #[inline]
    pub fn set_word(&mut self, slot: usize, word: u64) {
        self.words[slot] = word;
    }

    /// Overwrites both the metadata word and the value in `slot` (no
    /// recency update).
    #[inline]
    pub fn set_slot(&mut self, slot: usize, word: u64, value: u64) {
        self.words[slot] = word;
        self.values[slot] = value;
    }

    /// Inserts `addr` with `(word, value)`, making it most-recently used.
    #[inline]
    pub fn insert(&mut self, addr: LineAddr, word: u64, value: u64) -> PackedInsertion {
        self.use_clock += 1;
        let clock = self.use_clock;

        if let Some(slot) = self.probe(addr) {
            self.last_use[slot] = clock;
            let old = PackedInsertion::Replaced {
                word: self.words[slot],
                value: self.values[slot],
            };
            self.words[slot] = word;
            self.values[slot] = value;
            return old;
        }

        let si = self.set_index(addr);
        let base = si * self.ways;
        let free = !self.occ[si] & way_mask(self.ways);
        if free != 0 {
            let w = free.trailing_zeros() as usize;
            self.occ[si] |= 1 << w;
            self.len += 1;
            let slot = base + w;
            self.tags[slot] = addr.raw();
            self.words[slot] = word;
            self.values[slot] = value;
            self.last_use[slot] = clock;
            return PackedInsertion::Fit;
        }

        // Set full: evict the LRU way (stamps are unique, so the minimum
        // is unambiguous).
        let mut victim_w = 0;
        let mut victim_use = u64::MAX;
        for w in 0..self.ways {
            let lu = self.last_use[base + w];
            if lu < victim_use {
                victim_use = lu;
                victim_w = w;
            }
        }
        let slot = base + victim_w;
        let victim = PackedInsertion::Evicted {
            addr: LineAddr::new(self.tags[slot]),
            word: self.words[slot],
            value: self.values[slot],
        };
        self.tags[slot] = addr.raw();
        self.words[slot] = word;
        self.values[slot] = value;
        self.last_use[slot] = clock;
        victim
    }

    /// Removes `addr`, returning its `(word, value)` if it was resident.
    pub fn remove(&mut self, addr: LineAddr) -> Option<(u64, u64)> {
        let slot = self.probe(addr)?;
        Some(self.take_at(slot))
    }

    /// Removes the line in `slot` (which must be occupied), returning its
    /// `(word, value)`.
    #[inline]
    pub fn take_at(&mut self, slot: usize) -> (u64, u64) {
        let si = slot / self.ways;
        let w = slot % self.ways;
        debug_assert!(self.occ[si] & (1 << w) != 0, "take_at on empty slot");
        self.occ[si] &= !(1 << w);
        self.len -= 1;
        (self.words[slot], self.values[slot])
    }

    /// Number of resident lines in the set that `addr` maps to.
    pub fn set_len(&self, addr: LineAddr) -> usize {
        self.occ[self.set_index(addr)].count_ones() as usize
    }

    /// Iterates over all resident `(addr, word, value)` triples in slot
    /// order (set-major — the deterministic scan order drains rely on).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, u64, u64)> + '_ {
        (0..self.sets).flat_map(move |si| {
            let base = si * self.ways;
            let occ = self.occ[si];
            (0..self.ways)
                .filter(move |w| occ & (1 << w) != 0)
                .map(move |w| {
                    let slot = base + w;
                    (
                        LineAddr::new(self.tags[slot]),
                        self.words[slot],
                        self.values[slot],
                    )
                })
        })
    }

    /// Visits every resident line in slot order with mutable access to its
    /// metadata word and value.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(LineAddr, &mut u64, &mut u64)) {
        for si in 0..self.sets {
            let base = si * self.ways;
            let mut occ = self.occ[si];
            while occ != 0 {
                let w = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let slot = base + w;
                f(
                    LineAddr::new(self.tags[slot]),
                    &mut self.words[slot],
                    &mut self.values[slot],
                );
            }
        }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        for occ in &mut self.occ {
            *occ = 0;
        }
        self.len = 0;
    }
}

#[inline]
fn way_mask(ways: usize) -> u64 {
    if ways == 64 {
        u64::MAX
    } else {
        (1u64 << ways) - 1
    }
}

/// Outcome of [`PackedLineCache::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedInsertion {
    /// The line fit without displacing anything.
    Fit,
    /// The line was already resident; its old state is returned.
    Replaced {
        /// The displaced metadata word.
        word: u64,
        /// The displaced value.
        value: u64,
    },
    /// The set was full; the LRU victim is returned.
    Evicted {
        /// The victim's address.
        addr: LineAddr,
        /// The victim's metadata word.
        word: u64,
        /// The victim's value.
        value: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn encode_decode_roundtrip() {
        for meta in [
            CacheLineMeta::clean(7),
            CacheLineMeta::dirty(9, EpochId(0)),
            CacheLineMeta::dirty(u64::MAX, EpochId(FIELD)),
            CacheLineMeta {
                value: 3,
                dirty: false,
                eid: Some(EpochId(12)),
            },
        ] {
            let (w, v) = encode_line(&meta);
            assert_eq!(decode_line(w, v), meta);
        }
    }

    #[test]
    fn untagged_words_have_zero_field() {
        let (w, _) = encode_line(&CacheLineMeta::clean(5));
        assert_eq!(w & (TAGGED | FIELD), 0);
        let (w, _) = encode_line(&CacheLineMeta {
            value: 5,
            dirty: true,
            eid: None,
        });
        assert_eq!(w & (TAGGED | FIELD), 0);
        assert_eq!(w, DIRTY);
    }

    #[test]
    fn basic_insert_probe() {
        let mut c = PackedLineCache::new(4, 2);
        assert!(matches!(c.insert(addr(1), DIRTY, 10), PackedInsertion::Fit));
        let slot = c.probe(addr(1)).unwrap();
        assert_eq!(c.word(slot), DIRTY);
        assert_eq!(c.value(slot), 10);
        assert!(c.contains(addr(1)));
        assert!(!c.contains(addr(2)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.capacity(), 8);
    }

    #[test]
    fn address_zero_is_a_real_line() {
        // Tag words for empty slots default to 0; the occupancy bitmap must
        // keep a probe for line 0 from matching them.
        let c = PackedLineCache::new(4, 2);
        assert!(!c.contains(addr(0)));
        let mut c = PackedLineCache::new(4, 2);
        c.insert(addr(0), 0, 42);
        assert_eq!(c.value(c.probe(addr(0)).unwrap()), 42);
        c.remove(addr(0)).unwrap();
        assert!(!c.contains(addr(0)), "removed line 0 still probes");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = PackedLineCache::new(1, 2);
        c.insert(addr(0), 0, 100);
        c.insert(addr(1), 0, 101);
        let s = c.probe(addr(0)).unwrap();
        c.touch(s); // 1 becomes LRU
        match c.insert(addr(2), 0, 102) {
            PackedInsertion::Evicted { addr: a, value, .. } => {
                assert_eq!(a, addr(1));
                assert_eq!(value, 101);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(addr(0)));
        assert!(c.contains(addr(2)));
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = PackedLineCache::new(1, 2);
        c.insert(addr(0), 0, 0);
        c.insert(addr(1), 0, 1);
        c.probe(addr(0)); // no recency update: 0 stays LRU
        match c.insert(addr(2), 0, 2) {
            PackedInsertion::Evicted { addr: a, .. } => assert_eq!(a, addr(0)),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn replace_returns_old_state() {
        let mut c = PackedLineCache::new(2, 2);
        c.insert(addr(0), 1, 10);
        match c.insert(addr(0), 2, 20) {
            PackedInsertion::Replaced { word, value } => {
                assert_eq!(word, 1);
                assert_eq!(value, 10);
            }
            other => panic!("expected Replaced, got {other:?}"),
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn full_set_reuses_freed_slots() {
        let mut c = PackedLineCache::new(1, 3);
        c.insert(addr(0), 0, 0);
        c.insert(addr(1), 0, 1);
        c.insert(addr(2), 0, 2);
        assert_eq!(c.set_len(addr(0)), 3);
        c.remove(addr(1));
        assert!(matches!(c.insert(addr(3), 0, 3), PackedInsertion::Fit));
        assert_eq!(c.len(), 3);
        let mut present: Vec<u64> = c.iter().map(|(a, _, _)| a.raw()).collect();
        present.sort_unstable();
        assert_eq!(present, vec![0, 2, 3]);
    }

    #[test]
    fn iter_and_for_each_mut_agree() {
        let mut c = PackedLineCache::new(4, 2);
        for i in 0..6 {
            c.insert(addr(i), i, i * 10);
        }
        let from_iter: Vec<_> = c.iter().collect();
        let mut from_visit = Vec::new();
        c.for_each_mut(|a, w, v| from_visit.push((a, *w, *v)));
        assert_eq!(from_iter, from_visit);
        c.for_each_mut(|_, w, _| *w |= DIRTY);
        assert!(c.iter().all(|(_, w, _)| w & DIRTY != 0));
    }

    #[test]
    fn clear_empties() {
        let mut c = PackedLineCache::new(2, 2);
        c.insert(addr(1), 0, 1);
        c.insert(addr(2), 0, 2);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(addr(1)));
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn non_power_of_two_sets_index_by_modulo() {
        let mut c = PackedLineCache::new(3, 1);
        c.insert(addr(0), 0, 0);
        c.insert(addr(1), 0, 1);
        c.insert(addr(2), 0, 2);
        assert_eq!(c.len(), 3);
        match c.insert(addr(3), 0, 3) {
            PackedInsertion::Evicted { addr: a, .. } => assert_eq!(a, addr(0)),
            other => panic!("expected eviction, got {other:?}"),
        }
    }
}
