//! Property tests for the foundation types: EID tag reconstruction, RNG
//! bounds, Zipf domains, and time conversion invariants.

use proptest::prelude::*;

use picl_types::epoch::wraparound_safe;
use picl_types::rng::Zipf;
use picl_types::time::{ClockDomain, Picoseconds};
use picl_types::{EpochId, Rng};

proptest! {
    /// Any epoch within the tag window reconstructs exactly from its
    /// truncated tag plus a reference epoch at the window's head.
    #[test]
    fn tag_reconstruction_roundtrips(
        base in 0u64..1_000_000,
        offset_back in 0u64..15,
        bits in 4u32..=16,
    ) {
        let reference = EpochId(base + offset_back);
        let eid = EpochId(base);
        prop_assume!(wraparound_safe(eid, reference, bits));
        let tag = eid.tag(bits);
        prop_assert_eq!(tag.reconstruct(reference), eid);
    }

    /// `below` is always within bounds and `range` within its interval.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX, lo in 0u64..1000, width in 1u64..1000) {
        let mut rng = Rng::new(seed);
        prop_assert!(rng.below(bound) < bound);
        let v = rng.range(lo, lo + width);
        prop_assert!(v >= lo && v < lo + width);
        let u = rng.unit_f64();
        prop_assert!((0.0..1.0).contains(&u));
    }

    /// Identical seeds yield identical streams; forks differ from parents.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut child = a.fork();
        // A fork almost surely diverges from the parent's next output.
        let parent_next = a.next_u64();
        let child_next = child.next_u64();
        prop_assert!(parent_next != child_next || seed == 0);
    }

    /// Zipf samples stay within the population for any skew.
    #[test]
    fn zipf_domain(n in 1u64..100_000, theta in 0.0f64..0.999, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = Rng::new(seed);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Cycle conversion is monotone in duration and never truncates a
    /// nonzero duration to zero cycles.
    #[test]
    fn clock_conversion_monotone(mhz in 1u64..5000, a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let clk = ClockDomain::from_mhz(mhz);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let ca = clk.cycles(Picoseconds(lo));
        let cb = clk.cycles(Picoseconds(hi));
        prop_assert!(ca <= cb);
        if lo > 0 {
            prop_assert!(ca.raw() > 0, "nonzero duration truncated to zero cycles");
        }
    }
}
