//! Counters and small statistics helpers used by run reports.

/// A saturating event counter.
///
/// Wraps a `u64` so that report code reads as `counter.add(n)` /
/// `counter.get()` and cannot be accidentally assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` events (saturating).
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Adds one event.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&self.0, f)
    }
}

impl std::ops::AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.add(rhs);
    }
}

/// Geometric mean of strictly positive values; the paper reports GMean for
/// its normalized-execution figures.
///
/// Returns `None` for an empty input or if any value is not finite and
/// positive.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut log_sum = 0.0f64;
    for &v in values {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        log_sum += v.ln();
    }
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; the paper reports AMean for the log-size figure.
///
/// Returns `None` for an empty input.
pub fn arithmetic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// A ratio of two counters rendered as `f64`, with `0/0 = 0`.
pub fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

/// Formats a byte count with a binary-unit suffix (`1.5 MiB`).
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{:.2} {}", v, UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        c += 5;
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn geomean() {
        let g = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn amean() {
        assert_eq!(arithmetic_mean(&[1.0, 3.0]), Some(2.0));
        assert!(arithmetic_mean(&[]).is_none());
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(6, 3), 2.0);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(5 * 1024 * 1024 + 512 * 1024), "5.50 MiB");
    }
}
