//! Counters and small statistics helpers used by run reports.

/// A saturating event counter.
///
/// Wraps a `u64` so that report code reads as `counter.add(n)` /
/// `counter.get()` and cannot be accidentally assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` events (saturating).
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Adds one event.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&self.0, f)
    }
}

impl std::ops::AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.add(rhs);
    }
}

/// A sampled instantaneous quantity (queue depth, buffer fill, …).
///
/// Unlike [`Counter`], a gauge can go up and down; it remembers the last
/// value it was set to plus the running minimum and maximum. All accessors
/// return `None` until the first [`set`](Gauge::set).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge {
    last: f64,
    min: f64,
    max: f64,
    samples: u64,
}

impl Gauge {
    /// A gauge with no samples yet.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Records a new instantaneous value.
    pub fn set(&mut self, value: f64) {
        if self.samples == 0 {
            self.min = value;
            self.max = value;
        } else {
            if value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
        }
        self.last = value;
        self.samples += 1;
    }

    /// The most recently set value.
    pub fn last(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.last)
    }

    /// The smallest value ever set.
    pub fn min(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.min)
    }

    /// The largest value ever set.
    pub fn max(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.max)
    }

    /// How many times the gauge has been set.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl std::fmt::Display for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.last(), self.min(), self.max()) {
            (Some(last), Some(min), Some(max)) => {
                write!(f, "last {last:.2} (min {min:.2}, max {max:.2})")
            }
            _ => write!(f, "no samples"),
        }
    }
}

/// Number of buckets in a [`Histogram`]: one for zero plus one per power
/// of two up to `u64::MAX`.
const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts exact zeros; bucket `i >= 1` counts values in
/// `[2^(i-1), 2^i - 1]`, so the full `u64` range fits in 65 buckets with
/// at most 2x relative error on [`percentile`](Histogram::percentile).
/// The exact maximum and sum are tracked on the side, so
/// [`max`](Histogram::max) and [`mean`](Histogram::mean) are precise.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Number of log2 buckets: one for zero plus one per power of two.
    ///
    /// Exposed so external shard-per-thread implementations (the
    /// `picl-obs` atomic histograms) can mirror the exact bucket layout
    /// and rebuild a `Histogram` via [`from_saved`](Histogram::from_saved).
    pub const BUCKETS: usize = HISTOGRAM_BUCKETS;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The bucket index `value` lands in (0 for zero, else
    /// `64 - leading_zeros`). Mirror of the private recording path, public
    /// for shard-per-thread histograms that keep their own atomic buckets.
    pub fn index_of(value: u64) -> usize {
        Self::bucket_index(value)
    }

    /// The inclusive upper bound of bucket `i` (saturating to
    /// `u64::MAX` for the top bucket). Public counterpart of the bound
    /// used by [`nonzero_buckets`](Histogram::nonzero_buckets).
    pub fn bound_of(i: usize) -> u64 {
        Self::bucket_bound(i.min(HISTOGRAM_BUCKETS - 1))
    }

    /// The inclusive upper bound of bucket `i` (what
    /// [`percentile`](Histogram::percentile) reports for samples landing
    /// there).
    fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// An upper bound on the `p`-th percentile (0.0–100.0): the bucket
    /// bound below which at least `p` percent of samples fall. `None` if
    /// empty. Accurate to the bucket width (a factor of two).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// An interpolated estimate of the `p`-th percentile (0.0–100.0).
    ///
    /// Where [`percentile`](Histogram::percentile) reports the bucket's
    /// inclusive upper bound (up to 2x above the true quantile), this
    /// spreads each log2 bucket's samples uniformly across its `[2^(i-1),
    /// 2^i - 1]` range and interpolates the rank inside it, then clamps to
    /// the exact observed maximum. `None` if empty.
    pub fn percentile_interpolated(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (seen + n) as f64 >= rank {
                let lo = if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
                let hi = Self::bucket_bound(i).min(self.max) as f64;
                let frac = ((rank - seen as f64) / n as f64).clamp(0.0, 1.0);
                return Some((lo + (hi - lo) * frac).min(self.max as f64));
            }
            seen += n;
        }
        Some(self.max as f64)
    }

    /// A total (never-`None`) percentile with defined edge cases, for
    /// report code that wants a number, not an `Option`:
    ///
    /// * empty histogram — `0.0` (nothing observed, report zero rather
    ///   than poisoning a table with NaN or a sentinel);
    /// * all samples in one bucket — the midpoint of that bucket's
    ///   max-clamped range. With no cross-bucket rank information,
    ///   interpolation would otherwise scale the rank across the bucket
    ///   and report a point (e.g. the upper bound at p99) that can sit a
    ///   factor of two away from every actual sample;
    /// * otherwise — [`percentile_interpolated`](Histogram::percentile_interpolated).
    pub fn percentile_defined(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut nonzero = self.buckets.iter().enumerate().filter(|(_, &n)| n > 0);
        let (first, _) = nonzero.next().expect("count > 0 implies a bucket");
        if nonzero.next().is_none() {
            let lo = if first == 0 {
                0.0
            } else {
                (1u64 << (first - 1)) as f64
            };
            let hi = Self::bucket_bound(first).min(self.max) as f64;
            return (lo + hi) / 2.0;
        }
        self.percentile_interpolated(p)
            .expect("count > 0 implies a percentile")
    }

    /// Interpolated median ([`percentile_interpolated`] at 50).
    pub fn p50(&self) -> Option<f64> {
        self.percentile_interpolated(50.0)
    }

    /// Interpolated 90th percentile.
    pub fn p90(&self) -> Option<f64> {
        self.percentile_interpolated(90.0)
    }

    /// Interpolated 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.percentile_interpolated(99.0)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending bound order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_bound(i), n))
    }

    /// Rebuilds a histogram from previously saved state: the
    /// [`nonzero_buckets`](Histogram::nonzero_buckets) pairs plus the
    /// exact `count`, `sum`, and `max`. The round trip
    /// `from_saved(h.nonzero_buckets(), h.count(), h.sum(), h.max())`
    /// reproduces `h` bit-identically — checkpoint resume depends on it.
    ///
    /// # Errors
    ///
    /// Returns a message if a bound is not a valid bucket upper bound or
    /// the bucket counts do not add up to `count`.
    pub fn from_saved(
        buckets: impl IntoIterator<Item = (u64, u64)>,
        count: u64,
        sum: u64,
        max: u64,
    ) -> Result<Histogram, String> {
        let mut h = Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count,
            sum,
            max,
        };
        let mut total = 0u64;
        for (bound, n) in buckets {
            let i = if bound == 0 {
                0
            } else {
                64 - bound.leading_zeros() as usize
            };
            if Self::bucket_bound(i) != bound {
                return Err(format!("{bound} is not a histogram bucket bound"));
            }
            h.buckets[i] += n;
            total += n;
        }
        if total != count {
            return Err(format!(
                "histogram bucket counts sum to {total}, expected {count}"
            ));
        }
        Ok(h)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field(
                "nonzero_buckets",
                &self.nonzero_buckets().collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl std::fmt::Display for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.mean(), self.percentile(99.0), self.max()) {
            (Some(mean), Some(p99), Some(max)) => {
                write!(
                    f,
                    "n={} mean={:.2} p99<={} max={}",
                    self.count, mean, p99, max
                )
            }
            _ => write!(f, "empty"),
        }
    }
}

/// Geometric mean of strictly positive values; the paper reports GMean for
/// its normalized-execution figures.
///
/// Edge cases are handled as follows:
///
/// * an empty slice has no mean — returns `None`;
/// * a single value is its own geometric mean (up to floating-point
///   rounding through `ln`/`exp`);
/// * any zero, negative, NaN, or infinite value poisons the whole input —
///   returns `None` rather than a partial mean, so a bad normalization
///   baseline can't silently skew a reported figure.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut log_sum = 0.0f64;
    for &v in values {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        log_sum += v.ln();
    }
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; the paper reports AMean for the log-size figure.
///
/// Returns `None` for an empty input.
pub fn arithmetic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// A ratio of two counters rendered as `f64`, with `0/0 = 0`.
pub fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

/// Formats a byte count with a binary-unit suffix (`1.5 MiB`).
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{:.2} {}", v, UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        c += 5;
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_tracks_last_min_max() {
        let mut g = Gauge::new();
        assert_eq!(g.last(), None);
        assert_eq!(g.min(), None);
        assert_eq!(g.max(), None);
        assert_eq!(g.to_string(), "no samples");
        g.set(4.0);
        g.set(1.0);
        g.set(3.0);
        assert_eq!(g.last(), Some(3.0));
        assert_eq!(g.min(), Some(1.0));
        assert_eq!(g.max(), Some(4.0));
        assert_eq!(g.samples(), 3);
        assert_eq!(g.to_string(), "last 3.00 (min 1.00, max 4.00)");
    }

    #[test]
    fn gauge_handles_negative_first_sample() {
        let mut g = Gauge::new();
        g.set(-2.0);
        assert_eq!(g.min(), Some(-2.0));
        assert_eq!(g.max(), Some(-2.0));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.to_string(), "empty");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1049);
        assert_eq!(h.max(), Some(1024));
        assert!((h.mean().unwrap() - 1049.0 / 8.0).abs() < 1e-12);
        // 0 -> bucket 0; 1 -> [1,1]; 2,3 -> [2,3]; 4,7 -> [4,7]; 8 -> [8,15];
        // 1024 -> [1024,2047].
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 2), (15, 1), (2047, 1)]
        );
    }

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1000);
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.percentile(50.0), Some(1));
        assert_eq!(h.percentile(99.0), Some(1));
        // The top sample lands in bucket [512,1023]; the reported bound is
        // clamped to the exact max.
        assert_eq!(h.percentile(100.0), Some(1000));
    }

    #[test]
    fn interpolated_percentiles_land_inside_buckets() {
        let mut h = Histogram::new();
        // One sample per value of [64, 127] — exactly one log2 bucket.
        for v in 64..=127u64 {
            h.record(v);
        }
        let p50 = h.p50().unwrap();
        // Interpolation places the median mid-bucket; the coarse estimate
        // can only report the 127 bound.
        assert!((95.0..=97.0).contains(&p50), "{p50}");
        assert_eq!(h.percentile(50.0), Some(127));

        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p90, p99) = (h.p50().unwrap(), h.p90().unwrap(), h.p99().unwrap());
        assert!(p50 < p90 && p90 < p99, "{p50} {p90} {p99}");
        // True quantiles are 500/900/990; log2 interpolation stays within
        // the enclosing bucket (a factor of two), far better than the
        // upper-bound estimate for p50.
        assert!((256.0..=1000.0).contains(&p50), "{p50}");
        assert!((512.0..=1000.0).contains(&p90), "{p90}");
        assert!(p99 <= 1000.0, "{p99}");
    }

    #[test]
    fn interpolated_percentiles_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);

        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.p50(), Some(0.0));
        assert_eq!(h.p99(), Some(0.0));

        let mut h = Histogram::new();
        h.record(5);
        // A single sample is every percentile, clamped to the exact max.
        assert_eq!(h.p50(), Some(5.0));
        assert_eq!(h.percentile_interpolated(100.0), Some(5.0));
    }

    #[test]
    fn defined_percentiles_have_total_edge_cases() {
        // Empty: a defined zero, where the Option APIs return None.
        let h = Histogram::new();
        assert_eq!(h.percentile_defined(50.0), 0.0);
        assert_eq!(h.percentile_defined(99.9), 0.0);

        // All samples exactly zero: single bucket [0, 0] — midpoint 0.
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.percentile_defined(99.0), 0.0);

        // One sample of 5 lands alone in bucket [4, 7], clamped to the
        // exact max: midpoint of [4, 5]. Every percentile reports it —
        // there is no rank information inside one bucket.
        let mut h = Histogram::new();
        h.record(5);
        assert_eq!(h.percentile_defined(1.0), 4.5);
        assert_eq!(h.percentile_defined(50.0), 4.5);
        assert_eq!(h.percentile_defined(99.9), 4.5);

        // Many samples, still one bucket [64, 127]: midpoint, not the
        // rank-scaled point interpolation would pick.
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(100);
        }
        assert_eq!(h.percentile_defined(99.0), (64.0 + 100.0) / 2.0);

        // Two buckets: falls through to plain interpolation.
        let mut h = Histogram::new();
        h.record(1);
        h.record(1000);
        assert_eq!(
            h.percentile_defined(50.0),
            h.percentile_interpolated(50.0).unwrap()
        );
    }

    #[test]
    fn bucket_helpers_mirror_recording() {
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let mut h = Histogram::new();
            h.record(v);
            let (bound, n) = h.nonzero_buckets().next().unwrap();
            assert_eq!(n, 1);
            assert_eq!(Histogram::bound_of(Histogram::index_of(v)), bound);
            assert!(v <= bound);
        }
        // Out-of-range indexes clamp to the top bucket instead of panicking.
        assert_eq!(Histogram::bound_of(usize::MAX), u64::MAX);
    }

    #[test]
    fn merge_then_percentile_equals_aggregate_then_percentile() {
        use crate::rng::Rng;
        // Seeded samples with a heavy tail, split across four per-thread
        // shards. Merging the shard histograms must give bit-identical
        // percentiles to one histogram fed every sample: log2 buckets,
        // counts, sums, and maxes all add exactly.
        let mut rng = Rng::new(0x0b5e_55ed);
        let mut aggregate = Histogram::new();
        let mut shards = vec![Histogram::new(); 4];
        for i in 0..10_000u64 {
            let v = match rng.below(100) {
                0..=79 => rng.below(1_000),
                80..=98 => 1_000 + rng.below(100_000),
                _ => 1_000_000 + rng.below(1_000_000_000),
            };
            aggregate.record(v);
            shards[(i % 4) as usize].record(v);
        }
        let mut merged = Histogram::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged, aggregate, "merge must reproduce full state");
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(merged.percentile(p), aggregate.percentile(p));
            assert_eq!(
                merged.percentile_interpolated(p),
                aggregate.percentile_interpolated(p)
            );
            assert_eq!(
                merged.percentile_defined(p),
                aggregate.percentile_defined(p)
            );
        }
    }

    #[test]
    fn histogram_merge_combines_everything() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(5);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 106);
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn histogram_extreme_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
    }

    #[test]
    fn histogram_saved_state_round_trips() {
        let mut h = Histogram::new();
        for v in [0, 1, 3, 900, u64::MAX] {
            h.record(v);
        }
        let restored = Histogram::from_saved(
            h.nonzero_buckets().collect::<Vec<_>>(),
            h.count(),
            h.sum(),
            h.max().unwrap(),
        )
        .unwrap();
        assert_eq!(restored, h);

        assert!(
            Histogram::from_saved([(5, 1)], 1, 5, 5).is_err(),
            "5 is not a bound"
        );
        assert!(
            Histogram::from_saved([(1, 1)], 2, 1, 1).is_err(),
            "count mismatch"
        );
    }

    #[test]
    fn geomean() {
        let g = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn geomean_edge_cases() {
        // A single value is its own geometric mean.
        let g = geometric_mean(&[3.5]).unwrap();
        assert!((g - 3.5).abs() < 1e-12);
        // Any non-finite or non-positive value poisons the whole input.
        assert!(geometric_mean(&[2.0, f64::INFINITY]).is_none());
        assert!(geometric_mean(&[2.0, f64::NEG_INFINITY]).is_none());
        assert!(geometric_mean(&[2.0, -1.0]).is_none());
        // Values below and above one balance out.
        let g = geometric_mean(&[0.5, 2.0]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amean() {
        assert_eq!(arithmetic_mean(&[1.0, 3.0]), Some(2.0));
        assert!(arithmetic_mean(&[]).is_none());
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(6, 3), 2.0);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(5 * 1024 * 1024 + 512 * 1024), "5.50 MiB");
    }
}
