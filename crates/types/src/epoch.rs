//! Epoch identifiers.
//!
//! The paper divides execution into *epochs* (Table I): an executing epoch
//! (the current `SystemEID`), committed epochs (finished but not necessarily
//! durable), and persisted epochs (fully written to NVM, recoverable).
//!
//! Logically EIDs grow without bound; the hardware stores only a small
//! truncated tag (4 bits suffice per §IV-A). [`EpochId`] is the unbounded
//! logical identifier used throughout the simulator, and [`TaggedEid`] models
//! the truncated hardware tag together with the wraparound-safety condition
//! that makes the truncation lossless.

/// An unbounded logical epoch identifier.
///
/// `EpochId(0)` is the state of memory before execution begins; the first
/// executing epoch is `EpochId(1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EpochId(pub u64);

impl EpochId {
    /// The pre-execution epoch: memory as it was at simulation start.
    pub const ZERO: EpochId = EpochId(0);

    /// Returns the raw epoch number.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The epoch immediately after this one.
    #[must_use]
    pub fn next(self) -> EpochId {
        EpochId(self.0 + 1)
    }

    /// The epoch immediately before this one.
    ///
    /// # Panics
    ///
    /// Panics if called on [`EpochId::ZERO`].
    #[must_use]
    pub fn prev(self) -> EpochId {
        assert!(self.0 > 0, "EpochId::ZERO has no predecessor");
        EpochId(self.0 - 1)
    }

    /// Epoch that is `gap` epochs before this one, saturating at zero.
    #[must_use]
    pub fn saturating_back(self, gap: u64) -> EpochId {
        EpochId(self.0.saturating_sub(gap))
    }

    /// The truncated hardware tag of this epoch for a given tag width.
    pub fn tag(self, bits: u32) -> TaggedEid {
        TaggedEid::new(self, bits)
    }
}

impl std::fmt::Display for EpochId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl From<u64> for EpochId {
    fn from(raw: u64) -> Self {
        EpochId(raw)
    }
}

/// A truncated epoch tag as stored in hardware (§IV-A: "4-bit values are
/// sufficient").
///
/// The truncation is lossless as long as the spread of live epochs — from the
/// oldest unpersisted epoch to the current `SystemEID` — stays below
/// `2^bits`. [`TaggedEid::reconstruct`] recovers the full [`EpochId`] under
/// that condition, and [`wraparound_safe`] states the condition itself so the
/// simulator can assert it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaggedEid {
    tag: u16,
    bits: u32,
}

impl TaggedEid {
    /// Truncates `eid` to its low `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 16.
    pub fn new(eid: EpochId, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "tag width must be 1..=16 bits");
        TaggedEid {
            tag: (eid.0 & ((1u64 << bits) - 1)) as u16,
            bits,
        }
    }

    /// The raw truncated tag value.
    pub fn raw(self) -> u16 {
        self.tag
    }

    /// The tag width in bits.
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Reconstructs the full epoch id given any *reference* epoch known to be
    /// within `2^bits - 1` epochs at or after the tagged epoch (typically the
    /// current `SystemEID`).
    ///
    /// Returns the unique `EpochId <= reference` whose truncation equals this
    /// tag.
    pub fn reconstruct(self, reference: EpochId) -> EpochId {
        let modulus = 1u64 << self.bits;
        let ref_tag = reference.0 & (modulus - 1);
        let back = (ref_tag + modulus - u64::from(self.tag)) % modulus;
        EpochId(reference.0 - back)
    }
}

impl std::fmt::Display for TaggedEid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{:#x}/{}b", self.tag, self.bits)
    }
}

/// Whether the live-epoch window `[oldest, newest]` can be represented
/// without ambiguity by tags of the given width.
///
/// This is the wraparound-safety condition the hardware must maintain: the
/// ACS engine may never let persistence lag execution by `2^bits` or more
/// epochs.
pub fn wraparound_safe(oldest: EpochId, newest: EpochId, bits: u32) -> bool {
    newest.0 - oldest.0 < (1u64 << bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_prev() {
        let e = EpochId(5);
        assert_eq!(e.next(), EpochId(6));
        assert_eq!(e.prev(), EpochId(4));
        assert_eq!(e.saturating_back(3), EpochId(2));
        assert_eq!(e.saturating_back(10), EpochId::ZERO);
    }

    #[test]
    #[should_panic(expected = "no predecessor")]
    fn prev_of_zero_panics() {
        let _ = EpochId::ZERO.prev();
    }

    #[test]
    fn tag_truncates() {
        let t = EpochId(0x123).tag(4);
        assert_eq!(t.raw(), 0x3);
        assert_eq!(t.bits(), 4);
    }

    #[test]
    fn reconstruct_within_window() {
        // Tag width 4: window of 16 epochs.
        for base in [0u64, 13, 100, 4093] {
            let reference = EpochId(base + 15);
            for off in 0..16 {
                let eid = EpochId(base + off);
                let t = eid.tag(4);
                assert_eq!(t.reconstruct(reference), eid, "base={base} off={off}");
            }
        }
    }

    #[test]
    fn reconstruct_is_ambiguous_outside_window() {
        // An epoch 16 back aliases with the reference itself under 4 bits.
        let reference = EpochId(32);
        let stale = EpochId(16);
        assert_eq!(stale.tag(4).reconstruct(reference), reference);
        assert!(!wraparound_safe(stale, reference, 4));
        assert!(wraparound_safe(EpochId(17), reference, 4));
    }

    #[test]
    #[should_panic(expected = "tag width")]
    fn zero_width_tag_panics() {
        let _ = EpochId(1).tag(0);
    }

    #[test]
    fn display() {
        assert_eq!(EpochId(7).to_string(), "E7");
        assert_eq!(EpochId(7).tag(4).to_string(), "T0x7/4b");
    }
}
