//! Common foundation types for the PiCL reproduction.
//!
//! This crate holds the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`addr`] — strongly-typed physical addresses at byte, cache-line,
//!   sub-block, and page granularity.
//! * [`epoch`] — epoch identifiers ([`EpochId`]) and the 4-bit hardware tag
//!   analysis ([`epoch::TaggedEid`]).
//! * [`time`] — simulation clock types ([`Cycle`]) and nanosecond/cycle
//!   conversion at a configured core frequency.
//! * [`config`] — the system configuration mirroring Table IV of the paper,
//!   with a builder for sensitivity sweeps.
//! * [`stats`] — counters and small numeric helpers (geometric mean etc.)
//!   used by run reports.
//! * [`rng`] — a deterministic, dependency-free PRNG (SplitMix64 seeded
//!   xoshiro256**) plus Zipf sampling, so identical seeds reproduce
//!   identical experiments bit-for-bit.
//!
//! # Example
//!
//! ```
//! use picl_types::{Address, LineAddr, config::SystemConfig};
//!
//! let cfg = SystemConfig::paper_single_core();
//! let a = Address::new(0x1040);
//! let line: LineAddr = a.line();
//! assert_eq!(line.base().raw(), 0x1040 & !63);
//! assert_eq!(cfg.cores, 1);
//! ```

pub mod addr;
pub mod config;
pub mod epoch;
pub mod hash;
pub mod rng;
pub mod stats;
pub mod time;

pub use addr::{
    Address, LineAddr, PageAddr, SubBlockAddr, LINE_BYTES, PAGE_BYTES, SUB_BLOCK_BYTES,
};
pub use config::SystemConfig;
pub use epoch::EpochId;
pub use rng::Rng;
pub use time::Cycle;

/// Identifier of a core (hardware thread) in the simulated system.
///
/// Cores are numbered densely from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl CoreId {
    /// Returns the raw index of this core.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_display() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(CoreId(3).index(), 3);
    }

    #[test]
    fn core_id_ordering() {
        assert!(CoreId(0) < CoreId(1));
        assert_eq!(CoreId::default(), CoreId(0));
    }
}
