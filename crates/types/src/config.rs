//! System configuration.
//!
//! [`SystemConfig`] mirrors Table IV of the paper:
//!
//! > 2.0 GHz in-order x86, CPI 1 for non-memory instructions; 32 KB 4-way
//! > single-cycle L1; 256 KB 8-way 4-cycle L2; 2 MB-per-core 8-way 30-cycle
//! > LLC; 64-bit 12.8 GB/s memory link; FCFS controller, closed-page;
//! > 128 ns row read, 368 ns row write.
//!
//! plus the PiCL parameters from §III–IV (2 KB undo buffer ≙ 32 entries,
//! 4096-bit bloom filter, 4-bit EID tags, ACS-gap 3, 30 M-instruction
//! epochs) and the baseline translation-table geometry from §VI-A (6144
//! entries, 16-way; ThyNVM 2048 block + 4096 page entries).
//!
//! Configs are plain data with public fields; [`SystemConfig::validate`]
//! checks cross-field invariants before a simulation is built.

use crate::addr::LINE_BYTES;
use crate::time::{ClockDomain, Cycle, Picoseconds};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access (hit) latency in core cycles.
    pub latency: Cycle,
}

impl CacheConfig {
    /// Creates a cache configuration.
    pub fn new(size_bytes: u64, ways: usize, latency: Cycle) -> Self {
        CacheConfig {
            size_bytes,
            ways,
            latency,
        }
    }

    /// Number of sets implied by the size, associativity, and 64 B lines.
    pub fn sets(&self) -> usize {
        (self.size_bytes / LINE_BYTES) as usize / self.ways
    }

    /// Total number of lines this cache can hold.
    pub fn lines(&self) -> usize {
        (self.size_bytes / LINE_BYTES) as usize
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the size is not an exact multiple of
    /// `ways × 64 B` or the set count is not a power of two.
    pub fn validate(&self, what: &'static str) -> Result<(), ConfigError> {
        if self.ways == 0 || self.size_bytes == 0 {
            return Err(ConfigError::new(what, "size and ways must be nonzero"));
        }
        if !self
            .size_bytes
            .is_multiple_of(LINE_BYTES * self.ways as u64)
        {
            return Err(ConfigError::new(
                what,
                "size must divide into ways of 64 B lines",
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(ConfigError::new(what, "set count must be a power of two"));
        }
        Ok(())
    }
}

/// Row-buffer management policy of the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowPolicy {
    /// Rows stay open between requests; a subsequent access to the same
    /// row pays only the row-hit latency.
    Open,
    /// Rows close after every request (Table IV): each request pays the
    /// full activate latency, and only a single *bulk* request streams
    /// multiple lines under one activation.
    Closed,
}

/// Timing and geometry of the NVM device and its memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmConfig {
    /// Latency of a read that misses the row buffer (Table IV: 128 ns).
    pub row_read_miss: Picoseconds,
    /// Latency of a write that misses the row buffer (Table IV: 368 ns).
    pub row_write_miss: Picoseconds,
    /// Latency of an access that hits the open row.
    pub row_hit: Picoseconds,
    /// Row buffer size in bytes (§II-C: at least 2 KB in current products).
    pub row_buffer_bytes: u64,
    /// Number of independent banks. Capacity-optimized NVM devices expose
    /// far less bank-level parallelism than DRAM (§II-C: low random-access
    /// IOPS); four concurrent activations is representative.
    pub banks: usize,
    /// Memory link bandwidth in bytes per core cycle ×1000 (milli-bytes per
    /// cycle), so a 12.8 GB/s link at 2 GHz is 6400.
    pub link_millibytes_per_cycle: u64,
    /// Row-buffer policy (Table IV: closed-page).
    pub row_policy: RowPolicy,
    /// Pages of memory-side write-through DRAM cache (§IV-C extension);
    /// zero disables the buffer (the paper's evaluated configuration).
    pub dram_buffer_pages: usize,
    /// DRAM-buffer hit latency.
    pub dram_hit: Picoseconds,
}

impl NvmConfig {
    /// The paper's NVM: 128/368 ns row misses, 2 KB rows, 12.8 GB/s link.
    pub fn paper_nvm() -> Self {
        NvmConfig {
            row_read_miss: Picoseconds::from_ns(128),
            row_write_miss: Picoseconds::from_ns(368),
            row_hit: Picoseconds::from_ns(15),
            row_buffer_bytes: 2048,
            banks: 4,
            link_millibytes_per_cycle: 6400,
            row_policy: RowPolicy::Closed,
            dram_buffer_pages: 0,
            dram_hit: Picoseconds::from_ns(50),
        }
    }

    /// An idealized DRAM-like device used for sanity comparisons: uniform
    /// fast access, ample bank parallelism, open rows.
    pub fn ideal_dram() -> Self {
        NvmConfig {
            row_read_miss: Picoseconds::from_ns(50),
            row_write_miss: Picoseconds::from_ns(50),
            row_hit: Picoseconds::from_ns(15),
            row_buffer_bytes: 2048,
            banks: 16,
            link_millibytes_per_cycle: 6400,
            row_policy: RowPolicy::Open,
            dram_buffer_pages: 0,
            dram_hit: Picoseconds::from_ns(50),
        }
    }

    /// Cycles the link needs to transfer `bytes` at the configured bandwidth.
    pub fn link_cycles(&self, bytes: u64) -> Cycle {
        Cycle((bytes * 1000).div_ceil(self.link_millibytes_per_cycle))
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if geometry fields are zero or the row buffer
    /// is smaller than one cache line.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.banks == 0 {
            return Err(ConfigError::new("nvm", "bank count must be nonzero"));
        }
        if self.row_buffer_bytes < LINE_BYTES {
            return Err(ConfigError::new(
                "nvm",
                "row buffer must hold at least one line",
            ));
        }
        if self.link_millibytes_per_cycle == 0 {
            return Err(ConfigError::new("nvm", "link bandwidth must be nonzero"));
        }
        Ok(())
    }
}

/// Epoch, logging, and ACS parameters (§III–IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochConfig {
    /// Epoch length in retired instructions per core (§VI-A: 30 M).
    pub epoch_len_instructions: u64,
    /// ACS-gap: how many epochs persistence trails commit (§III-C, Fig. 4
    /// shows a gap of three).
    pub acs_gap: u64,
    /// Capacity of the on-chip undo buffer in entries (§IV-A: 32 entries,
    /// flushed as a 2 KB sequential write).
    pub undo_buffer_entries: usize,
    /// Bloom filter size in bits (§III-B: 4096 bits vs 32-entry capacity).
    pub bloom_bits: usize,
    /// Width of the per-line EID tag in bits (§IV-A: 4 bits suffice).
    pub eid_bits: u32,
}

impl EpochConfig {
    /// The paper's defaults.
    pub fn paper_default() -> Self {
        EpochConfig {
            epoch_len_instructions: 30_000_000,
            acs_gap: 3,
            undo_buffer_entries: 32,
            bloom_bits: 4096,
            eid_bits: 4,
        }
    }

    /// Checks internal consistency, including 4-bit-tag wraparound safety:
    /// the ACS-gap plus one executing epoch must fit in the tag window.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is zero where disallowed or
    /// the ACS gap is too large for the tag width.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.epoch_len_instructions == 0 {
            return Err(ConfigError::new("epoch", "epoch length must be nonzero"));
        }
        if self.undo_buffer_entries == 0 {
            return Err(ConfigError::new(
                "epoch",
                "undo buffer must hold at least one entry",
            ));
        }
        if self.bloom_bits == 0 || !self.bloom_bits.is_power_of_two() {
            return Err(ConfigError::new(
                "epoch",
                "bloom bits must be a nonzero power of two",
            ));
        }
        if !(1..=16).contains(&self.eid_bits) {
            return Err(ConfigError::new(
                "epoch",
                "EID tag width must be 1..=16 bits",
            ));
        }
        // Live window: persisting epoch .. SystemEID, spread = acs_gap + 1.
        if self.acs_gap + 2 >= (1u64 << self.eid_bits) {
            return Err(ConfigError::new(
                "epoch",
                "ACS gap too large for EID tag width",
            ));
        }
        Ok(())
    }
}

/// Translation-table geometry for the redo-based baselines (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableConfig {
    /// Total entries in the Journaling / Shadow-Paging translation table.
    pub entries: usize,
    /// Associativity of the table.
    pub ways: usize,
    /// ThyNVM block-granularity (64 B) table entries.
    pub thynvm_block_entries: usize,
    /// ThyNVM page-granularity (4 KB) table entries.
    pub thynvm_page_entries: usize,
}

impl TableConfig {
    /// The paper's table geometry: 6144 entries, 16-way; ThyNVM 2048 + 4096.
    pub fn paper_default() -> Self {
        TableConfig {
            entries: 6144,
            ways: 16,
            thynvm_block_entries: 2048,
            thynvm_page_entries: 4096,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if entries do not divide evenly into ways.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ways == 0 || self.entries == 0 {
            return Err(ConfigError::new(
                "table",
                "entries and ways must be nonzero",
            ));
        }
        if !self.entries.is_multiple_of(self.ways) {
            return Err(ConfigError::new(
                "table",
                "entries must divide evenly into ways",
            ));
        }
        Ok(())
    }
}

/// Full system configuration (Table IV plus scheme parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core clock frequency in MHz (Table IV: 2.0 GHz).
    pub clock_mhz: u64,
    /// Private per-core L1 data cache.
    pub l1: CacheConfig,
    /// Private per-core L2 cache.
    pub l2: CacheConfig,
    /// Shared LLC capacity *per core* (Table IV: 2 MB per core).
    pub llc_per_core: CacheConfig,
    /// NVM device and controller parameters.
    pub nvm: NvmConfig,
    /// Epoch / PiCL parameters.
    pub epoch: EpochConfig,
    /// Baseline translation-table parameters.
    pub table: TableConfig,
}

impl SystemConfig {
    /// The paper's single-core configuration (Fig. 9 experiments).
    pub fn paper_single_core() -> Self {
        SystemConfig {
            cores: 1,
            clock_mhz: 2000,
            l1: CacheConfig::new(32 * 1024, 4, Cycle(1)),
            l2: CacheConfig::new(256 * 1024, 8, Cycle(4)),
            llc_per_core: CacheConfig::new(2 * 1024 * 1024, 8, Cycle(30)),
            nvm: NvmConfig::paper_nvm(),
            epoch: EpochConfig::paper_default(),
            table: TableConfig::paper_default(),
        }
    }

    /// The paper's eight-core configuration (Fig. 10 experiments): the LLC
    /// scales to 16 MB total.
    pub fn paper_multicore(cores: usize) -> Self {
        SystemConfig {
            cores,
            ..Self::paper_single_core()
        }
    }

    /// The total shared LLC configuration (per-core slice × core count).
    pub fn llc_total(&self) -> CacheConfig {
        CacheConfig {
            size_bytes: self.llc_per_core.size_bytes * self.cores as u64,
            ..self.llc_per_core
        }
    }

    /// The core clock domain.
    pub fn clock(&self) -> ClockDomain {
        ClockDomain::from_mhz(self.clock_mhz)
    }

    /// Checks all cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in any component.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("system", "core count must be nonzero"));
        }
        if self.clock_mhz == 0 {
            return Err(ConfigError::new(
                "system",
                "clock frequency must be nonzero",
            ));
        }
        self.l1.validate("l1")?;
        self.l2.validate("l2")?;
        self.llc_total().validate("llc")?;
        self.nvm.validate()?;
        self.epoch.validate()?;
        self.table.validate()?;
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_single_core()
    }
}

/// An invalid configuration was supplied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    component: &'static str,
    reason: &'static str,
}

impl ConfigError {
    fn new(component: &'static str, reason: &'static str) -> Self {
        ConfigError { component, reason }
    }

    /// Which configuration component was invalid (`"l1"`, `"nvm"`, …).
    pub fn component(&self) -> &str {
        self.component
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {} configuration: {}",
            self.component, self.reason
        )
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let cfg = SystemConfig::paper_single_core();
        cfg.validate().unwrap();
        assert_eq!(cfg.l1.sets(), 128);
        assert_eq!(cfg.l2.sets(), 512);
        assert_eq!(cfg.llc_per_core.sets(), 4096);
        assert_eq!(cfg.llc_per_core.lines(), 32768);
    }

    #[test]
    fn multicore_scales_llc() {
        let cfg = SystemConfig::paper_multicore(8);
        cfg.validate().unwrap();
        assert_eq!(cfg.llc_total().size_bytes, 16 * 1024 * 1024);
        assert_eq!(cfg.llc_total().sets(), 32768);
    }

    #[test]
    fn link_transfer_cycles() {
        let nvm = NvmConfig::paper_nvm();
        // 12.8 GB/s at 2 GHz = 6.4 B/cycle; a 64 B line takes 10 cycles.
        assert_eq!(nvm.link_cycles(64), Cycle(10));
        // A 2 KB bulk write takes 320 cycles of link time.
        assert_eq!(nvm.link_cycles(2048), Cycle(320));
    }

    #[test]
    fn bad_cache_geometry_rejected() {
        let mut cfg = SystemConfig::paper_single_core();
        cfg.l1.ways = 3; // 32768/64/3 is not integral
        assert_eq!(cfg.validate().unwrap_err().component(), "l1");
        cfg.l1 = CacheConfig::new(0, 4, Cycle(1));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn acs_gap_wraparound_guard() {
        let mut cfg = SystemConfig::paper_single_core();
        cfg.epoch.acs_gap = 14; // needs 16-epoch window; 4-bit tags hold < 16
        assert_eq!(cfg.validate().unwrap_err().component(), "epoch");
        cfg.epoch.acs_gap = 13;
        cfg.validate().unwrap();
    }

    #[test]
    fn error_display() {
        let err = SystemConfig {
            cores: 0,
            ..SystemConfig::paper_single_core()
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("core count"));
    }

    #[test]
    fn table_geometry_rejected() {
        let mut cfg = SystemConfig::paper_single_core();
        cfg.table.ways = 5;
        assert_eq!(cfg.validate().unwrap_err().component(), "table");
    }
}
