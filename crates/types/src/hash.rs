//! Fast deterministic hashing for simulator-internal maps.
//!
//! Simulation state lives in multi-million-entry hash maps keyed by line
//! addresses; the standard library's DoS-resistant SipHash costs more than
//! the rest of an access's work. [`FastMap`]/[`FastSet`] use a Fibonacci
//! multiplicative hash instead — keys are simulator-internal addresses, so
//! adversarial collisions are not a concern, and determinism across runs is
//! a feature (SipHash's random seed is not reproducible).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A multiplicative hasher for integer-like keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, n: u64) {
        // The rustc-hash recurrence: ends in a multiply, so the low bits
        // (hashbrown's bucket index) cycle distinctly for sequential keys.
        self.state = (self.state.rotate_left(5) ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// The `BuildHasher` for [`FxHasher`].
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string.
///
/// Used where a *stable on-media* digest is needed (the `picl-store` file
/// layout checksums its superblock and log blocks with it): unlike
/// [`FxHasher`], the output is a specified function of the bytes alone, so
/// files written by one build verify under any other.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A `HashMap` with deterministic, fast hashing.
pub type FastMap<K, V> = HashMap<K, V, FxBuild>;

/// A `HashSet` with deterministic, fast hashing.
pub type FastSet<T> = HashSet<T, FxBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 64, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn set_round_trips() {
        let mut s: FastSet<u64> = FastSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.contains(&42));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
        // Sensitivity: one flipped bit changes the digest.
        assert_ne!(fnv1a_64(b"foobas"), fnv1a_64(b"foobar"));
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        // Sequential line addresses must not collide in low bits, or maps
        // degenerate into linked lists.
        let mut low_bits: FastSet<u64> = FastSet::default();
        for i in 0..256u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 0xFF);
        }
        assert!(
            low_bits.len() > 128,
            "only {} distinct low bytes",
            low_bits.len()
        );
    }
}
