//! Simulation time.
//!
//! The simulator counts core clock cycles. Table IV's memory latencies are
//! given in nanoseconds at a 2.0 GHz core clock, so [`Picoseconds`] values
//! convert to [`Cycle`] counts through [`ClockDomain`].

/// A point in (or duration of) simulated time, in core clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the raw cycle count.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of two time points, as a duration.
    #[must_use]
    pub fn saturating_since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }

    /// The later of two time points.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl std::ops::Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl std::ops::Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl std::ops::AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl std::fmt::Display for Cycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

/// A duration expressed in picoseconds, used for configuration input.
///
/// Picoseconds (rather than nanoseconds) keep sub-nanosecond clock periods
/// exact: a 2.0 GHz clock has a 500 ps period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Picoseconds(pub u64);

impl Picoseconds {
    /// Constructs a duration from nanoseconds.
    pub fn from_ns(ns: u64) -> Self {
        Picoseconds(ns * 1000)
    }

    /// Returns the duration in picoseconds.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Converts real-time durations to core cycles for a fixed core frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDomain {
    /// Clock period in picoseconds.
    period_ps: u64,
}

impl ClockDomain {
    /// A clock domain running at the given frequency in megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "clock frequency must be nonzero");
        ClockDomain {
            period_ps: 1_000_000 / mhz,
        }
    }

    /// The clock period in picoseconds.
    pub fn period_ps(self) -> u64 {
        self.period_ps
    }

    /// Converts a duration to cycles, rounding up (a latency of 1.5 periods
    /// occupies 2 cycles).
    pub fn cycles(self, d: Picoseconds) -> Cycle {
        Cycle(d.0.div_ceil(self.period_ps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let mut c = Cycle(10);
        c += 5u64;
        c += Cycle(1);
        assert_eq!(c, Cycle(16));
        assert_eq!(c + 4u64, Cycle(20));
        assert_eq!(c.saturating_since(Cycle(20)), Cycle::ZERO);
        assert_eq!(Cycle(3).max(Cycle(7)), Cycle(7));
        assert_eq!(c.to_string(), "16cy");
    }

    #[test]
    fn table_iv_latencies_at_2ghz() {
        // Table IV: 2.0 GHz core, 128 ns row read, 368 ns row write.
        let clk = ClockDomain::from_mhz(2000);
        assert_eq!(clk.period_ps(), 500);
        assert_eq!(clk.cycles(Picoseconds::from_ns(128)), Cycle(256));
        assert_eq!(clk.cycles(Picoseconds::from_ns(368)), Cycle(736));
    }

    #[test]
    fn conversion_rounds_up() {
        let clk = ClockDomain::from_mhz(2000);
        assert_eq!(clk.cycles(Picoseconds(501)), Cycle(2));
        assert_eq!(clk.cycles(Picoseconds(500)), Cycle(1));
        assert_eq!(clk.cycles(Picoseconds(0)), Cycle(0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_frequency_panics() {
        let _ = ClockDomain::from_mhz(0);
    }
}
