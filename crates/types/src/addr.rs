//! Strongly-typed physical addresses.
//!
//! The simulator works at four granularities, all of which appear in the
//! paper:
//!
//! * byte addresses ([`Address`]) — what a core issues;
//! * 64-byte cache lines ([`LineAddr`]) — the tracking granularity of the
//!   evaluation configuration;
//! * 16-byte sub-blocks ([`SubBlockAddr`]) — the tracking granularity of the
//!   OpenPiton FPGA prototype (§V-A);
//! * 4 KB pages ([`PageAddr`]) — the granularity of Shadow Paging and of
//!   ThyNVM's page-grain redo table.
//!
//! Newtypes keep the granularities from being mixed up at compile time
//! (C-NEWTYPE).

/// Bytes per cache line (Table IV: 64-byte lines).
pub const LINE_BYTES: u64 = 64;
/// Bytes per OpenPiton private-cache sub-block (§V-A: 16 bytes).
pub const SUB_BLOCK_BYTES: u64 = 16;
/// Bytes per page (4 KB, the Shadow-Paging / ThyNVM page granularity).
pub const PAGE_BYTES: u64 = 4096;

/// A byte-granularity physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte offset.
    pub fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte offset.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The 16-byte sub-block containing this address.
    pub fn sub_block(self) -> SubBlockAddr {
        SubBlockAddr(self.0 / SUB_BLOCK_BYTES)
    }

    /// The 4 KB page containing this address.
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }

    /// Byte offset of this address within its cache line.
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line-granularity address (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line *index* (not a byte address).
    pub fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// Returns the line index.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of this line.
    pub fn base(self) -> Address {
        Address(self.0 * LINE_BYTES)
    }

    /// The page containing this line.
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 * LINE_BYTES / PAGE_BYTES)
    }

    /// The first 16-byte sub-block of this line.
    pub fn first_sub_block(self) -> SubBlockAddr {
        SubBlockAddr(self.0 * (LINE_BYTES / SUB_BLOCK_BYTES))
    }

    /// Index of this line within its 4 KB page (`0..64`).
    pub fn index_in_page(self) -> u64 {
        self.0 % (PAGE_BYTES / LINE_BYTES)
    }
}

impl From<u64> for LineAddr {
    fn from(index: u64) -> Self {
        LineAddr(index)
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A 16-byte sub-block address, the OpenPiton prototype's tracking grain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SubBlockAddr(u64);

impl SubBlockAddr {
    /// Creates a sub-block address from a sub-block index.
    pub fn new(index: u64) -> Self {
        SubBlockAddr(index)
    }

    /// Returns the sub-block index.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this sub-block.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 * SUB_BLOCK_BYTES / LINE_BYTES)
    }

    /// Index of this sub-block within its 64-byte line (`0..4`).
    pub fn index_in_line(self) -> u64 {
        self.0 % (LINE_BYTES / SUB_BLOCK_BYTES)
    }
}

impl std::fmt::Display for SubBlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{:#x}", self.0)
    }
}

/// A 4 KB-page-granularity address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a page index.
    pub fn new(index: u64) -> Self {
        PageAddr(index)
    }

    /// Returns the page index.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of this page.
    pub fn base(self) -> Address {
        Address(self.0 * PAGE_BYTES)
    }

    /// The first cache line of this page.
    pub fn first_line(self) -> LineAddr {
        LineAddr(self.0 * PAGE_BYTES / LINE_BYTES)
    }

    /// Iterates over all 64 cache lines of this page.
    pub fn lines(self) -> impl Iterator<Item = LineAddr> {
        let first = self.0 * PAGE_BYTES / LINE_BYTES;
        (first..first + PAGE_BYTES / LINE_BYTES).map(LineAddr)
    }
}

impl std::fmt::Display for PageAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_round_trips() {
        let a = Address::new(0x12345);
        assert_eq!(a.raw(), 0x12345);
        assert_eq!(a.line().base().raw(), 0x12345 & !(LINE_BYTES - 1));
        assert_eq!(a.line_offset(), 0x12345 % LINE_BYTES);
    }

    #[test]
    fn line_page_relationship() {
        let p = PageAddr::new(7);
        let lines: Vec<_> = p.lines().collect();
        assert_eq!(lines.len(), 64);
        for l in &lines {
            assert_eq!(l.page(), p);
        }
        assert_eq!(lines[0], p.first_line());
        assert_eq!(lines[0].index_in_page(), 0);
        assert_eq!(lines[63].index_in_page(), 63);
    }

    #[test]
    fn sub_blocks_per_line() {
        let l = LineAddr::new(10);
        let s = l.first_sub_block();
        assert_eq!(s.line(), l);
        assert_eq!(s.index_in_line(), 0);
        let last = SubBlockAddr::new(s.raw() + 3);
        assert_eq!(last.line(), l);
        assert_eq!(last.index_in_line(), 3);
        assert_eq!(SubBlockAddr::new(s.raw() + 4).line(), LineAddr::new(11));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Address::new(0x40).to_string(), "0x40");
        assert_eq!(LineAddr::new(1).to_string(), "L0x1");
        assert_eq!(PageAddr::new(2).to_string(), "P0x2");
        assert_eq!(SubBlockAddr::new(3).to_string(), "S0x3");
        assert_eq!(format!("{:x}", Address::new(255)), "ff");
    }

    #[test]
    fn conversions_from_raw() {
        let a: Address = 128u64.into();
        assert_eq!(a.line(), LineAddr::from(2));
        assert_eq!(a.sub_block().raw(), 8);
        assert_eq!(a.page().raw(), 0);
    }
}
