//! Deterministic pseudo-random number generation.
//!
//! Experiments must be reproducible bit-for-bit from a seed, so the
//! simulator uses its own small generator rather than an OS-seeded one:
//! xoshiro256** state initialized by SplitMix64, following the reference
//! constructions by Blackman and Vigna. A [`Zipf`] sampler provides the
//! skewed ("hot set") address distributions used by the workload
//! generators.

/// A seeded xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` (Lemire's unbiased method).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Widening-multiply rejection sampling.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Derives an independent child generator; used to give each core or
    /// generator its own stream from one experiment seed.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

/// Anchor tables for the table-driven `x^alpha` kernel: 128 buckets over
/// the mantissa (for `log2`) and 128 buckets over the fractional exponent
/// (for `2^f`). 3 KB total, cache-resident on the hot path.
struct PowTables {
    /// `log2(1 + i/128)`.
    log2: [f64; 128],
    /// `1 / (1 + i/128)`.
    inv: [f64; 128],
    /// `2^(j/128)`.
    exp2: [f64; 128],
}

fn pow_tables() -> &'static PowTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<PowTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = PowTables {
            log2: [0.0; 128],
            inv: [0.0; 128],
            exp2: [0.0; 128],
        };
        for i in 0..128 {
            let a = 1.0 + i as f64 / 128.0;
            t.log2[i] = a.log2();
            t.inv[i] = 1.0 / a;
            t.exp2[i] = (i as f64 / 128.0).exp2();
        }
        t
    })
}

/// `x^alpha` for `x` in `(0, 1]`, computed as `2^(alpha·log2 x)` with
/// table-driven kernels: 128-entry anchor tables plus short residual
/// polynomials, avoiding both `powf`'s generality and any libm rounding
/// call (round-to-int uses the 2^52 magic-constant trick). Relative error
/// stays below `1e-6` for the `alpha` range Zipf uses, and the short
/// dependency chains beat `f64::powf` on the trace-decode hot path.
#[inline]
fn pow_unit(x: f64, alpha: f64) -> f64 {
    debug_assert!(x > 0.0 && x <= 1.0, "pow_unit domain is (0, 1]");
    let t = pow_tables();
    let bits = x.to_bits();
    let e = ((bits >> 52) as i64 & 0x7ff) - 1023;
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    // log2(m) for m in [1, 2): anchor at a = 1 + i/128, residual
    // r = m/a - 1 in [0, 1/128), ln(1+r) by a cubic (error < 1e-9).
    let i = ((bits >> 45) & 0x7f) as usize;
    let r = m * t.inv[i] - 1.0;
    let ln1p = r - r * r * (0.5 - r * (1.0 / 3.0));
    let y = alpha * (e as f64 + t.log2[i] + ln1p * std::f64::consts::LOG2_E);
    if y < -1020.0 {
        return 0.0; // underflows to zero rank anyway
    }
    // 2^y = 2^k · 2^(j/128) · e^h: split w = 128·y at the nearest integer
    // n = 128k + j via the 2^52+2^51 magic constant (round-to-nearest
    // without a libm call), leaving |h| ≤ ln2/256.
    const MAGIC: f64 = 6_755_399_441_055_744.0; // 2^52 + 2^51
    let w = y * 128.0;
    let nf = (w + MAGIC) - MAGIC;
    let n = nf as i64;
    let (k, j) = (n >> 7, (n & 127) as usize);
    let h = (w - nf) * (std::f64::consts::LN_2 / 128.0);
    let p = t.exp2[j] * (1.0 + h * (1.0 + h * (0.5 + h * (1.0 / 6.0))));
    f64::from_bits(((k + 1023) as u64) << 52) * p
}

/// A Zipf(θ) sampler over `0..n`, using the classic computed-harmonic
/// inversion (exact, O(1) per sample after O(n) setup is avoided by the
/// standard two-piece approximation of Gray et al.).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
    /// `0.5^theta`, hoisted out of [`Zipf::sample`] — `powf` costs more
    /// than the rest of the sampler combined, and the value never changes.
    half_pow_theta: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` (0 = uniform-ish,
    /// 0.99 = classic YCSB skew).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be nonzero");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; integral approximation for large n keeps
        // construction O(1)-ish without materially changing the shape.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// The population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `0..n`; rank 0 is the hottest item.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.unit_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let rank = (self.n as f64 * pow_unit(self.eta * u - self.eta + 1.0, self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The configured skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    #[cfg(test)]
    fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_constructions() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut rng = Rng::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_endpoints() {
        let mut rng = Rng::new(11);
        for _ in 0..200 {
            let v = rng.range(10, 12);
            assert!((10..12).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::new(0).range(5, 5);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = Rng::new(13);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(99);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 0.9);
        let mut rng = Rng::new(5);
        let mut hot = 0usize;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if z.sample(&mut rng) < 10 {
                hot += 1;
            }
        }
        // Top 1% of items should receive far more than 1% of draws.
        assert!(
            hot as f64 / DRAWS as f64 > 0.2,
            "hot fraction {hot}/{DRAWS}"
        );
        assert!(z.zeta2() > 1.0);
        assert_eq!(z.population(), 1000);
        assert!((z.theta() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn zipf_zero_theta_is_nearly_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut rng = Rng::new(17);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 3.0, "max {max} min {min}");
    }

    #[test]
    fn zipf_samples_in_population() {
        let z = Zipf::new(3, 0.5);
        let mut rng = Rng::new(23);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zipf_empty_population_panics() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    fn pow_unit_tracks_powf() {
        for alpha in [1.0, 1.5, 2.3, 3.5702, 10.0, 50.0, 100.0] {
            let mut x = 1.0f64;
            while x > 1e-6 {
                let got = pow_unit(x, alpha);
                let want = x.powf(alpha);
                if want < 1e-290 {
                    // Near/below the subnormal range both implementations
                    // may underflow at slightly different points; a Zipf
                    // rank of n·1e-290 truncates to 0 either way.
                    assert!(got < 1e-280, "x={x} alpha={alpha}: {got} vs {want}");
                } else {
                    let err = ((got - want) / want).abs();
                    assert!(err < 1e-6, "x={x} alpha={alpha}: {got} vs {want}");
                }
                x *= 0.9173;
            }
            assert_eq!(pow_unit(1.0, alpha), 1.0, "alpha={alpha}");
        }
        // Deep underflow clamps to zero.
        assert_eq!(pow_unit(1e-300, 100.0), 0.0);
    }
}
