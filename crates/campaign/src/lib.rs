//! `picl-campaign` — a fault-isolated, checkpointed, resumable batch
//! executor for experiment campaigns.
//!
//! The paper's evaluation is a large experiment matrix (29 benchmarks ×
//! 6 schemes, 8-core mixes, cache and latency sweeps). Before this crate,
//! both batch executors in the repo ran cells on bare scoped threads: one
//! panicking or hung cell aborted the whole batch and discarded every
//! completed report — an RPO of "everything", in a reproduction of a
//! crash-consistency paper. This executor gives campaigns the same
//! guarantees the simulated hardware gives memory:
//!
//! * **Fault isolation** — each cell runs under
//!   [`std::panic::catch_unwind`]; a panic becomes a per-cell
//!   [`CellOutcome::Failed`] instead of batch death.
//! * **A watchdog** — an optional per-cell wall-clock timeout
//!   ([`CampaignOptions::cell_timeout`]) turns a hung cell into
//!   [`CellOutcome::TimedOut`].
//! * **Bounded retry** — [`CampaignOptions::retries`] re-attempts
//!   transiently failing cells before recording a failure.
//! * **Durable checkpoints** — completed cells stream to a JSONL
//!   [`store::CheckpointStore`] keyed by a content hash of the cell spec;
//!   a re-launched campaign resumes and re-runs only missing or failed
//!   cells. Resumed results are bit-identical to an uninterrupted run
//!   (cells are deterministic; payload codecs round-trip exactly).
//! * **Progress** — a throttled stderr reporter (done/total, cells/sec,
//!   ETA, failures) replaces silent multi-minute runs.
//!
//! The executor is generic: `picl-sim` runs [`RunReport`] cells on it
//! (`run_experiments`), `picl-crashlab` runs crash trials, and the `picl`
//! CLI exposes it as `--resume DIR`, `--cell-timeout SECS`, and
//! `--keep-going`.
//!
//! [`RunReport`]: https://docs.rs/picl-sim
//!
//! # Example
//!
//! ```
//! use picl_campaign::{run_cells, CampaignCell, CampaignOptions, CellPayload};
//!
//! #[derive(Clone)]
//! struct Square(u64);
//!
//! impl CampaignCell for Square {
//!     type Payload = u64;
//!     fn spec_string(&self) -> String {
//!         format!("square {}", self.0)
//!     }
//!     fn execute(&self) -> u64 {
//!         self.0 * self.0
//!     }
//! }
//!
//! let cells: Vec<Square> = (1..=4).map(Square).collect();
//! let run = run_cells(&cells, &CampaignOptions::default()).unwrap();
//! assert!(run.all_ok());
//! let squares: Vec<u64> = run.payloads().unwrap();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

pub mod json;
pub mod progress;
pub mod store;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use json::Value;
use progress::Progress;
use store::{CellKey, CheckpointStore, StoredStatus};

/// A result payload that can round-trip through the checkpoint store.
///
/// `encode` must emit one single-line JSON value and `decode(parse(encode))`
/// must reproduce the payload **bit-identically** — that equivalence is
/// what makes a resumed campaign's reports indistinguishable from an
/// uninterrupted run's.
pub trait CellPayload: Clone + Send + 'static {
    /// Encodes the payload as one single-line JSON value.
    fn encode(&self) -> String;

    /// Decodes a payload previously produced by [`CellPayload::encode`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field; the
    /// executor treats an undecodable checkpoint as a missing cell and
    /// re-runs it.
    fn decode(value: &Value) -> Result<Self, String>;
}

/// Primitive payload, handy for tests and simple counters.
impl CellPayload for u64 {
    fn encode(&self) -> String {
        self.to_string()
    }
    fn decode(value: &Value) -> Result<Self, String> {
        value.as_u64().ok_or_else(|| "expected a u64".into())
    }
}

/// One unit of batch work: a self-describing, deterministic cell.
///
/// Cells must be cheap to clone (the watchdog moves a clone into the
/// attempt thread) and `execute` must be a pure function of the cell —
/// the resume contract assumes re-running a cell reproduces its payload.
pub trait CampaignCell: Clone + Send + Sync + 'static {
    /// The result this cell produces.
    type Payload: CellPayload;

    /// A canonical description of everything that determines the result
    /// (config, scheme, workload, seed, instructions). Content-hashed
    /// into the checkpoint key: two specs differing anywhere must return
    /// different strings.
    fn spec_string(&self) -> String;

    /// Short human-readable label for progress and failure reports.
    fn label(&self) -> String {
        let spec = self.spec_string();
        spec.chars().take(60).collect()
    }

    /// Runs the cell. May panic — the executor isolates it.
    fn execute(&self) -> Self::Payload;
}

/// Knobs for one campaign execution.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Per-cell wall-clock timeout (None = no watchdog).
    pub cell_timeout: Option<Duration>,
    /// Extra attempts after a failed or timed-out first attempt.
    pub retries: u32,
    /// `true`: run every cell even after failures (record them per-cell).
    /// `false`: stop claiming new cells after the first failure; already
    /// running cells finish and are checkpointed.
    pub keep_going: bool,
    /// Checkpoint directory; `Some` enables the durable store and resume.
    pub checkpoint: Option<PathBuf>,
    /// Print progress lines to stderr.
    pub progress: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: 0,
            cell_timeout: None,
            retries: 0,
            keep_going: true,
            checkpoint: None,
            progress: false,
        }
    }
}

/// What happened to one cell, in input order.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome<P> {
    /// Ran to completion in this launch.
    Done(P),
    /// Loaded from the checkpoint store (resume hit); not re-run.
    Cached(P),
    /// Every attempt panicked; the batch survived.
    Failed {
        /// The last panic message.
        message: String,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// Every attempt outlived the watchdog.
    TimedOut {
        /// The configured timeout.
        timeout: Duration,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// Never claimed: an earlier failure aborted the campaign
    /// (`keep_going = false`).
    NotRun,
}

impl<P> CellOutcome<P> {
    /// The payload, when the cell completed (fresh or cached).
    pub fn payload(&self) -> Option<&P> {
        match self {
            CellOutcome::Done(p) | CellOutcome::Cached(p) => Some(p),
            _ => None,
        }
    }

    /// Consumes the outcome into its payload, if completed.
    pub fn into_payload(self) -> Option<P> {
        match self {
            CellOutcome::Done(p) | CellOutcome::Cached(p) => Some(p),
            _ => None,
        }
    }

    /// Whether the cell completed (fresh or cached).
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Done(_) | CellOutcome::Cached(_))
    }

    /// A short description of why the cell has no payload.
    pub fn failure_message(&self) -> Option<String> {
        match self {
            CellOutcome::Done(_) | CellOutcome::Cached(_) => None,
            CellOutcome::Failed { message, attempts } => {
                Some(format!("failed after {attempts} attempt(s): {message}"))
            }
            CellOutcome::TimedOut { timeout, attempts } => Some(format!(
                "timed out after {attempts} attempt(s) of {:.1}s",
                timeout.as_secs_f64()
            )),
            CellOutcome::NotRun => Some("not run (campaign aborted early)".into()),
        }
    }
}

/// The folded result of one campaign launch.
#[derive(Debug)]
pub struct CampaignRun<P> {
    /// One outcome per input cell, in input order.
    pub outcomes: Vec<CellOutcome<P>>,
    /// Cells completed in this launch.
    pub done: usize,
    /// Cells served from the checkpoint store.
    pub cached: usize,
    /// Cells that failed every attempt.
    pub failed: usize,
    /// Cells that timed out every attempt.
    pub timed_out: usize,
    /// Cells never claimed (fail-fast abort).
    pub not_run: usize,
    /// Wall-clock duration of this launch.
    pub elapsed: Duration,
}

impl<P> CampaignRun<P> {
    /// Whether every cell has a payload.
    pub fn all_ok(&self) -> bool {
        self.failed == 0 && self.timed_out == 0 && self.not_run == 0
    }

    /// `(index, label-free message)` for every cell without a payload.
    pub fn failures(&self) -> Vec<(usize, String)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.failure_message().map(|m| (i, m)))
            .collect()
    }

    /// All payloads in input order, or an aggregate error naming every
    /// cell that has none.
    ///
    /// # Errors
    ///
    /// Returns one message listing each failed/timed-out/not-run cell.
    pub fn payloads(self) -> Result<Vec<P>, String> {
        let failures = self.failures();
        if !failures.is_empty() {
            let lines: Vec<String> = failures
                .iter()
                .map(|(i, m)| format!("  cell #{i}: {m}"))
                .collect();
            return Err(format!(
                "{} of {} cell(s) produced no result:\n{}",
                failures.len(),
                self.outcomes.len(),
                lines.join("\n")
            ));
        }
        Ok(self
            .outcomes
            .into_iter()
            .map(|o| o.into_payload().expect("checked above"))
            .collect())
    }
}

/// How one attempt of one cell ended.
enum Attempt<P> {
    Ok(P),
    Panicked(String),
    TimedOut,
}

/// Runs `cell` once, isolated; with a timeout the attempt runs on a
/// detached thread so the watchdog can give up on it. A timed-out thread
/// is abandoned (Rust threads cannot be killed); its eventual result is
/// discarded.
fn attempt_cell<C: CampaignCell>(cell: &C, timeout: Option<Duration>) -> Attempt<C::Payload> {
    match timeout {
        None => match catch_unwind(AssertUnwindSafe(|| cell.execute())) {
            Ok(p) => Attempt::Ok(p),
            Err(panic) => Attempt::Panicked(panic_message(panic.as_ref())),
        },
        Some(limit) => {
            let (tx, rx) = std::sync::mpsc::sync_channel(1);
            let clone = cell.clone();
            std::thread::spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| clone.execute()));
                // The receiver may have given up; a send error is fine.
                let _ = tx.send(result);
            });
            match rx.recv_timeout(limit) {
                Ok(Ok(p)) => Attempt::Ok(p),
                Ok(Err(panic)) => Attempt::Panicked(panic_message(&panic)),
                Err(_) => Attempt::TimedOut,
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "cell panicked (non-string payload)".to_owned()
    }
}

/// Runs every cell under the campaign policy and returns outcomes in
/// input order. Deterministic: payloads are independent of thread count,
/// scheduling, and whether they were freshly run or resumed.
///
/// # Errors
///
/// Returns a message only for campaign-level problems (an unusable
/// checkpoint directory). Per-cell failures are *outcomes*, not errors.
pub fn run_cells<C: CampaignCell>(
    cells: &[C],
    opts: &CampaignOptions,
) -> Result<CampaignRun<C::Payload>, String> {
    let started = Instant::now();
    let keys: Vec<CellKey> = cells
        .iter()
        .map(|c| CellKey::of(&c.spec_string()))
        .collect();

    let mut store = match &opts.checkpoint {
        Some(dir) => Some(CheckpointStore::open(dir)?),
        None => None,
    };

    // Resume: serve every cell whose checkpoint decodes; queue the rest.
    let mut outcomes: Vec<Option<CellOutcome<C::Payload>>> = Vec::with_capacity(cells.len());
    let mut pending: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let cached = store.as_ref().and_then(|s| match s.lookup(*key) {
            Some(StoredStatus::Done(value)) => C::Payload::decode(value).ok(),
            _ => None,
        });
        match cached {
            Some(payload) => outcomes.push(Some(CellOutcome::Cached(payload))),
            None => {
                outcomes.push(None);
                pending.push(i);
            }
        }
    }
    let cached_count = cells.len() - pending.len();

    let progress = Progress::new(pending.len(), opts.progress);
    if let (Some(dir), true) = (&opts.checkpoint, cached_count > 0) {
        progress.announce_resume(cached_count, cells.len(), dir);
    }

    let workers = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        opts.threads
    }
    .min(pending.len().max(1));

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let results: Mutex<&mut Vec<Option<CellOutcome<C::Payload>>>> = Mutex::new(&mut outcomes);
    let shared_store = Mutex::new(store.as_mut());
    let attempts_per_cell = 1 + opts.retries;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let slot = next.fetch_add(1, Ordering::Relaxed);
                let Some(&idx) = pending.get(slot) else { break };
                let cell = &cells[idx];
                let key = keys[idx];
                let spec = cell.spec_string();

                let mut outcome = None;
                for _ in 0..attempts_per_cell {
                    match attempt_cell(cell, opts.cell_timeout) {
                        Attempt::Ok(p) => {
                            outcome = Some(CellOutcome::Done(p));
                            break;
                        }
                        Attempt::Panicked(message) => {
                            outcome = Some(CellOutcome::Failed {
                                message,
                                attempts: attempts_per_cell,
                            });
                        }
                        Attempt::TimedOut => {
                            outcome = Some(CellOutcome::TimedOut {
                                timeout: opts.cell_timeout.unwrap_or_default(),
                                attempts: attempts_per_cell,
                            });
                        }
                    }
                }
                let outcome = outcome.expect("at least one attempt ran");

                // Checkpoint before publishing: a crash between the two
                // at worst re-runs one already-persisted cell.
                {
                    let mut guard = shared_store
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    if let Some(store) = guard.as_deref_mut() {
                        // Store I/O errors must not kill sibling cells;
                        // the cell's in-memory outcome is still returned.
                        let write = match &outcome {
                            CellOutcome::Done(p) => store.record_done(key, &spec, &p.encode()),
                            CellOutcome::Failed { message, .. } => {
                                store.record_failed(key, &spec, message)
                            }
                            CellOutcome::TimedOut { .. } => store.record_timeout(key, &spec),
                            CellOutcome::Cached(_) | CellOutcome::NotRun => Ok(()),
                        };
                        if let Err(e) = write {
                            eprintln!(
                                "campaign: checkpoint write failed for {}: {e}",
                                cell.label()
                            );
                        }
                    }
                }

                let ok = outcome.is_ok();
                if !ok {
                    if opts.progress {
                        eprintln!(
                            "campaign: cell {} {}",
                            cell.label(),
                            outcome.failure_message().unwrap_or_default()
                        );
                    }
                    if !opts.keep_going {
                        abort.store(true, Ordering::Relaxed);
                    }
                }
                results
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())[idx] = Some(outcome);
                progress.cell_finished(ok);
            });
        }
    });

    let outcomes: Vec<CellOutcome<C::Payload>> = outcomes
        .into_iter()
        .map(|o| o.unwrap_or(CellOutcome::NotRun))
        .collect();

    let mut run = CampaignRun {
        done: 0,
        cached: 0,
        failed: 0,
        timed_out: 0,
        not_run: 0,
        elapsed: started.elapsed(),
        outcomes,
    };
    for o in &run.outcomes {
        match o {
            CellOutcome::Done(_) => run.done += 1,
            CellOutcome::Cached(_) => run.cached += 1,
            CellOutcome::Failed { .. } => run.failed += 1,
            CellOutcome::TimedOut { .. } => run.timed_out += 1,
            CellOutcome::NotRun => run.not_run += 1,
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cell that squares, panics, or sleeps, per its spec.
    #[derive(Clone)]
    enum TestCell {
        Square(u64),
        Panic(&'static str),
        Sleep(u64),
    }

    impl CampaignCell for TestCell {
        type Payload = u64;
        fn spec_string(&self) -> String {
            match self {
                TestCell::Square(n) => format!("square {n}"),
                TestCell::Panic(msg) => format!("panic {msg}"),
                TestCell::Sleep(ms) => format!("sleep {ms}"),
            }
        }
        fn execute(&self) -> u64 {
            match self {
                TestCell::Square(n) => n * n,
                TestCell::Panic(msg) => panic!("{}", msg),
                TestCell::Sleep(ms) => {
                    std::thread::sleep(Duration::from_millis(*ms));
                    *ms
                }
            }
        }
    }

    #[test]
    fn ordering_is_preserved_across_threads() {
        let cells: Vec<TestCell> = (0..32).map(TestCell::Square).collect();
        let run = run_cells(
            &cells,
            &CampaignOptions {
                threads: 8,
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert!(run.all_ok());
        assert_eq!(run.done, 32);
        let values = run.payloads().unwrap();
        assert_eq!(values, (0..32).map(|n| n * n).collect::<Vec<u64>>());
    }

    #[test]
    fn panicking_cell_is_isolated_and_siblings_complete() {
        let cells = vec![
            TestCell::Square(2),
            TestCell::Panic("injected fault"),
            TestCell::Square(3),
        ];
        let run = run_cells(&cells, &CampaignOptions::default()).unwrap();
        assert_eq!(run.done, 2);
        assert_eq!(run.failed, 1);
        assert_eq!(run.outcomes[0].payload(), Some(&4));
        assert_eq!(run.outcomes[2].payload(), Some(&9));
        match &run.outcomes[1] {
            CellOutcome::Failed { message, attempts } => {
                assert!(message.contains("injected fault"), "{message}");
                assert_eq!(*attempts, 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let err = run.payloads().unwrap_err();
        assert!(err.contains("cell #1"), "{err}");
    }

    #[test]
    fn fail_fast_aborts_later_cells_but_keeps_finished_ones() {
        // Single worker so ordering is fully serial and the abort is
        // observable deterministically.
        let cells = vec![
            TestCell::Square(2),
            TestCell::Panic("stop here"),
            TestCell::Square(3),
        ];
        let run = run_cells(
            &cells,
            &CampaignOptions {
                threads: 1,
                keep_going: false,
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert_eq!(run.done, 1);
        assert_eq!(run.failed, 1);
        assert_eq!(run.not_run, 1);
        assert!(matches!(run.outcomes[2], CellOutcome::NotRun));
    }

    #[test]
    fn watchdog_trips_on_slow_cell() {
        let cells = vec![TestCell::Square(5), TestCell::Sleep(60_000)];
        let run = run_cells(
            &cells,
            &CampaignOptions {
                cell_timeout: Some(Duration::from_millis(50)),
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert_eq!(run.done, 1);
        assert_eq!(run.timed_out, 1);
        assert!(matches!(run.outcomes[1], CellOutcome::TimedOut { .. }));
    }

    #[test]
    fn retries_cover_repeated_failure() {
        let cells = vec![TestCell::Panic("always broken")];
        let run = run_cells(
            &cells,
            &CampaignOptions {
                retries: 2,
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        match &run.outcomes[0] {
            CellOutcome::Failed { attempts, .. } => assert_eq!(*attempts, 3),
            other => panic!("unexpected: {other:?}"),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("picl_campaign_exec_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn resume_skips_completed_cells_and_reruns_failed_ones() {
        let dir = temp_dir("resume");
        let opts = CampaignOptions {
            checkpoint: Some(dir.clone()),
            ..CampaignOptions::default()
        };

        // First launch: one cell fails.
        let first = vec![
            TestCell::Square(2),
            TestCell::Panic("flaky"),
            TestCell::Square(3),
        ];
        let run1 = run_cells(&first, &opts).unwrap();
        assert_eq!(run1.done, 2);
        assert_eq!(run1.failed, 1);

        // Second launch: same spec strings, but the failing cell is now
        // healthy (same spec string, different behavior — emulating a
        // transient fault).
        #[derive(Clone)]
        struct Healed(TestCell);
        impl CampaignCell for Healed {
            type Payload = u64;
            fn spec_string(&self) -> String {
                self.0.spec_string()
            }
            fn execute(&self) -> u64 {
                match &self.0 {
                    TestCell::Panic(_) => 777,
                    other => other.execute(),
                }
            }
        }
        let second: Vec<Healed> = first.iter().cloned().map(Healed).collect();
        let run2 = run_cells(&second, &opts).unwrap();
        assert_eq!(run2.cached, 2, "completed cells must not re-run");
        assert_eq!(run2.done, 1, "only the failed cell re-runs");
        assert_eq!(run2.outcomes[1].payload(), Some(&777));
        assert_eq!(run2.outcomes[0].payload(), Some(&4));
        assert_eq!(run2.outcomes[2].payload(), Some(&9));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resumed_payloads_are_bit_identical_to_uninterrupted() {
        let dir = temp_dir("identical");
        let cells: Vec<TestCell> = (0..10).map(TestCell::Square).collect();

        // Uninterrupted baseline.
        let baseline = run_cells(&cells, &CampaignOptions::default())
            .unwrap()
            .payloads()
            .unwrap();

        // Interrupted: first launch only sees a prefix (as if killed),
        // second launch resumes the full set.
        let opts = CampaignOptions {
            checkpoint: Some(dir.clone()),
            ..CampaignOptions::default()
        };
        run_cells(&cells[..4], &opts).unwrap();
        let resumed = run_cells(&cells, &opts).unwrap();
        assert_eq!(resumed.cached, 4);
        assert_eq!(resumed.done, 6);
        assert_eq!(resumed.payloads().unwrap(), baseline);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_campaign_is_a_noop() {
        let run = run_cells::<TestCell>(&[], &CampaignOptions::default()).unwrap();
        assert!(run.all_ok());
        assert!(run.outcomes.is_empty());
    }
}
