//! A minimal JSON value tree, paired with `picl_telemetry::json`.
//!
//! The telemetry crate validates and escapes JSON; checkpoint *resume*
//! additionally needs to read values back. This module parses one JSON
//! document into a [`Value`] tree without pulling in a JSON crate.
//!
//! Numbers keep their raw source text ([`Value::Num`]) so `u64` counters
//! round-trip exactly — routing them through `f64` would corrupt counts
//! above 2^53 and break the bit-identical-resume guarantee.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses exactly one JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description with a byte offset on the first syntax error.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as an exact `u64`, if this is a nonnegative
    /// integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The number parsed as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then `as_u64`, with a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns an error naming the missing or mistyped field.
    pub fn field_u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing or non-integer field {key:?}"))
    }

    /// Convenience: `get(key)` then `as_str`, with a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns an error naming the missing or mistyped field.
    pub fn field_str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("missing or non-string field {key:?}"))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn fail(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.fail("unexpected character")),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.bump(); // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected object key string"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err(self.fail("expected `:`"));
            }
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(fields)),
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.bump(); // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.bump(); // '"'
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.fail("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are not reassembled; lone
                        // surrogates become the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.fail("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.fail("raw control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = if b >> 5 == 0b110 {
                        2
                    } else if b >> 4 == 0b1110 {
                        3
                    } else {
                        4
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.fail("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        match self.peek() {
            Some(b'0') => {
                self.bump();
            }
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.fail("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.bump();
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.fail("expected fraction digit"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.fail("expected exponent digit"));
            }
            self.digits();
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_owned();
        Ok(Value::Num(raw))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Value::parse(r#"{"a": [1, 2, {"b": null}], "c": "x\ny", "d": true}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\ny"));
        assert_eq!(v.get("d").and_then(Value::as_bool), Some(true));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn u64_round_trips_exactly_above_2_pow_53() {
        let big = u64::MAX;
        let v = Value::parse(&format!("{{\"n\": {big}}}")).unwrap();
        assert_eq!(v.field_u64("n"), Ok(big));
    }

    #[test]
    fn floats_and_negatives() {
        let v = Value::parse(r#"[-12.5e3, 0.25]"#).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(-12500.0));
        assert_eq!(arr[0].as_u64(), None);
        assert_eq!(arr[1].as_f64(), Some(0.25));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Value::parse(r#""tab\t quote\" uA é""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\t quote\" uA é"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "01", "1.", "nul", "[1] [2]"] {
            assert!(Value::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn field_helpers_report_missing_fields() {
        let v = Value::parse(r#"{"n": "not a number"}"#).unwrap();
        assert!(v.field_u64("n").unwrap_err().contains("n"));
        assert!(v.field_str("missing").unwrap_err().contains("missing"));
        assert_eq!(v.field_str("n"), Ok("not a number"));
    }

    #[test]
    fn agrees_with_the_telemetry_validator() {
        for doc in [r#"{"a":[1,2],"b":"x"}"#, "[]", "null", "-3.5e-2"] {
            assert!(picl_telemetry::json::validate_json(doc).is_ok());
            assert!(Value::parse(doc).is_ok());
        }
    }
}
