//! The campaign progress reporter.
//!
//! A multi-minute sweep used to run silently until it either finished or
//! died. The reporter prints a throttled one-line status to stderr —
//! cells done/total, throughput, ETA, and failures so far — every time a
//! cell completes (at most ~4 lines/second, plus always on failures and
//! on the final cell).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Shared, thread-safe progress state for one campaign.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    total: usize,
    started: Instant,
    completed: AtomicUsize,
    failed: AtomicUsize,
    /// Milliseconds-since-start of the last line printed (throttling).
    last_print_ms: AtomicU64,
    /// Serializes the actual printing so lines never interleave.
    print_lock: Mutex<()>,
}

/// Minimum milliseconds between routine progress lines.
const THROTTLE_MS: u64 = 250;

impl Progress {
    /// A reporter over `total` cells; silent unless `enabled`.
    pub fn new(total: usize, enabled: bool) -> Progress {
        Progress {
            enabled,
            total,
            started: Instant::now(),
            completed: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            last_print_ms: AtomicU64::new(0),
            print_lock: Mutex::new(()),
        }
    }

    /// Announces how many of the campaign's `total` cells a resume loaded
    /// from the checkpoint store. (`total` is the campaign size, not this
    /// reporter's — the reporter only tracks the cells left to run.)
    pub fn announce_resume(&self, cached: usize, total: usize, dir: &std::path::Path) {
        if self.enabled && cached > 0 {
            eprintln!(
                "campaign: resumed {cached}/{total} cell(s) from {}",
                dir.display()
            );
        }
    }

    /// Records one finished cell (`ok = false` for failures/timeouts) and
    /// maybe prints a status line.
    pub fn cell_finished(&self, ok: bool) {
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        let failed = if ok {
            self.failed.load(Ordering::Relaxed)
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed) + 1
        };
        if !self.enabled {
            return;
        }
        let elapsed_ms = self.started.elapsed().as_millis() as u64;
        let is_last = done == self.total;
        if !ok || is_last {
            // Failures and the final line always print.
        } else {
            let last = self.last_print_ms.load(Ordering::Relaxed);
            if elapsed_ms.saturating_sub(last) < THROTTLE_MS {
                return;
            }
        }
        self.last_print_ms.store(elapsed_ms, Ordering::Relaxed);

        let secs = (elapsed_ms as f64 / 1000.0).max(1e-3);
        let rate = done as f64 / secs;
        let remaining = self.total.saturating_sub(done);
        let eta = remaining as f64 / rate.max(1e-9);
        let _guard = self.print_lock.lock().unwrap_or_else(|p| p.into_inner());
        eprintln!(
            "campaign: {done}/{} cells ({:.0}%), {rate:.2} cells/s, ETA {}, {failed} failed",
            self.total,
            done as f64 * 100.0 / self.total.max(1) as f64,
            format_eta(eta),
        );
    }

    /// Failures recorded so far.
    pub fn failures(&self) -> usize {
        self.failed.load(Ordering::Relaxed)
    }
}

fn format_eta(eta_secs: f64) -> String {
    let s = eta_secs.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_without_printing_when_disabled() {
        let p = Progress::new(3, false);
        p.cell_finished(true);
        p.cell_finished(false);
        p.cell_finished(true);
        assert_eq!(p.failures(), 1);
    }

    #[test]
    fn eta_formatting() {
        assert_eq!(format_eta(12.2), "12s");
        assert_eq!(format_eta(61.0), "1m01s");
        assert_eq!(format_eta(3700.0), "1h01m");
    }
}
