//! The durable checkpoint store: one JSONL file per campaign directory.
//!
//! Every completed (or failed) cell appends one self-describing line to
//! `cells.jsonl`, keyed by a content hash of the cell's spec string. A
//! re-launched campaign loads the store, keeps the cells whose keys match
//! and whose payloads still decode, and re-runs only the rest — so an
//! interrupted figure sweep resumes instead of starting over, and its
//! recovery point objective is one cell, not "everything".
//!
//! Format (`picl-campaign-v1`):
//!
//! ```text
//! {"schema": "picl-campaign-v1"}
//! {"key": "9f86d081884c7d65", "spec": "...", "status": "done", "payload": {...}}
//! {"key": "a1b2c3d4e5f60789", "spec": "...", "status": "failed", "message": "..."}
//! ```
//!
//! Later lines win, so a re-run of a previously failed cell simply appends
//! its fresh verdict. Corrupt or stale lines are skipped (and counted),
//! never fatal: the worst case is re-running a cell whose record was lost.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use picl_telemetry::json::{escape, validate_json};

use crate::json::Value;

/// The schema tag written as the store's header line.
pub const STORE_SCHEMA: &str = "picl-campaign-v1";

/// Name of the checkpoint file inside a campaign directory.
pub const STORE_FILE: &str = "cells.jsonl";

/// A content-hash key identifying one cell spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(pub u64);

impl CellKey {
    /// Hashes a canonical spec string (FNV-1a, 64-bit). Deterministic
    /// across runs, platforms, and thread counts — the resume contract.
    pub fn of(spec: &str) -> CellKey {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in spec.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        CellKey(h)
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A record loaded from (or about to enter) the store.
#[derive(Debug, Clone)]
pub enum StoredStatus {
    /// The cell completed; its encoded payload line follows.
    Done(Value),
    /// The cell failed (panic or error); re-run on resume.
    Failed(String),
    /// The cell hit its wall-clock timeout; re-run on resume.
    TimedOut,
}

/// Classification of one line on disk.
enum Line {
    Header,
    Record(CellKey, StoredStatus),
    Corrupt,
}

/// The append-only checkpoint store for one campaign directory.
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    file: std::fs::File,
    /// Last-line-wins view of every record on disk.
    records: HashMap<CellKey, StoredStatus>,
    /// Lines that failed validation on load (skipped, not fatal).
    skipped_lines: usize,
}

impl CheckpointStore {
    /// Opens (or creates) the store under `dir`, loading every existing
    /// record. The directory is created if missing.
    ///
    /// # Errors
    ///
    /// Returns a message if the directory or file cannot be created or
    /// read. Corrupt *lines* are skipped and counted, not errors.
    pub fn open(dir: &Path) -> Result<CheckpointStore, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create campaign dir {}: {e}", dir.display()))?;
        let path = dir.join(STORE_FILE);
        let mut records = HashMap::new();
        let mut skipped_lines = 0usize;
        let fresh = !path.exists();
        if !fresh {
            let contents = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            for line in contents.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match Self::parse_line(line) {
                    Line::Record(key, status) => {
                        records.insert(key, status);
                    }
                    Line::Header => {}
                    Line::Corrupt => skipped_lines += 1,
                }
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        if fresh {
            writeln!(file, "{{\"schema\": \"{STORE_SCHEMA}\"}}")
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        Ok(CheckpointStore {
            path,
            file,
            records,
            skipped_lines,
        })
    }

    /// Classifies one store line: the schema header, a cell record, or
    /// something corrupt/unrecognized (skipped, counted, never fatal).
    fn parse_line(line: &str) -> Line {
        fn record(line: &str) -> Option<(CellKey, StoredStatus)> {
            let v = Value::parse(line).ok()?;
            let key = u64::from_str_radix(v.get("key")?.as_str()?, 16).ok()?;
            let status = match v.get("status")?.as_str()? {
                "done" => StoredStatus::Done(v.get("payload")?.clone()),
                "failed" => StoredStatus::Failed(
                    v.get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown failure")
                        .to_owned(),
                ),
                "timeout" => StoredStatus::TimedOut,
                _ => return None,
            };
            Some((CellKey(key), status))
        }
        if let Ok(v) = Value::parse(line) {
            if v.get("schema").is_some() {
                return Line::Header;
            }
        }
        match record(line) {
            Some((key, status)) => Line::Record(key, status),
            None => Line::Corrupt,
        }
    }

    /// The record for `key`, if any line on disk carried it.
    pub fn lookup(&self, key: CellKey) -> Option<&StoredStatus> {
        self.records.get(&key)
    }

    /// Number of completed cells currently in the store.
    pub fn done_count(&self) -> usize {
        self.records
            .values()
            .filter(|s| matches!(s, StoredStatus::Done(_)))
            .count()
    }

    /// Lines skipped on load because they failed to parse.
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Path of the underlying JSONL file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a completed cell. `payload_json` must be one JSON value on
    /// one line (the executor validates it before writing).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure or if `payload_json` is not valid
    /// single-line JSON.
    pub fn record_done(
        &mut self,
        key: CellKey,
        spec: &str,
        payload_json: &str,
    ) -> Result<(), String> {
        validate_json(payload_json).map_err(|e| format!("cell payload is not valid JSON: {e}"))?;
        if payload_json.contains('\n') {
            return Err("cell payload must be single-line JSON".into());
        }
        let line = format!(
            "{{\"key\": \"{key}\", \"spec\": \"{}\", \"status\": \"done\", \"payload\": {payload_json}}}",
            escape(spec)
        );
        self.append(&line)?;
        self.records
            .insert(key, StoredStatus::Done(Value::parse(payload_json)?));
        Ok(())
    }

    /// Appends a failure record so a later resume knows to re-run the cell
    /// (and an operator knows why it died).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn record_failed(&mut self, key: CellKey, spec: &str, message: &str) -> Result<(), String> {
        let line = format!(
            "{{\"key\": \"{key}\", \"spec\": \"{}\", \"status\": \"failed\", \"message\": \"{}\"}}",
            escape(spec),
            escape(message)
        );
        self.append(&line)?;
        self.records
            .insert(key, StoredStatus::Failed(message.to_owned()));
        Ok(())
    }

    /// Appends a timeout record.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn record_timeout(&mut self, key: CellKey, spec: &str) -> Result<(), String> {
        let line = format!(
            "{{\"key\": \"{key}\", \"spec\": \"{}\", \"status\": \"timeout\"}}",
            escape(spec)
        );
        self.append(&line)?;
        self.records.insert(key, StoredStatus::TimedOut);
        Ok(())
    }

    fn append(&mut self, line: &str) -> Result<(), String> {
        debug_assert!(validate_json(line).is_ok(), "store line must be JSON");
        writeln!(self.file, "{line}")
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("cannot append to {}: {e}", self.path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picl_telemetry::json::validate_jsonl;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("picl_campaign_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn keys_are_deterministic_and_spec_sensitive() {
        assert_eq!(CellKey::of("abc"), CellKey::of("abc"));
        assert_ne!(CellKey::of("abc"), CellKey::of("abd"));
        assert_eq!(CellKey::of("abc").to_string().len(), 16);
    }

    #[test]
    fn round_trips_done_failed_and_timeout() {
        let dir = temp_dir("roundtrip");
        let k1 = CellKey::of("cell one");
        let k2 = CellKey::of("cell two");
        let k3 = CellKey::of("cell three");
        {
            let mut store = CheckpointStore::open(&dir).unwrap();
            store.record_done(k1, "cell one", r#"{"n": 7}"#).unwrap();
            store
                .record_failed(k2, "cell two", "boom \"quoted\"")
                .unwrap();
            store.record_timeout(k3, "cell three").unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.skipped_lines(), 0);
        assert_eq!(store.done_count(), 1);
        match store.lookup(k1) {
            Some(StoredStatus::Done(v)) => assert_eq!(v.field_u64("n"), Ok(7)),
            other => panic!("unexpected: {other:?}"),
        }
        match store.lookup(k2) {
            Some(StoredStatus::Failed(msg)) => assert!(msg.contains("boom")),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(store.lookup(k3), Some(StoredStatus::TimedOut)));
        assert!(store.lookup(CellKey::of("never ran")).is_none());

        // The file itself is valid JSONL with the schema header.
        let contents = std::fs::read_to_string(store.path()).unwrap();
        assert!(contents.starts_with(&format!("{{\"schema\": \"{STORE_SCHEMA}\"}}")));
        validate_jsonl(&contents).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn later_lines_win() {
        let dir = temp_dir("laterwins");
        let key = CellKey::of("cell");
        {
            let mut store = CheckpointStore::open(&dir).unwrap();
            store
                .record_failed(key, "cell", "first attempt died")
                .unwrap();
            store.record_done(key, "cell", "42").unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(matches!(store.lookup(key), Some(StoredStatus::Done(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let dir = temp_dir("corrupt");
        let key = CellKey::of("good");
        {
            let mut store = CheckpointStore::open(&dir).unwrap();
            store.record_done(key, "good", "1").unwrap();
        }
        // Simulate a torn write: a truncated trailing line.
        let path = dir.join(STORE_FILE);
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("{\"key\": \"dead\", \"status\": \"do");
        std::fs::write(&path, contents).unwrap();

        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.skipped_lines(), 1);
        assert!(matches!(store.lookup(key), Some(StoredStatus::Done(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_multiline_payloads() {
        let dir = temp_dir("multiline");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let err = store
            .record_done(CellKey::of("x"), "x", "{\n}")
            .unwrap_err();
        assert!(err.contains("single-line"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
