//! End-to-end campaign validation: protected schemes survive a sampled
//! campaign, and a deliberately sabotaged scheme is caught and shrunk to
//! a one-line reproducer.

use picl_crashlab::{run_campaign, CampaignConfig, LabScheme};
use picl_sim::SchemeKind;
use picl_trace::spec::SpecBenchmark;

fn base_config() -> CampaignConfig {
    CampaignConfig {
        schemes: Vec::new(),
        benches: vec![SpecBenchmark::Mcf, SpecBenchmark::Gcc],
        points: 8,
        budget: 150_000,
        shrink_failures: false,
        ..CampaignConfig::default()
    }
}

#[test]
fn protected_schemes_survive_campaign() {
    let config = CampaignConfig {
        schemes: LabScheme::PROTECTED.to_vec(),
        ..base_config()
    };
    let report = run_campaign(&config);
    assert!(report.all_passed(), "{report}");
    assert_eq!(
        report.cells.len(),
        LabScheme::PROTECTED.len() * config.benches.len()
    );
    // PiCL should never lose more than its ACS window of epochs.
    for bench in &config.benches {
        let cell = report
            .cell(LabScheme::Standard(SchemeKind::Picl), *bench)
            .unwrap();
        assert!(
            cell.max_epochs_lost <= config.acs_gap + 1,
            "PiCL RPO {} exceeds its ACS window on {}",
            cell.max_epochs_lost,
            bench.name()
        );
    }
}

#[test]
fn sabotaged_scheme_is_caught_and_shrunk() {
    // FRM rides along as the control: same benchmark, same crash points,
    // same execution path — only the recovery pass differs.
    let config = CampaignConfig {
        schemes: vec![
            LabScheme::Standard(SchemeKind::Frm),
            LabScheme::BrokenNoUndo,
        ],
        benches: vec![SpecBenchmark::Gcc],
        shrink_failures: true,
        ..base_config()
    };
    let report = run_campaign(&config);
    assert!(!report.all_passed(), "sabotage went undetected:\n{report}");

    let frm = report
        .cell(LabScheme::Standard(SchemeKind::Frm), SpecBenchmark::Gcc)
        .unwrap();
    assert_eq!(frm.passed, frm.total, "control scheme must pass:\n{report}");

    let broken = report
        .cell(LabScheme::BrokenNoUndo, SpecBenchmark::Gcc)
        .unwrap();
    assert!(broken.passed < broken.total, "{report}");

    // Every failure is attributed to the sabotaged scheme and carries a
    // shrunk, verified-failing reproducer.
    assert!(!report.failures.is_empty());
    for failure in &report.failures {
        assert_eq!(failure.spec.scheme, LabScheme::BrokenNoUndo);
        let shrunk = failure.shrunk.as_ref().expect("shrinking was enabled");
        assert!(shrunk.spec.point.at() <= failure.spec.point.at());
        assert!(!shrunk.outcome.passed(true), "reproducer must still fail");
        let repro = failure.repro_command();
        assert!(repro.starts_with("picl crashlab"), "{repro}");
        assert!(repro.contains("--schemes broken-noundo"), "{repro}");
        assert!(repro.contains("--crash-at"), "{repro}");
    }
}
