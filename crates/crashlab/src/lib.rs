//! Systematic crash-injection and differential recovery validation.
//!
//! The simulator can crash a machine (`Machine::crash`) and schemes can
//! recover (`ConsistencyScheme::crash_recover`), but one crash at one
//! instant proves little: crash-consistency bugs live at *specific*
//! interleavings. This crate turns the single-crash primitive into a
//! campaign engine:
//!
//! - [`point`] — the crash-point scheduler. Samples a replayable mix of
//!   mid-epoch, boundary-aligned, and mid-flush-window instants from the
//!   seeded [`picl_types::Rng`].
//! - [`oracle`] — the differential oracle. Runs a scheme on a trace,
//!   cuts power at a scheduled instant, recovers, and compares NVM
//!   line-for-line against the golden epoch snapshot, recording
//!   epochs-lost (the RPO) and recovery latency.
//! - [`shrink`] — the shrinker. Bisects a failing trial down to the
//!   minimal instruction budget that still reproduces it and emits a
//!   one-line reproducer.
//! - [`campaign`] — the runner. Shards `(scheme × benchmark × point)`
//!   over the fault-isolated, checkpointed `picl-campaign` executor and
//!   folds verdicts into a pass/fail matrix; interrupted campaigns resume
//!   from their completed trials.
//! - [`process`] — process-mode torture for the executable `picl-store`
//!   engine: `kill -9` a real child mid-epoch, recover its store file by
//!   undo replay, and reuse the differential oracle (prefix consistency
//!   plus the one-epoch RPO bound).
//! - [`serve`] — the multi-session variant: `kill -9` a `picl serve`
//!   child under concurrent load and judge recovery *per session* —
//!   each session owns a disjoint key prefix, so the recovered image
//!   restricted to a prefix must match some prefix of that session's
//!   seeded stream, bounded below by the child's per-commit op counts.
//! - [`storediff`] — the store-vs-simulator differential: one logical
//!   workload through both implementations of the protocol, per-epoch
//!   undo outcomes required to match line-for-line.
//!
//! Every artifact is deterministic: a campaign replays from
//! `(seed, config)`, a single trial from its reproducer line. (The
//! process-mode kill *instant* is inherently racy — the oracle there
//! must hold for every instant, which is the point.)

pub mod campaign;
pub mod oracle;
pub mod point;
pub mod process;
pub mod scheme;
pub mod serve;
pub mod shrink;
pub mod storediff;

pub use campaign::{
    run_campaign, run_campaign_with, CampaignCell, CampaignConfig, CampaignFailure, CampaignReport,
};
pub use oracle::{TrialOutcome, TrialSpec};
pub use picl_campaign::CampaignOptions;
pub use point::{schedule, CrashPoint, ScheduleConfig};
pub use process::{
    judge_recovery, run_process_campaign, run_process_trial, KillClass, ProcessCampaignReport,
    ProcessTrialOutcome, ProcessTrialSpec,
};
pub use scheme::LabScheme;
pub use serve::{
    judge_serve_recovery, parse_serve_commit_line, run_serve_campaign, run_serve_trial,
    ServeCampaignReport, ServeJudgement, ServeTrialOutcome, ServeTrialSpec,
};
pub use shrink::{shrink_failure, ShrunkFailure};
pub use storediff::{run_store_diff, StoreDiffReport, StoreDiffSpec};
