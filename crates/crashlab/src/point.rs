//! The crash-point scheduler: enumerates/samples the instants a campaign
//! pulls the plug at.
//!
//! Crash-consistency schemes fail at *specific* interleavings — mid-epoch
//! at an arbitrary store, exactly at an epoch boundary, or inside the
//! boundary flush window while the OS handler is checkpointing register
//! files. A schedule therefore mixes three point classes instead of
//! sampling uniformly: half the points land mid-epoch, a quarter exactly
//! on boundary-aligned instruction counts, and a quarter inside the
//! boundary window (partial core checkpoints). All sampling is driven by
//! the seeded [`picl_types::Rng`], so a campaign is replayable from
//! `(seed, config)` alone and any single point from its reproducer line.

use picl_types::Rng;

/// One crash instant, expressed in retired instructions so it is
/// reproducible from the trace alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Power failure once `at` total instructions have retired.
    MidEpoch {
        /// Retired-instruction instant.
        at: u64,
    },
    /// Power failure inside the epoch-boundary flush window after `at`
    /// instructions: `cores_done` cores have checkpointed their register
    /// files, the commit has not run.
    MidBoundary {
        /// Retired-instruction instant.
        at: u64,
        /// Cores whose boundary-handler stores completed before the cut.
        cores_done: usize,
    },
}

impl CrashPoint {
    /// The retired-instruction instant of this point.
    pub fn at(self) -> u64 {
        match self {
            CrashPoint::MidEpoch { at } | CrashPoint::MidBoundary { at, .. } => at,
        }
    }

    /// The partial-checkpoint count (`None` for plain mid-epoch points).
    pub fn cores_done(self) -> Option<usize> {
        match self {
            CrashPoint::MidEpoch { .. } => None,
            CrashPoint::MidBoundary { cores_done, .. } => Some(cores_done),
        }
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashPoint::MidEpoch { at } => write!(f, "@{at}"),
            CrashPoint::MidBoundary { at, cores_done } => {
                write!(f, "@{at}+boundary[{cores_done}]")
            }
        }
    }
}

/// Timeline parameters the scheduler samples within.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Points to generate.
    pub points: usize,
    /// Run budget in total retired instructions; points fall in `[1, budget]`.
    pub budget: u64,
    /// Configured epoch length (instructions per core).
    pub epoch_len: u64,
    /// Core count (the boundary fires every `epoch_len * cores` retired
    /// instructions, and bounds partial-checkpoint counts).
    pub cores: usize,
}

/// Samples a replayable schedule of `cfg.points` crash instants.
///
/// # Panics
///
/// Panics if `budget`, `epoch_len`, or `cores` is zero.
pub fn schedule(seed: u64, cfg: &ScheduleConfig) -> Vec<CrashPoint> {
    assert!(cfg.budget > 0, "empty timeline");
    assert!(cfg.epoch_len > 0 && cfg.cores > 0, "degenerate epoch span");
    let mut rng = Rng::new(seed);
    let span = cfg.epoch_len.saturating_mul(cfg.cores as u64);
    let whole_epochs = (cfg.budget / span).max(1);
    (0..cfg.points)
        .map(|i| match i % 4 {
            // Exactly at a boundary-aligned instant: the epoch timer fires
            // within the step that reaches this count.
            1 => CrashPoint::MidEpoch {
                at: span * rng.range(1, whole_epochs + 1),
            },
            // Inside the boundary flush window, with a partial checkpoint.
            3 => CrashPoint::MidBoundary {
                at: span * rng.range(1, whole_epochs + 1),
                cores_done: rng.below(cfg.cores as u64 + 1) as usize,
            },
            // Mid-epoch, anywhere on the timeline.
            _ => CrashPoint::MidEpoch {
                at: rng.range(1, cfg.budget + 1),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ScheduleConfig {
        ScheduleConfig {
            points: 64,
            budget: 200_000,
            epoch_len: 25_000,
            cores: 1,
        }
    }

    #[test]
    fn schedule_is_replayable() {
        assert_eq!(schedule(1, &cfg()), schedule(1, &cfg()));
        assert_ne!(schedule(1, &cfg()), schedule(2, &cfg()));
    }

    #[test]
    fn points_stay_on_the_timeline() {
        for p in schedule(3, &cfg()) {
            assert!(p.at() >= 1 && p.at() <= 200_000, "{p}");
            if let Some(done) = p.cores_done() {
                assert!(done <= 1);
            }
        }
    }

    #[test]
    fn mixes_all_three_classes() {
        let points = schedule(5, &cfg());
        let boundary_aligned = points
            .iter()
            .filter(|p| matches!(p, CrashPoint::MidEpoch { at } if at % 25_000 == 0))
            .count();
        let mid_boundary = points.iter().filter(|p| p.cores_done().is_some()).count();
        let mid_epoch = points.len() - boundary_aligned - mid_boundary;
        assert!(boundary_aligned >= 8, "{boundary_aligned} boundary-aligned");
        assert!(mid_boundary >= 8, "{mid_boundary} mid-boundary");
        assert!(mid_epoch >= 16, "{mid_epoch} mid-epoch");
    }

    #[test]
    fn short_timelines_still_schedule() {
        let tight = ScheduleConfig {
            points: 16,
            budget: 10_000,
            epoch_len: 25_000,
            cores: 1,
        };
        for p in schedule(7, &tight) {
            // Boundary-aligned points may exceed the budget (the run just
            // ends at its natural end); mid-epoch ones must not.
            if p.cores_done().is_none() && p.at() <= 10_000 {
                assert!(p.at() >= 1);
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(CrashPoint::MidEpoch { at: 5 }.to_string(), "@5");
        assert_eq!(
            CrashPoint::MidBoundary {
                at: 5,
                cores_done: 2
            }
            .to_string(),
            "@5+boundary[2]"
        );
    }
}
