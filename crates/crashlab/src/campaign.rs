//! The campaign runner: shards `(scheme × benchmark × crash point)`
//! trials over the fault-isolated `picl-campaign` executor and folds the
//! verdicts into a pass/fail matrix with per-scheme RPO and
//! recovery-latency figures.
//!
//! Every benchmark gets its own point schedule (derived from the campaign
//! seed and the benchmark's index), and all schemes face the *same*
//! schedule on that benchmark — the differential part of the oracle.
//!
//! Trials run under panic isolation with optional per-cell timeouts and a
//! durable checkpoint store ([`run_campaign_with`]): a crashed or killed
//! campaign resumes from its completed trials, and a panicking trial is
//! reported in [`CampaignReport::errors`] instead of killing the batch.

use picl_campaign::{run_cells, CampaignOptions, CellOutcome};
use picl_trace::spec::SpecBenchmark;

use crate::oracle::{TrialOutcome, TrialSpec};
use crate::point::{schedule, CrashPoint, ScheduleConfig};
use crate::scheme::LabScheme;
use crate::shrink::{shrink_failure, ShrunkFailure};

/// Everything a campaign needs; two campaigns with equal configs produce
/// identical reports.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Schemes to put under the crash gun.
    pub schemes: Vec<LabScheme>,
    /// Benchmark profiles to drive traces from.
    pub benches: Vec<SpecBenchmark>,
    /// Crash points per benchmark.
    pub points: usize,
    /// Campaign seed (drives both point schedules and trace generation).
    pub seed: u64,
    /// Run budget in retired instructions; crash points fall within it.
    pub budget: u64,
    /// Epoch length in instructions.
    pub epoch_len: u64,
    /// PiCL ACS gap.
    pub acs_gap: u64,
    /// Workload footprint scale.
    pub footprint_scale: f64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Whether to bisect each failure down to a minimal reproducer.
    pub shrink_failures: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            schemes: LabScheme::PROTECTED.to_vec(),
            benches: vec![SpecBenchmark::Mcf, SpecBenchmark::Gcc, SpecBenchmark::Lbm],
            points: 64,
            seed: 1,
            budget: 200_000,
            epoch_len: 25_000,
            acs_gap: 3,
            // gcc's scaled footprint keeps the LLC under conflict pressure
            // at this scale, so crash points land on real in-flight state.
            footprint_scale: 0.05,
            threads: 0,
            shrink_failures: true,
        }
    }
}

/// One `(scheme, benchmark)` cell of the matrix.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Scheme of this cell.
    pub scheme: LabScheme,
    /// Benchmark of this cell.
    pub bench: SpecBenchmark,
    /// Crash points that recovered correctly (or were exempt).
    pub passed: usize,
    /// Crash points tried.
    pub total: usize,
    /// Worst epochs-lost across the cell's trials.
    pub max_epochs_lost: u64,
    /// Mean epochs-lost across the cell's trials.
    pub mean_epochs_lost: f64,
    /// Mean recovery latency in cycles.
    pub mean_recovery_cycles: f64,
    /// Worst recovery latency in cycles.
    pub max_recovery_cycles: u64,
    /// Protocol-invariant violations summed across the cell's trials.
    pub violations: u64,
}

/// A failing trial, with its (possibly shrunk) reproducer.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// The failing spec as originally scheduled.
    pub spec: TrialSpec,
    /// The outcome at the scheduled instant.
    pub outcome: TrialOutcome,
    /// The minimized failure, when shrinking was enabled.
    pub shrunk: Option<ShrunkFailure>,
}

impl CampaignFailure {
    /// The best available one-line reproducer (shrunk when possible).
    pub fn repro_command(&self) -> String {
        match &self.shrunk {
            Some(s) => s.repro_command(),
            None => self.spec.repro_command(),
        }
    }
}

/// The folded result of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The config that produced this report (replayability).
    pub config: CampaignConfig,
    /// One cell per `(scheme, benchmark)` pair, scheme-major.
    pub cells: Vec<CampaignCell>,
    /// Every failing trial, with reproducers.
    pub failures: Vec<CampaignFailure>,
    /// Trials that produced no verdict at all — the oracle panicked, hit
    /// its wall-clock timeout, or was skipped by an early abort. These are
    /// executor errors, not consistency verdicts, so they are reported
    /// separately rather than folded into the cells.
    pub errors: Vec<String>,
}

impl CampaignReport {
    /// Whether every trial in every cell produced a verdict and passed.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty() && self.errors.is_empty()
    }

    /// The cell for `(scheme, bench)`, if it was part of the campaign.
    pub fn cell(&self, scheme: LabScheme, bench: SpecBenchmark) -> Option<&CampaignCell> {
        self.cells
            .iter()
            .find(|c| c.scheme == scheme && c.bench == bench)
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "crash campaign: {} scheme(s) x {} benchmark(s) x {} point(s), seed {}",
            self.config.schemes.len(),
            self.config.benches.len(),
            self.config.points,
            self.config.seed
        )?;
        writeln!(
            f,
            "{:<12} {:<8} {:>9} {:>8} {:>10} {:>12} {:>12} {:>6}",
            "scheme",
            "bench",
            "passed",
            "RPO.max",
            "RPO.mean",
            "rec.mean(cy)",
            "rec.max(cy)",
            "viol"
        )?;
        for cell in &self.cells {
            let verdict = if cell.passed == cell.total {
                "ok"
            } else {
                "FAIL"
            };
            writeln!(
                f,
                "{:<12} {:<8} {:>5}/{:<3} {:>8} {:>10.2} {:>12.0} {:>12} {:>6} {}",
                cell.scheme.name(),
                cell.bench.name(),
                cell.passed,
                cell.total,
                cell.max_epochs_lost,
                cell.mean_epochs_lost,
                cell.mean_recovery_cycles,
                cell.max_recovery_cycles,
                cell.violations,
                verdict
            )?;
        }
        for error in &self.errors {
            writeln!(f, "  trial error: {error}")?;
        }
        if self.failures.is_empty() && self.errors.is_empty() {
            writeln!(f, "all crash points recovered consistently")?;
        } else if self.failures.is_empty() {
            writeln!(
                f,
                "no inconsistencies, but {} trial error(s)",
                self.errors.len()
            )?;
        } else {
            writeln!(f, "{} failing trial(s):", self.failures.len())?;
            for failure in &self.failures {
                writeln!(
                    f,
                    "  {} {} {}: {} mismatching line(s)",
                    failure.spec.scheme.name(),
                    failure.spec.bench.name(),
                    failure.spec.point,
                    failure.outcome.mismatch_count
                )?;
                writeln!(f, "    repro: {}", failure.repro_command())?;
            }
        }
        Ok(())
    }
}

/// Runs the full campaign, sharding trials over `config.threads` workers.
///
/// # Panics
///
/// Panics if the config has no schemes, benchmarks, or points, or if the
/// derived system configuration is invalid.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let opts = CampaignOptions {
        threads: config.threads,
        ..CampaignOptions::default()
    };
    run_campaign_with(config, &opts).expect("campaign without a checkpoint store cannot fail")
}

/// Runs the full campaign under an explicit executor policy: checkpoint
/// directory (resume), per-trial wall-clock timeout, retries, fail-fast,
/// progress reporting. `opts.threads` takes precedence over
/// `config.threads` when nonzero.
///
/// # Errors
///
/// Returns a message only if the checkpoint directory is unusable.
/// Per-trial panics and timeouts land in [`CampaignReport::errors`].
///
/// # Panics
///
/// Panics if the config has no schemes, benchmarks, or points, or if the
/// derived system configuration is invalid.
pub fn run_campaign_with(
    config: &CampaignConfig,
    opts: &CampaignOptions,
) -> Result<CampaignReport, String> {
    assert!(!config.schemes.is_empty(), "no schemes to test");
    assert!(!config.benches.is_empty(), "no benchmarks to test");
    assert!(config.points > 0, "no crash points to test");

    // One schedule per benchmark, shared by every scheme on it.
    let schedules: Vec<Vec<CrashPoint>> = config
        .benches
        .iter()
        .enumerate()
        .map(|(bi, _)| {
            schedule(
                config.seed.wrapping_add(bi as u64),
                &ScheduleConfig {
                    points: config.points,
                    budget: config.budget,
                    epoch_len: config.epoch_len,
                    cores: 1,
                },
            )
        })
        .collect();

    let mut specs = Vec::with_capacity(config.schemes.len() * config.benches.len() * config.points);
    for &scheme in &config.schemes {
        for (bi, &bench) in config.benches.iter().enumerate() {
            for &point in &schedules[bi] {
                specs.push(TrialSpec {
                    scheme,
                    bench,
                    epoch_len: config.epoch_len,
                    acs_gap: config.acs_gap,
                    seed: config.seed,
                    footprint_scale: config.footprint_scale,
                    point,
                });
            }
        }
    }

    let mut opts = opts.clone();
    if opts.threads == 0 {
        opts.threads = config.threads;
    }
    let run = run_cells(&specs, &opts)?;

    // Trials without a verdict (panic, timeout, abort) become executor
    // errors; everything else folds into the pass/fail matrix as before.
    let mut errors = Vec::new();
    let mut outcomes: Vec<Option<TrialOutcome>> = Vec::with_capacity(specs.len());
    for (spec, outcome) in specs.iter().zip(run.outcomes) {
        match outcome {
            CellOutcome::Done(o) | CellOutcome::Cached(o) => outcomes.push(Some(o)),
            other => {
                errors.push(format!(
                    "{} {} {}: {}",
                    spec.scheme.name(),
                    spec.bench.name(),
                    spec.point,
                    other.failure_message().unwrap_or_default()
                ));
                outcomes.push(None);
            }
        }
    }

    // Fold trials into scheme-major cells.
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    for &scheme in &config.schemes {
        for &bench in &config.benches {
            let trials: Vec<(&TrialSpec, &TrialOutcome)> = specs
                .iter()
                .zip(&outcomes)
                .filter(|(s, _)| s.scheme == scheme && s.bench == bench)
                .filter_map(|(s, o)| o.as_ref().map(|o| (s, o)))
                .collect();
            let total = trials.len();
            let expects = scheme.expects_consistency();
            let mut passed = 0usize;
            let mut rpo_sum = 0u64;
            let mut rpo_max = 0u64;
            let mut rec_sum = 0u64;
            let mut rec_max = 0u64;
            let mut violations = 0u64;
            for &(spec, outcome) in &trials {
                if outcome.passed(expects) {
                    passed += 1;
                } else {
                    failures.push(CampaignFailure {
                        spec: *spec,
                        outcome: *outcome,
                        shrunk: None,
                    });
                }
                rpo_sum += outcome.epochs_lost;
                rpo_max = rpo_max.max(outcome.epochs_lost);
                rec_sum += outcome.recovery_cycles;
                rec_max = rec_max.max(outcome.recovery_cycles);
                violations += outcome.violations;
            }
            cells.push(CampaignCell {
                scheme,
                bench,
                passed,
                total,
                max_epochs_lost: rpo_max,
                mean_epochs_lost: rpo_sum as f64 / total.max(1) as f64,
                mean_recovery_cycles: rec_sum as f64 / total.max(1) as f64,
                max_recovery_cycles: rec_max,
                violations,
            });
        }
    }

    if config.shrink_failures {
        for failure in &mut failures {
            failure.shrunk = Some(shrink_failure(&failure.spec, failure.outcome));
        }
    }

    Ok(CampaignReport {
        config: config.clone(),
        cells,
        failures,
        errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use picl_sim::SchemeKind;

    fn small(schemes: Vec<LabScheme>) -> CampaignConfig {
        CampaignConfig {
            schemes,
            benches: vec![SpecBenchmark::Mcf],
            points: 6,
            budget: 120_000,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = small(vec![LabScheme::Standard(SchemeKind::Picl)]);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.all_passed(), b.all_passed());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.passed, cb.passed);
            assert_eq!(ca.max_epochs_lost, cb.max_epochs_lost);
            assert_eq!(ca.max_recovery_cycles, cb.max_recovery_cycles);
        }
    }

    #[test]
    fn protected_scheme_passes_small_campaign() {
        let report = run_campaign(&small(vec![LabScheme::Standard(SchemeKind::Journaling)]));
        assert!(report.all_passed(), "{report}");
        let cell = report
            .cell(
                LabScheme::Standard(SchemeKind::Journaling),
                SpecBenchmark::Mcf,
            )
            .unwrap();
        assert_eq!(cell.passed, cell.total);
        assert_eq!(cell.total, 6);
    }

    #[test]
    fn resumed_campaign_matches_uninterrupted_bit_for_bit() {
        let cfg = small(vec![LabScheme::Standard(SchemeKind::Picl)]);
        let baseline = run_campaign(&cfg);

        let dir = std::env::temp_dir().join(format!("picl_crashlab_resume_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let opts = CampaignOptions {
            checkpoint: Some(dir.clone()),
            ..CampaignOptions::default()
        };
        // First launch populates the store; second launch must serve every
        // trial from it and fold the exact same report.
        let first = run_campaign_with(&cfg, &opts).unwrap();
        let resumed = run_campaign_with(&cfg, &opts).unwrap();
        for report in [&first, &resumed] {
            assert!(report.errors.is_empty(), "{report}");
            for (a, b) in baseline.cells.iter().zip(&report.cells) {
                assert_eq!(a.passed, b.passed);
                assert_eq!(a.total, b.total);
                assert_eq!(a.max_epochs_lost, b.max_epochs_lost);
                assert_eq!(a.mean_epochs_lost, b.mean_epochs_lost);
                assert_eq!(a.mean_recovery_cycles, b.mean_recovery_cycles);
                assert_eq!(a.max_recovery_cycles, b.max_recovery_cycles);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_threaded_matches_pooled() {
        let mut cfg = small(vec![LabScheme::Standard(SchemeKind::Frm)]);
        let pooled = run_campaign(&cfg);
        cfg.threads = 1;
        let serial = run_campaign(&cfg);
        for (a, b) in pooled.cells.iter().zip(&serial.cells) {
            assert_eq!(a.passed, b.passed);
            assert_eq!(a.mean_recovery_cycles, b.mean_recovery_cycles);
        }
    }
}
