//! The campaign runner: shards `(scheme × benchmark × crash point)`
//! trials over a thread pool and folds the verdicts into a pass/fail
//! matrix with per-scheme RPO and recovery-latency figures.
//!
//! Every benchmark gets its own point schedule (derived from the campaign
//! seed and the benchmark's index), and all schemes face the *same*
//! schedule on that benchmark — the differential part of the oracle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use picl_trace::spec::SpecBenchmark;

use crate::oracle::{TrialOutcome, TrialSpec};
use crate::point::{schedule, CrashPoint, ScheduleConfig};
use crate::scheme::LabScheme;
use crate::shrink::{shrink_failure, ShrunkFailure};

/// Everything a campaign needs; two campaigns with equal configs produce
/// identical reports.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Schemes to put under the crash gun.
    pub schemes: Vec<LabScheme>,
    /// Benchmark profiles to drive traces from.
    pub benches: Vec<SpecBenchmark>,
    /// Crash points per benchmark.
    pub points: usize,
    /// Campaign seed (drives both point schedules and trace generation).
    pub seed: u64,
    /// Run budget in retired instructions; crash points fall within it.
    pub budget: u64,
    /// Epoch length in instructions.
    pub epoch_len: u64,
    /// PiCL ACS gap.
    pub acs_gap: u64,
    /// Workload footprint scale.
    pub footprint_scale: f64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Whether to bisect each failure down to a minimal reproducer.
    pub shrink_failures: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            schemes: LabScheme::PROTECTED.to_vec(),
            benches: vec![SpecBenchmark::Mcf, SpecBenchmark::Gcc, SpecBenchmark::Lbm],
            points: 64,
            seed: 1,
            budget: 200_000,
            epoch_len: 25_000,
            acs_gap: 3,
            // gcc's scaled footprint keeps the LLC under conflict pressure
            // at this scale, so crash points land on real in-flight state.
            footprint_scale: 0.05,
            threads: 0,
            shrink_failures: true,
        }
    }
}

/// One `(scheme, benchmark)` cell of the matrix.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Scheme of this cell.
    pub scheme: LabScheme,
    /// Benchmark of this cell.
    pub bench: SpecBenchmark,
    /// Crash points that recovered correctly (or were exempt).
    pub passed: usize,
    /// Crash points tried.
    pub total: usize,
    /// Worst epochs-lost across the cell's trials.
    pub max_epochs_lost: u64,
    /// Mean epochs-lost across the cell's trials.
    pub mean_epochs_lost: f64,
    /// Mean recovery latency in cycles.
    pub mean_recovery_cycles: f64,
    /// Worst recovery latency in cycles.
    pub max_recovery_cycles: u64,
}

/// A failing trial, with its (possibly shrunk) reproducer.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// The failing spec as originally scheduled.
    pub spec: TrialSpec,
    /// The outcome at the scheduled instant.
    pub outcome: TrialOutcome,
    /// The minimized failure, when shrinking was enabled.
    pub shrunk: Option<ShrunkFailure>,
}

impl CampaignFailure {
    /// The best available one-line reproducer (shrunk when possible).
    pub fn repro_command(&self) -> String {
        match &self.shrunk {
            Some(s) => s.repro_command(),
            None => self.spec.repro_command(),
        }
    }
}

/// The folded result of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The config that produced this report (replayability).
    pub config: CampaignConfig,
    /// One cell per `(scheme, benchmark)` pair, scheme-major.
    pub cells: Vec<CampaignCell>,
    /// Every failing trial, with reproducers.
    pub failures: Vec<CampaignFailure>,
}

impl CampaignReport {
    /// Whether every trial in every cell passed.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The cell for `(scheme, bench)`, if it was part of the campaign.
    pub fn cell(&self, scheme: LabScheme, bench: SpecBenchmark) -> Option<&CampaignCell> {
        self.cells
            .iter()
            .find(|c| c.scheme == scheme && c.bench == bench)
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "crash campaign: {} scheme(s) x {} benchmark(s) x {} point(s), seed {}",
            self.config.schemes.len(),
            self.config.benches.len(),
            self.config.points,
            self.config.seed
        )?;
        writeln!(
            f,
            "{:<12} {:<8} {:>9} {:>8} {:>10} {:>12} {:>12}",
            "scheme", "bench", "passed", "RPO.max", "RPO.mean", "rec.mean(cy)", "rec.max(cy)"
        )?;
        for cell in &self.cells {
            let verdict = if cell.passed == cell.total {
                "ok"
            } else {
                "FAIL"
            };
            writeln!(
                f,
                "{:<12} {:<8} {:>5}/{:<3} {:>8} {:>10.2} {:>12.0} {:>12} {}",
                cell.scheme.name(),
                cell.bench.name(),
                cell.passed,
                cell.total,
                cell.max_epochs_lost,
                cell.mean_epochs_lost,
                cell.mean_recovery_cycles,
                cell.max_recovery_cycles,
                verdict
            )?;
        }
        if self.failures.is_empty() {
            writeln!(f, "all crash points recovered consistently")?;
        } else {
            writeln!(f, "{} failing trial(s):", self.failures.len())?;
            for failure in &self.failures {
                writeln!(
                    f,
                    "  {} {} {}: {} mismatching line(s)",
                    failure.spec.scheme.name(),
                    failure.spec.bench.name(),
                    failure.spec.point,
                    failure.outcome.mismatch_count
                )?;
                writeln!(f, "    repro: {}", failure.repro_command())?;
            }
        }
        Ok(())
    }
}

/// Runs the full campaign, sharding trials over `config.threads` workers.
///
/// # Panics
///
/// Panics if the config has no schemes, benchmarks, or points, or if the
/// derived system configuration is invalid.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    assert!(!config.schemes.is_empty(), "no schemes to test");
    assert!(!config.benches.is_empty(), "no benchmarks to test");
    assert!(config.points > 0, "no crash points to test");

    // One schedule per benchmark, shared by every scheme on it.
    let schedules: Vec<Vec<CrashPoint>> = config
        .benches
        .iter()
        .enumerate()
        .map(|(bi, _)| {
            schedule(
                config.seed.wrapping_add(bi as u64),
                &ScheduleConfig {
                    points: config.points,
                    budget: config.budget,
                    epoch_len: config.epoch_len,
                    cores: 1,
                },
            )
        })
        .collect();

    let mut specs = Vec::with_capacity(config.schemes.len() * config.benches.len() * config.points);
    for &scheme in &config.schemes {
        for (bi, &bench) in config.benches.iter().enumerate() {
            for &point in &schedules[bi] {
                specs.push(TrialSpec {
                    scheme,
                    bench,
                    epoch_len: config.epoch_len,
                    acs_gap: config.acs_gap,
                    seed: config.seed,
                    footprint_scale: config.footprint_scale,
                    point,
                });
            }
        }
    }

    let outcomes = run_sharded(&specs, config.threads);

    // Fold trials into scheme-major cells.
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    for &scheme in &config.schemes {
        for &bench in &config.benches {
            let trials: Vec<(&TrialSpec, &TrialOutcome)> = specs
                .iter()
                .zip(&outcomes)
                .filter(|(s, _)| s.scheme == scheme && s.bench == bench)
                .collect();
            let total = trials.len();
            let expects = scheme.expects_consistency();
            let mut passed = 0usize;
            let mut rpo_sum = 0u64;
            let mut rpo_max = 0u64;
            let mut rec_sum = 0u64;
            let mut rec_max = 0u64;
            for &(spec, outcome) in &trials {
                if outcome.passed(expects) {
                    passed += 1;
                } else {
                    failures.push(CampaignFailure {
                        spec: *spec,
                        outcome: *outcome,
                        shrunk: None,
                    });
                }
                rpo_sum += outcome.epochs_lost;
                rpo_max = rpo_max.max(outcome.epochs_lost);
                rec_sum += outcome.recovery_cycles;
                rec_max = rec_max.max(outcome.recovery_cycles);
            }
            cells.push(CampaignCell {
                scheme,
                bench,
                passed,
                total,
                max_epochs_lost: rpo_max,
                mean_epochs_lost: rpo_sum as f64 / total.max(1) as f64,
                mean_recovery_cycles: rec_sum as f64 / total.max(1) as f64,
                max_recovery_cycles: rec_max,
            });
        }
    }

    if config.shrink_failures {
        for failure in &mut failures {
            failure.shrunk = Some(shrink_failure(&failure.spec, failure.outcome));
        }
    }

    CampaignReport {
        config: config.clone(),
        cells,
        failures,
    }
}

/// Executes every spec, sharding over a scoped thread pool. Results come
/// back in spec order regardless of completion order.
fn run_sharded(specs: &[TrialSpec], threads: usize) -> Vec<TrialOutcome> {
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
    .min(specs.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<TrialOutcome>>> = Mutex::new(vec![None; specs.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(idx) else { break };
                let outcome = spec.execute();
                results.lock().unwrap()[idx] = Some(outcome);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("worker completed every claimed trial"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picl_sim::SchemeKind;

    fn small(schemes: Vec<LabScheme>) -> CampaignConfig {
        CampaignConfig {
            schemes,
            benches: vec![SpecBenchmark::Mcf],
            points: 6,
            budget: 120_000,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = small(vec![LabScheme::Standard(SchemeKind::Picl)]);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.all_passed(), b.all_passed());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.passed, cb.passed);
            assert_eq!(ca.max_epochs_lost, cb.max_epochs_lost);
            assert_eq!(ca.max_recovery_cycles, cb.max_recovery_cycles);
        }
    }

    #[test]
    fn protected_scheme_passes_small_campaign() {
        let report = run_campaign(&small(vec![LabScheme::Standard(SchemeKind::Journaling)]));
        assert!(report.all_passed(), "{report}");
        let cell = report
            .cell(
                LabScheme::Standard(SchemeKind::Journaling),
                SpecBenchmark::Mcf,
            )
            .unwrap();
        assert_eq!(cell.passed, cell.total);
        assert_eq!(cell.total, 6);
    }

    #[test]
    fn single_threaded_matches_pooled() {
        let mut cfg = small(vec![LabScheme::Standard(SchemeKind::Frm)]);
        let pooled = run_campaign(&cfg);
        cfg.threads = 1;
        let serial = run_campaign(&cfg);
        for (a, b) in pooled.cells.iter().zip(&serial.cells) {
            assert_eq!(a.passed, b.passed);
            assert_eq!(a.mean_recovery_cycles, b.mean_recovery_cycles);
        }
    }
}
