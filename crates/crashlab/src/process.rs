//! Process-mode torture: `kill -9` a real `picl store` child mid-epoch
//! and judge its recovery with the differential oracle.
//!
//! The simulator-side oracle ([`crate::oracle`]) cuts power in a model;
//! this module cuts it on a live process. The child runs a seeded KV
//! workload against a store *file*, printing a flushed `commit <eid>`
//! line at every epoch boundary. The parent watches that stream, kills
//! the child with SIGKILL at a scheduled point in one of three classes —
//! mid-epoch, at a commit boundary, or inside the persister's in-place
//! write burst (held open by `--persist-stall-ms`) — then recovers the
//! file in-process and applies the same two checks as the proptest
//! oracle: the recovered contents must equal the seeded model at exactly
//! `recovered_to × ops_per_epoch` operations (prefix consistency), and
//! `recovered_to` must be within the in-order window of the last commit
//! the child reported (the one-epoch RPO bound).
//!
//! `kill -9` is a *process*-death model: writes the kernel already
//! accepted survive in the page cache, so it under-approximates power
//! failure. The adversarial unfenced-write-dropping model is covered by
//! `CountingMedium` in the store's property suite; this harness covers
//! what that one cannot — real file I/O, a real thread being killed at
//! an arbitrary instruction, real recovery latency.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use picl_store::{model_after, EngineConfig, FileMedium, Kv, Model};
use picl_telemetry::Telemetry;
use picl_types::Rng;

/// When, relative to the child's commit stream, to deliver SIGKILL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillClass {
    /// A beat after a commit line: the child is executing ordinary
    /// operations inside the next epoch.
    MidEpoch,
    /// Immediately on reading a commit line: the persister is (or is
    /// about to be) writing that epoch back.
    Boundary,
    /// Partway through the persister's stalled in-place write burst
    /// (requires the child to run with a persist stall).
    MidDrain,
}

impl KillClass {
    /// Cycles through the three classes for trial sharding.
    pub fn for_trial(index: u64) -> KillClass {
        match index % 3 {
            0 => KillClass::MidEpoch,
            1 => KillClass::Boundary,
            _ => KillClass::MidDrain,
        }
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            KillClass::MidEpoch => "mid-epoch",
            KillClass::Boundary => "boundary",
            KillClass::MidDrain => "mid-drain",
        }
    }
}

/// One process-mode torture trial, fully determined by its fields (the
/// kill *instant* is necessarily racy; the oracle must hold regardless).
#[derive(Debug, Clone)]
pub struct ProcessTrialSpec {
    /// Path of the `picl` binary to spawn.
    pub binary: PathBuf,
    /// Store file the child writes and the parent recovers.
    pub store_path: PathBuf,
    /// Workload seed (shared by child, parent model, and reports).
    pub seed: u64,
    /// Operations the child attempts.
    pub ops: u64,
    /// Operations per epoch.
    pub ops_per_epoch: u64,
    /// Distinct keys.
    pub key_space: u64,
    /// In-order window (the RPO bound).
    pub window: u64,
    /// Which commit (1-based) arms the kill; the child survives if it
    /// finishes first.
    pub kill_after_commit: u64,
    /// Kill class.
    pub class: KillClass,
    /// Persister stall in ms (MidDrain needs > 0 to widen its window).
    pub persist_stall_ms: u64,
}

/// Verdict of one process-mode trial.
#[derive(Debug, Clone)]
pub struct ProcessTrialOutcome {
    /// Kill class exercised.
    pub class: KillClass,
    /// Whether SIGKILL was actually delivered (the child may finish
    /// first; the trial then judges a clean shutdown).
    pub killed: bool,
    /// Last `commit <eid>` line the parent read before the kill.
    pub observed_commit: u64,
    /// Epoch the recovery rolled the file back to.
    pub recovered_to: u64,
    /// Committed epochs lost to the crash (observed - recovered).
    pub epochs_lost: u64,
    /// Undo entries replayed during recovery.
    pub entries_replayed: u64,
    /// Recovery latency (log scan + rollback + generation bump).
    pub recovery_ns: u64,
    /// Whether recovered contents equal the model prefix at the
    /// recovered epoch.
    pub consistent: bool,
    /// Whether `recovered_to + window >= observed_commit`.
    pub rpo_ok: bool,
}

impl ProcessTrialOutcome {
    /// Whether the trial met the PiCL contract.
    pub fn passed(&self) -> bool {
        self.consistent && self.rpo_ok
    }
}

/// A commit line from the child's progress stream (`commit <eid>`).
pub fn parse_commit_line(line: &str) -> Option<u64> {
    line.trim().strip_prefix("commit ")?.parse().ok()
}

fn spawn_child(spec: &ProcessTrialSpec) -> std::io::Result<Child> {
    Command::new(&spec.binary)
        .args([
            "store",
            "run",
            "--path",
            &spec.store_path.display().to_string(),
            "--seed",
            &spec.seed.to_string(),
            "--ops",
            &spec.ops.to_string(),
            "--ops-per-epoch",
            &spec.ops_per_epoch.to_string(),
            "--key-space",
            &spec.key_space.to_string(),
            "--window",
            &spec.window.to_string(),
            "--persist-stall-ms",
            &spec.persist_stall_ms.to_string(),
            "--progress",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
}

/// Recovers `store_path` in-process and judges it against the seeded
/// model. Shared by the torture harness and `picl store verify`.
///
/// # Errors
///
/// Returns a message if the file cannot be opened or recovered.
pub fn judge_recovery(
    store_path: &Path,
    seed: u64,
    ops_per_epoch: u64,
    key_space: u64,
    window: u64,
    observed_commit: u64,
) -> Result<ProcessJudgement, String> {
    let medium = FileMedium::open_existing(store_path)
        .map_err(|e| format!("open {}: {e}", store_path.display()))?;
    let (kv, report) = Kv::open(
        Arc::new(medium),
        EngineConfig::default(),
        Telemetry::off(),
        ops_per_epoch,
    )
    .map_err(|e| format!("recover {}: {e}", store_path.display()))?;
    let recovered_to = report.recovered_to;
    let expect: Model = model_after(seed, recovered_to * ops_per_epoch, key_space);
    let got = kv.scan().map_err(|e| format!("scan: {e}"))?;
    let want: Vec<(Vec<u8>, Vec<u8>)> = expect.into_iter().collect();
    Ok(ProcessJudgement {
        recovered_to,
        entries_replayed: report.entries_applied,
        recovery_ns: report.recovery_ns,
        consistent: got == want,
        rpo_ok: recovered_to + window >= observed_commit,
    })
}

/// What [`judge_recovery`] concluded about a store file.
#[derive(Debug, Clone, Copy)]
pub struct ProcessJudgement {
    /// Epoch the rollback landed on.
    pub recovered_to: u64,
    /// Undo entries applied.
    pub entries_replayed: u64,
    /// Recovery latency in nanoseconds.
    pub recovery_ns: u64,
    /// Contents equal the model prefix at `recovered_to`.
    pub consistent: bool,
    /// Within the window of `observed_commit`.
    pub rpo_ok: bool,
}

/// Runs one kill-and-recover trial end to end.
///
/// # Errors
///
/// Returns a message on harness failures (spawn, I/O) — never for an
/// oracle verdict, which lands in the outcome.
pub fn run_process_trial(spec: &ProcessTrialSpec) -> Result<ProcessTrialOutcome, String> {
    let _ = std::fs::remove_file(&spec.store_path);
    let mut child =
        spawn_child(spec).map_err(|e| format!("spawn {}: {e}", spec.binary.display()))?;
    let stdout = child.stdout.take().ok_or("child stdout not captured")?;
    let mut reader = BufReader::new(stdout);

    let mut observed_commit = 0u64;
    let mut killed = false;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            break; // clean EOF: the child finished before the kill armed
        }
        let Some(eid) = parse_commit_line(&line) else {
            continue;
        };
        observed_commit = eid;
        if eid >= spec.kill_after_commit {
            match spec.class {
                KillClass::Boundary => {}
                KillClass::MidEpoch => {
                    // Let the child get a few ops into the next epoch.
                    std::thread::sleep(Duration::from_millis(2));
                }
                KillClass::MidDrain => {
                    // Land inside the persister's stalled write burst.
                    std::thread::sleep(Duration::from_millis((spec.persist_stall_ms / 2).max(1)));
                }
            }
            child.kill().map_err(|e| format!("kill: {e}"))?;
            killed = true;
            break;
        }
    }
    let _ = child.wait();

    let judgement = judge_recovery(
        &spec.store_path,
        spec.seed,
        spec.ops_per_epoch,
        spec.key_space,
        spec.window,
        observed_commit,
    )?;
    Ok(ProcessTrialOutcome {
        class: spec.class,
        killed,
        observed_commit,
        recovered_to: judgement.recovered_to,
        epochs_lost: observed_commit.saturating_sub(judgement.recovered_to),
        entries_replayed: judgement.entries_replayed,
        recovery_ns: judgement.recovery_ns,
        consistent: judgement.consistent,
        rpo_ok: judgement.rpo_ok,
    })
}

/// Summary of a seeded multi-trial campaign.
#[derive(Debug, Clone, Default)]
pub struct ProcessCampaignReport {
    /// All trial outcomes, in execution order.
    pub outcomes: Vec<ProcessTrialOutcome>,
    /// Trials whose child was actually killed (vs finished early).
    pub kills: u64,
    /// Trials failing prefix consistency.
    pub inconsistent: u64,
    /// Trials breaking the RPO bound.
    pub rpo_violations: u64,
    /// Wall-clock time of the whole campaign.
    pub elapsed: Duration,
}

impl ProcessCampaignReport {
    /// Zero oracle mismatches across every trial.
    pub fn passed(&self) -> bool {
        self.inconsistent == 0 && self.rpo_violations == 0 && !self.outcomes.is_empty()
    }
}

/// Runs `trials` seeded kill -9 trials, rotating through the three kill
/// classes and varying seed, epoch length, and kill point per trial.
///
/// # Errors
///
/// Propagates harness (not oracle) failures from the first failing
/// trial.
pub fn run_process_campaign(
    binary: &Path,
    scratch_dir: &Path,
    trials: u64,
    seed: u64,
) -> Result<ProcessCampaignReport, String> {
    let mut rng = Rng::new(seed);
    let mut report = ProcessCampaignReport::default();
    let started = Instant::now();
    for t in 0..trials {
        let class = KillClass::for_trial(t);
        let spec = ProcessTrialSpec {
            binary: binary.to_path_buf(),
            store_path: scratch_dir.join(format!("torture-{t}.store")),
            seed: rng.next_u64() & 0xFFFF,
            ops: rng.range(200, 600),
            ops_per_epoch: rng.range(2, 9),
            key_space: rng.range(8, 24),
            window: 1,
            kill_after_commit: rng.range(1, 12),
            class,
            persist_stall_ms: if class == KillClass::MidDrain { 6 } else { 0 },
        };
        let outcome =
            run_process_trial(&spec).map_err(|e| format!("trial {t} ({}): {e}", class.name()))?;
        if outcome.killed {
            report.kills += 1;
        }
        if !outcome.consistent {
            report.inconsistent += 1;
        }
        if !outcome.rpo_ok {
            report.rpo_violations += 1;
        }
        report.outcomes.push(outcome);
        let _ = std::fs::remove_file(&spec.store_path);
    }
    report.elapsed = started.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_lines_parse() {
        assert_eq!(parse_commit_line("commit 17\n"), Some(17));
        assert_eq!(parse_commit_line("  commit 3"), Some(3));
        assert_eq!(parse_commit_line("op 5"), None);
        assert_eq!(parse_commit_line("commit x"), None);
        assert_eq!(parse_commit_line(""), None);
    }

    #[test]
    fn kill_classes_rotate() {
        assert_eq!(KillClass::for_trial(0), KillClass::MidEpoch);
        assert_eq!(KillClass::for_trial(1), KillClass::Boundary);
        assert_eq!(KillClass::for_trial(2), KillClass::MidDrain);
        assert_eq!(KillClass::for_trial(3), KillClass::MidEpoch);
        assert_eq!(KillClass::MidDrain.name(), "mid-drain");
    }

    #[test]
    fn judgement_on_a_cleanly_closed_store() {
        // No child process needed: build a store file in-process, close
        // it cleanly, and the judge must find it consistent at the last
        // committed epoch.
        let dir = std::env::temp_dir().join(format!("picl-process-judge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.store");
        let _ = std::fs::remove_file(&path);
        let (seed, ops, ope, keys) = (5u64, 40u64, 4u64, 10u64);
        {
            let g = picl_store::layout::Geometry {
                lines: EngineConfig::default().lines,
                log_blocks: EngineConfig::default().log_blocks,
            };
            let medium = FileMedium::open(&path, g.total_len()).unwrap();
            let (mut kv, _) = Kv::open(
                Arc::new(medium),
                EngineConfig::default(),
                Telemetry::off(),
                ope,
            )
            .unwrap();
            for op in picl_store::generate(seed, ops, keys) {
                picl_store::apply_to_store(&mut kv, &op).unwrap();
            }
            kv.close().unwrap();
        }
        let j = judge_recovery(&path, seed, ope, keys, 1, ops / ope).unwrap();
        assert!(j.consistent, "clean close must judge consistent");
        assert!(j.rpo_ok);
        assert_eq!(j.recovered_to, ops / ope);
        let _ = std::fs::remove_file(&path);
    }
}
