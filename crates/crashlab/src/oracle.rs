//! The differential oracle: run a scheme on a workload, pull the plug at
//! a scheduled instant, and judge the recovery.
//!
//! Every trial is fully described by a [`TrialSpec`] — `(scheme,
//! benchmark, epoch parameters, seed, crash point)` — so any verdict can
//! be replayed from its one-line reproducer. Trials on the same
//! `(benchmark, seed)` see bit-identical traces regardless of scheme,
//! which is what makes cross-scheme comparison at one crash instant
//! *differential* rather than anecdotal.

use picl_sim::{Machine, WorkloadSpec};
use picl_telemetry::TelemetrySnapshot;
use picl_trace::spec::SpecBenchmark;
use picl_types::SystemConfig;

use crate::point::CrashPoint;
use crate::scheme::LabScheme;

/// A complete, replayable description of one crash trial.
#[derive(Debug, Clone, Copy)]
pub struct TrialSpec {
    /// Scheme under test.
    pub scheme: LabScheme,
    /// Single-core benchmark profile driving the trace.
    pub bench: SpecBenchmark,
    /// Epoch length in instructions.
    pub epoch_len: u64,
    /// PiCL ACS gap (ignored by other schemes).
    pub acs_gap: u64,
    /// Trace seed.
    pub seed: u64,
    /// Workload footprint scale (small scales maximize eviction churn).
    pub footprint_scale: f64,
    /// When to pull the plug.
    pub point: CrashPoint,
}

/// What one crash trial observed.
#[derive(Debug, Clone, Copy)]
pub struct TrialOutcome {
    /// Instructions actually retired before the cut (>= the point's
    /// instant unless the workload ended early).
    pub instructions_run: u64,
    /// Whether recovered NVM matched the golden snapshot (`None` only if
    /// the recovered epoch was never snapshotted — itself a failure).
    pub consistent: Option<bool>,
    /// Mismatching lines after recovery.
    pub mismatch_count: usize,
    /// Epochs of committed work lost to the rollback (the RPO).
    pub epochs_lost: u64,
    /// The epoch the scheme rolled back to.
    pub recovered_to: u64,
    /// Log/table entries applied while patching memory.
    pub entries_applied: u64,
    /// Recovery latency in cycles (log scan + patching).
    pub recovery_cycles: u64,
    /// Protocol-invariant violations the online auditor observed across
    /// the run, the crash, and the recovery.
    pub violations: u64,
}

impl TrialOutcome {
    /// Whether the trial met the scheme's contract: exact recovery *and* a
    /// violation-free protocol for protected schemes, nothing asserted for
    /// unprotected ones. A scheme that recovers the right bytes while
    /// breaking the protocol (right answer by accident) fails.
    pub fn passed(&self, expects_consistency: bool) -> bool {
        !expects_consistency || (self.consistent == Some(true) && self.violations == 0)
    }
}

/// Outcomes checkpoint as one-line JSON; the round trip is exact, so a
/// resumed campaign folds the same verdicts as an uninterrupted one.
impl picl_campaign::CellPayload for TrialOutcome {
    fn encode(&self) -> String {
        let consistent = match self.consistent {
            None => "null",
            Some(true) => "true",
            Some(false) => "false",
        };
        format!(
            "{{\"instructions_run\": {}, \"consistent\": {consistent}, \
             \"mismatch_count\": {}, \"epochs_lost\": {}, \"recovered_to\": {}, \
             \"entries_applied\": {}, \"recovery_cycles\": {}, \"violations\": {}}}",
            self.instructions_run,
            self.mismatch_count,
            self.epochs_lost,
            self.recovered_to,
            self.entries_applied,
            self.recovery_cycles,
            self.violations
        )
    }

    fn decode(v: &picl_campaign::json::Value) -> Result<TrialOutcome, String> {
        use picl_campaign::json::Value;
        let consistent = match v.get("consistent") {
            Some(Value::Null) => None,
            Some(Value::Bool(b)) => Some(*b),
            _ => return Err("missing or non-boolean field \"consistent\"".into()),
        };
        Ok(TrialOutcome {
            instructions_run: v.field_u64("instructions_run")?,
            consistent,
            mismatch_count: v
                .get("mismatch_count")
                .and_then(Value::as_usize)
                .ok_or("missing or non-integer field \"mismatch_count\"")?,
            epochs_lost: v.field_u64("epochs_lost")?,
            recovered_to: v.field_u64("recovered_to")?,
            entries_applied: v.field_u64("entries_applied")?,
            recovery_cycles: v.field_u64("recovery_cycles")?,
            // Absent in checkpoints written before the auditor existed.
            violations: v.get("violations").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

/// Trials are campaign cells: the `Debug` rendering of the spec (scheme,
/// bench, epoch parameters, seed, crash point) is the content-hashed
/// checkpoint key, and executing the cell runs the oracle.
impl picl_campaign::CampaignCell for TrialSpec {
    type Payload = TrialOutcome;

    fn spec_string(&self) -> String {
        format!("{self:?}")
    }

    fn label(&self) -> String {
        format!(
            "{} {} {}",
            self.scheme.name(),
            self.bench.name(),
            self.point
        )
    }

    fn execute(&self) -> TrialOutcome {
        TrialSpec::execute(self)
    }
}

impl TrialSpec {
    /// Builds the machine this spec describes (snapshots on, so crashes
    /// are verifiable).
    ///
    /// # Panics
    ///
    /// Panics if the derived configuration is invalid (campaign configs
    /// are validated before trials fan out).
    pub fn build_machine(&self) -> Machine {
        let mut cfg = SystemConfig::paper_single_core();
        cfg.epoch.epoch_len_instructions = self.epoch_len;
        cfg.epoch.acs_gap = self.acs_gap;
        // LabScheme isn't a SchemeKind, so Simulation's builder can't carry
        // it; assemble the machine directly.
        let spec = WorkloadSpec::single(self.bench);
        cfg.cores = spec.cores();
        cfg.validate()
            .expect("campaign configuration must be valid");
        let scheme = self.scheme.build(&cfg);
        let traces = spec.build_traces(self.seed, self.footprint_scale);
        let label = spec.label().to_owned();
        Machine::new(cfg, scheme, traces, label, true)
    }

    /// Runs the trial: execute to the crash instant, cut power, recover,
    /// and compare against the golden epoch snapshot.
    pub fn execute(&self) -> TrialOutcome {
        let mut machine = self.build_machine();
        self.run_to_verdict(&mut machine)
    }

    /// Like [`TrialSpec::execute`], but with telemetry on: returns the
    /// verdict plus the full event/series recording of the run, the crash,
    /// and the recovery (the `picl crashlab … --telemetry` path).
    pub fn execute_traced(
        &self,
        ring_capacity: usize,
        sample_interval: u64,
    ) -> (TrialOutcome, TelemetrySnapshot) {
        let mut machine = self.build_machine();
        let telemetry = machine.enable_telemetry(ring_capacity, sample_interval);
        let outcome = self.run_to_verdict(&mut machine);
        (outcome, telemetry.snapshot())
    }

    fn run_to_verdict(&self, machine: &mut Machine) -> TrialOutcome {
        // Every trial runs under the online protocol auditor: a scheme
        // that recovers the right bytes while violating the protocol
        // (ordering, lifecycle, RPO) still fails.
        let audit = machine.enable_audit();
        let instructions_run = machine.run_until(self.point.at());
        let committed = machine.scheme().system_eid().raw().saturating_sub(1);
        let crash_now = machine.now();
        let report = match self.point {
            CrashPoint::MidEpoch { .. } => machine.crash(),
            CrashPoint::MidBoundary { cores_done, .. } => machine.crash_mid_boundary(cores_done),
        };
        TrialOutcome {
            instructions_run,
            consistent: report.consistent,
            mismatch_count: report.mismatch_count,
            epochs_lost: committed.saturating_sub(report.outcome.recovered_to.raw()),
            recovered_to: report.outcome.recovered_to.raw(),
            entries_applied: report.outcome.entries_applied,
            recovery_cycles: report
                .outcome
                .completed_at
                .saturating_since(crash_now)
                .raw(),
            violations: audit.report().violations.len() as u64,
        }
    }

    /// The one-line reproducer: a complete `picl crashlab` invocation
    /// replaying exactly this trial.
    pub fn repro_command(&self) -> String {
        let boundary = match self.point.cores_done() {
            Some(done) => format!(" --boundary-cores {done}"),
            None => String::new(),
        };
        format!(
            "picl crashlab --schemes {} --bench {} --epoch {} --acs-gap {} \
             --seed {} --footprint-scale {} --crash-at {}{}",
            self.scheme.name(),
            self.bench.name(),
            self.epoch_len,
            self.acs_gap,
            self.seed,
            self.footprint_scale,
            self.point.at(),
            boundary
        )
    }

    /// The same spec with the crash instant moved to `at` (used by the
    /// shrinker; preserves the point class).
    pub fn with_crash_at(&self, at: u64) -> TrialSpec {
        let point = match self.point {
            CrashPoint::MidEpoch { .. } => CrashPoint::MidEpoch { at },
            CrashPoint::MidBoundary { cores_done, .. } => {
                CrashPoint::MidBoundary { at, cores_done }
            }
        };
        TrialSpec { point, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picl_sim::SchemeKind;

    // gcc at footprint scale 0.05 keeps the LLC under enough conflict
    // pressure that dirty lines are evicted in-place mid-epoch — the
    // traffic an undo-based recovery must actually undo.
    fn spec(scheme: LabScheme, at: u64) -> TrialSpec {
        TrialSpec {
            scheme,
            bench: SpecBenchmark::Gcc,
            epoch_len: 25_000,
            acs_gap: 3,
            seed: 3,
            footprint_scale: 0.05,
            point: CrashPoint::MidEpoch { at },
        }
    }

    #[test]
    fn picl_trial_passes_mid_epoch() {
        let outcome = spec(LabScheme::Standard(SchemeKind::Picl), 90_000).execute();
        assert!(outcome.passed(true), "{outcome:?}");
        assert!(outcome.instructions_run >= 90_000);
    }

    #[test]
    fn broken_scheme_is_flagged() {
        let outcome = spec(LabScheme::BrokenNoUndo, 120_000).execute();
        assert_eq!(outcome.consistent, Some(false), "oracle missed sabotage");
        assert!(outcome.mismatch_count > 0);
    }

    #[test]
    fn trials_are_deterministic() {
        let spec = spec(LabScheme::Standard(SchemeKind::Frm), 60_000);
        let a = spec.execute();
        let b = spec.execute();
        assert_eq!(a.instructions_run, b.instructions_run);
        assert_eq!(a.consistent, b.consistent);
        assert_eq!(a.recovered_to, b.recovered_to);
        assert_eq!(a.recovery_cycles, b.recovery_cycles);
    }

    #[test]
    fn traced_trial_matches_untraced_verdict() {
        use picl_telemetry::EventKind;
        let s = spec(LabScheme::Standard(SchemeKind::Picl), 90_000);
        let plain = s.execute();
        let (traced, snap) = s.execute_traced(1 << 16, 5_000);
        assert_eq!(plain.consistent, traced.consistent);
        assert_eq!(plain.recovered_to, traced.recovered_to);
        assert_eq!(plain.recovery_cycles, traced.recovery_cycles);
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CrashInjected)));
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RecoveryDone { .. })));
    }

    #[test]
    fn repro_command_roundtrips_fields() {
        let s = spec(LabScheme::BrokenNoUndo, 4242);
        let line = s.repro_command();
        assert!(line.contains("--schemes broken-noundo"), "{line}");
        assert!(line.contains("--crash-at 4242"), "{line}");
        assert!(!line.contains("--boundary-cores"), "{line}");
        let mid = TrialSpec {
            point: CrashPoint::MidBoundary {
                at: 7,
                cores_done: 1,
            },
            ..s
        };
        assert!(mid.repro_command().contains("--boundary-cores 1"));
    }
}
