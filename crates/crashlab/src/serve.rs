//! Multi-session process torture: `kill -9` a `picl serve` child under
//! concurrent load and judge recovery per session.
//!
//! [`crate::process`] kills a single-session child whose op stream is
//! totally ordered, so the oracle can demand the recovered store equal
//! *the* model prefix at the recovered epoch. A serving child has no
//! such total order: sessions interleave nondeterministically, and the
//! interleaving dies with the process. The serve oracle instead leans on
//! the stream design in `picl_serve::stream` — each session owns a
//! disjoint key prefix — and on the child's extended progress lines:
//!
//! ```text
//! commit <eid> ops <n0>,<n1>,...
//! ```
//!
//! where `n_i` is a lower bound on how many of session `i`'s ops were
//! included in epoch `eid`. The serve layer bumps a session's count
//! inside the mutation's shard critical section and the group-commit
//! leader snapshots the counters while holding every shard lock at the
//! epoch boundary, so any count it reports belongs to a mutation that
//! finished before the boundary — a true lower bound even with sharded
//! writers racing the commit. After the kill, the parent recovers the
//! file, restricts the contents to each session's prefix, and accepts
//! the trial iff for every session there exists an op count `n` — at
//! least the lower bound from the last commit line at or below the
//! recovered epoch — whose seeded per-session model equals the
//! restriction. That is prefix consistency per session; the RPO bound is
//! judged exactly as in single-session mode.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use picl_serve::stream::session_model_after;
use picl_store::{EngineConfig, FileMedium, Kv, Model};
use picl_telemetry::Telemetry;
use picl_types::Rng;

use crate::process::KillClass;

/// One multi-session kill -9 trial.
#[derive(Debug, Clone)]
pub struct ServeTrialSpec {
    /// Path of the `picl` binary to spawn.
    pub binary: PathBuf,
    /// Store file the child serves and the parent recovers.
    pub store_path: PathBuf,
    /// Stream seed (shared by child and judging parent).
    pub seed: u64,
    /// Concurrent sessions in the child.
    pub sessions: usize,
    /// Ops each session attempts.
    pub ops_per_session: u64,
    /// Keys per session (under its own prefix).
    pub key_space: u64,
    /// Mutations per epoch in the child.
    pub ops_per_epoch: u64,
    /// In-order window (the RPO bound).
    pub window: u64,
    /// Which commit (1-based) arms the kill.
    pub kill_after_commit: u64,
    /// Kill class (rotated as in single-session mode).
    pub class: KillClass,
    /// Persister stall in ms (MidDrain wants > 0).
    pub persist_stall_ms: u64,
    /// Flight-recorder JSONL path for the child, if the trial should
    /// also judge that the recorder's tail survives the kill.
    pub flight_path: Option<PathBuf>,
}

/// Verdict of one serve-mode trial.
#[derive(Debug, Clone)]
pub struct ServeTrialOutcome {
    /// Kill class exercised.
    pub class: KillClass,
    /// Whether SIGKILL was delivered (vs the child finishing first).
    pub killed: bool,
    /// Last commit epoch the parent observed.
    pub observed_commit: u64,
    /// Epoch recovery rolled back to.
    pub recovered_to: u64,
    /// Committed epochs lost (observed - recovered).
    pub epochs_lost: u64,
    /// Undo entries replayed during recovery.
    pub entries_replayed: u64,
    /// Recovery latency in nanoseconds.
    pub recovery_ns: u64,
    /// Per-session prefix-consistency verdicts.
    pub sessions_consistent: Vec<bool>,
    /// All sessions consistent and no foreign keys in the image.
    pub consistent: bool,
    /// `recovered_to + window >= observed_commit`.
    pub rpo_ok: bool,
    /// Flight-recorder verdict: `None` when the trial ran without one,
    /// else whether the killed child left a parseable JSONL log (a torn
    /// final line is fine; garbage or an empty file is not).
    pub flight_ok: Option<bool>,
    /// Complete snapshot lines recovered from the flight log.
    pub flight_lines: u64,
}

impl ServeTrialOutcome {
    /// Whether the trial met the PiCL contract.
    pub fn passed(&self) -> bool {
        self.consistent && self.rpo_ok && self.flight_ok != Some(false)
    }
}

/// Parses the serve child's extended progress line
/// `commit <eid> ops <n0>,<n1>,...` into `(eid, per-session counts)`.
pub fn parse_serve_commit_line(line: &str) -> Option<(u64, Vec<u64>)> {
    let rest = line.trim().strip_prefix("commit ")?;
    let (eid, rest) = rest.split_once(" ops ")?;
    let eid = eid.trim().parse().ok()?;
    let counts = rest
        .trim()
        .split(',')
        .map(|t| t.trim().parse::<u64>())
        .collect::<Result<Vec<u64>, _>>()
        .ok()?;
    Some((eid, counts))
}

/// Which session owns `key`, by its `s<N>-` prefix.
fn session_of(key: &[u8], sessions: usize) -> Option<usize> {
    let text = std::str::from_utf8(key).ok()?;
    let rest = text.strip_prefix('s')?;
    let dash = rest.find('-')?;
    let sid: usize = rest[..dash].parse().ok()?;
    (sid < sessions).then_some(sid)
}

/// What [`judge_serve_recovery`] concluded.
#[derive(Debug, Clone)]
pub struct ServeJudgement {
    /// Epoch the rollback landed on.
    pub recovered_to: u64,
    /// Undo entries applied.
    pub entries_replayed: u64,
    /// Recovery latency in nanoseconds.
    pub recovery_ns: u64,
    /// Per-session verdicts.
    pub sessions_consistent: Vec<bool>,
    /// Every session consistent, no foreign keys.
    pub consistent: bool,
    /// Within the window of `observed_commit`.
    pub rpo_ok: bool,
}

/// Recovers `store_path` and judges per-session prefix consistency
/// against the seeded streams, using `commits` — the `(eid, counts)`
/// lines observed before the kill — for the per-session lower bounds.
///
/// # Errors
///
/// Returns a message if the file cannot be opened or recovered (never
/// for an oracle verdict).
#[allow(clippy::too_many_arguments)]
pub fn judge_serve_recovery(
    store_path: &Path,
    seed: u64,
    sessions: usize,
    ops_per_session: u64,
    key_space: u64,
    window: u64,
    commits: &[(u64, Vec<u64>)],
) -> Result<ServeJudgement, String> {
    let medium = FileMedium::open_existing(store_path)
        .map_err(|e| format!("open {}: {e}", store_path.display()))?;
    let (kv, report) = Kv::open(
        Arc::new(medium),
        EngineConfig::default(),
        Telemetry::off(),
        1,
    )
    .map_err(|e| format!("recover {}: {e}", store_path.display()))?;
    let recovered_to = report.recovered_to;
    let observed_commit = commits.last().map_or(0, |(eid, _)| *eid);

    // Partition the recovered image by owning session.
    let mut by_session: Vec<Model> = vec![Model::new(); sessions];
    let mut foreign_keys = false;
    for (k, v) in kv.scan().map_err(|e| format!("scan: {e}"))? {
        match session_of(&k, sessions) {
            Some(sid) => {
                by_session[sid].insert(k, v);
            }
            None => foreign_keys = true,
        }
    }

    // Lower bounds: the counts from the last commit line the recovery
    // actually kept. Later lines describe epochs that were rolled back.
    let bounds: Vec<u64> = commits
        .iter()
        .rev()
        .find(|(eid, _)| *eid <= recovered_to)
        .map(|(_, counts)| counts.clone())
        .unwrap_or_else(|| vec![0; sessions]);

    let sessions_consistent: Vec<bool> = (0..sessions)
        .map(|sid| {
            let lb = bounds.get(sid).copied().unwrap_or(0);
            (lb..=ops_per_session)
                .any(|n| session_model_after(seed, sid, n, key_space) == by_session[sid])
        })
        .collect();
    let consistent = !foreign_keys && sessions_consistent.iter().all(|&ok| ok);

    Ok(ServeJudgement {
        recovered_to,
        entries_replayed: report.entries_applied,
        recovery_ns: report.recovery_ns,
        sessions_consistent,
        consistent,
        rpo_ok: recovered_to + window >= observed_commit,
    })
}

fn spawn_serve_child(spec: &ServeTrialSpec) -> std::io::Result<Child> {
    let mut args = vec![
        "serve".to_owned(),
        "run".to_owned(),
        "--path".to_owned(),
        spec.store_path.display().to_string(),
        "--seed".to_owned(),
        spec.seed.to_string(),
        "--sessions".to_owned(),
        spec.sessions.to_string(),
        "--ops-per-session".to_owned(),
        spec.ops_per_session.to_string(),
        "--key-space".to_owned(),
        spec.key_space.to_string(),
        "--ops-per-epoch".to_owned(),
        spec.ops_per_epoch.to_string(),
        "--window".to_owned(),
        spec.window.to_string(),
        "--persist-stall-ms".to_owned(),
        spec.persist_stall_ms.to_string(),
        "--progress".to_owned(),
    ];
    if let Some(flight) = &spec.flight_path {
        // A short interval so even a fast-killed child records a few
        // lines; the first snapshot is written synchronously at spawn.
        args.extend([
            "--flight-recorder".to_owned(),
            flight.display().to_string(),
            "--flight-interval-ms".to_owned(),
            "5".to_owned(),
        ]);
    }
    Command::new(&spec.binary)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
}

/// Runs one multi-session kill-and-recover trial end to end.
///
/// # Errors
///
/// Returns a message on harness failures (spawn, I/O) — never for an
/// oracle verdict.
pub fn run_serve_trial(spec: &ServeTrialSpec) -> Result<ServeTrialOutcome, String> {
    let _ = std::fs::remove_file(&spec.store_path);
    let mut child =
        spawn_serve_child(spec).map_err(|e| format!("spawn {}: {e}", spec.binary.display()))?;
    let stdout = child.stdout.take().ok_or("child stdout not captured")?;
    let mut reader = BufReader::new(stdout);

    let mut commits: Vec<(u64, Vec<u64>)> = Vec::new();
    let mut killed = false;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            break; // clean EOF: the child finished before the kill armed
        }
        let Some((eid, counts)) = parse_serve_commit_line(&line) else {
            continue;
        };
        commits.push((eid, counts));
        if eid >= spec.kill_after_commit {
            match spec.class {
                KillClass::Boundary => {}
                KillClass::MidEpoch => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                KillClass::MidDrain => {
                    std::thread::sleep(Duration::from_millis((spec.persist_stall_ms / 2).max(1)));
                }
            }
            child.kill().map_err(|e| format!("kill: {e}"))?;
            killed = true;
            break;
        }
    }
    let _ = child.wait();

    // Judge the flight recorder's crash tail before recovery: every
    // complete line must parse with strictly increasing seq; only a torn
    // final line (no newline) is excused. This is the "readable record
    // of the seconds before death" contract under a real SIGKILL.
    let flight = spec.flight_path.as_ref().map(|p| {
        let text = std::fs::read_to_string(p).unwrap_or_default();
        match picl_obs::validate_flight_log(&text) {
            Ok(s) => (true, s.lines),
            Err(_) => (false, 0),
        }
    });

    let observed_commit = commits.last().map_or(0, |(eid, _)| *eid);
    let judgement = judge_serve_recovery(
        &spec.store_path,
        spec.seed,
        spec.sessions,
        spec.ops_per_session,
        spec.key_space,
        spec.window,
        &commits,
    )?;
    Ok(ServeTrialOutcome {
        class: spec.class,
        killed,
        observed_commit,
        recovered_to: judgement.recovered_to,
        epochs_lost: observed_commit.saturating_sub(judgement.recovered_to),
        entries_replayed: judgement.entries_replayed,
        recovery_ns: judgement.recovery_ns,
        sessions_consistent: judgement.sessions_consistent,
        consistent: judgement.consistent,
        rpo_ok: judgement.rpo_ok,
        flight_ok: flight.map(|(ok, _)| ok),
        flight_lines: flight.map_or(0, |(_, lines)| lines),
    })
}

/// Summary of a seeded serve-mode campaign.
#[derive(Debug, Clone, Default)]
pub struct ServeCampaignReport {
    /// All trial outcomes, in execution order.
    pub outcomes: Vec<ServeTrialOutcome>,
    /// Trials whose child was actually killed.
    pub kills: u64,
    /// Trials failing per-session prefix consistency.
    pub inconsistent: u64,
    /// Trials breaking the RPO bound.
    pub rpo_violations: u64,
    /// Trials whose flight-recorder log failed to parse after the kill.
    pub flight_failures: u64,
    /// Wall-clock time of the whole campaign.
    pub elapsed: Duration,
}

impl ServeCampaignReport {
    /// Zero oracle mismatches across every trial.
    pub fn passed(&self) -> bool {
        self.inconsistent == 0
            && self.rpo_violations == 0
            && self.flight_failures == 0
            && !self.outcomes.is_empty()
    }
}

/// Runs `trials` seeded multi-session kill -9 trials, rotating kill
/// classes and varying session count, stream shape, and kill point.
///
/// # Errors
///
/// Propagates harness (not oracle) failures from the first failing
/// trial.
pub fn run_serve_campaign(
    binary: &Path,
    scratch_dir: &Path,
    trials: u64,
    seed: u64,
) -> Result<ServeCampaignReport, String> {
    let mut rng = Rng::new(seed ^ 0x5E41_7E5E_5510_0000);
    let mut report = ServeCampaignReport::default();
    let started = Instant::now();
    for t in 0..trials {
        let class = KillClass::for_trial(t);
        let spec = ServeTrialSpec {
            binary: binary.to_path_buf(),
            store_path: scratch_dir.join(format!("serve-torture-{t}.store")),
            seed: rng.next_u64() & 0xFFFF,
            sessions: rng.range(2, 6) as usize,
            ops_per_session: rng.range(60, 160),
            key_space: rng.range(8, 17),
            ops_per_epoch: rng.range(3, 10),
            window: 1,
            kill_after_commit: rng.range(1, 11),
            class,
            persist_stall_ms: if class == KillClass::MidDrain { 6 } else { 0 },
            flight_path: Some(scratch_dir.join(format!("serve-torture-{t}.flight.jsonl"))),
        };
        let outcome =
            run_serve_trial(&spec).map_err(|e| format!("trial {t} ({}): {e}", class.name()))?;
        if outcome.killed {
            report.kills += 1;
        }
        if !outcome.consistent {
            report.inconsistent += 1;
        }
        if !outcome.rpo_ok {
            report.rpo_violations += 1;
        }
        if outcome.flight_ok == Some(false) {
            report.flight_failures += 1;
        }
        report.outcomes.push(outcome);
        let _ = std::fs::remove_file(&spec.store_path);
        if let Some(flight) = &spec.flight_path {
            // Rotated generations too: the recorder appends `.N` to the
            // full path (`flight.jsonl.1`, ...).
            let _ = std::fs::remove_file(flight);
            for generation in 1..8 {
                let mut rotated = flight.as_os_str().to_os_string();
                rotated.push(format!(".{generation}"));
                let _ = std::fs::remove_file(PathBuf::from(rotated));
            }
        }
    }
    report.elapsed = started.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use picl_serve::session::{Backend, ServeKv};
    use picl_serve::stream::session_ops;
    use picl_store::layout::Geometry;
    use picl_store::workload::Op;
    use std::sync::Mutex;

    #[test]
    fn serve_commit_lines_parse() {
        assert_eq!(
            parse_serve_commit_line("commit 7 ops 12,0,3\n"),
            Some((7, vec![12, 0, 3]))
        );
        assert_eq!(
            parse_serve_commit_line("  commit 1 ops 5"),
            Some((1, vec![5]))
        );
        assert_eq!(parse_serve_commit_line("commit 7"), None);
        assert_eq!(parse_serve_commit_line("commit x ops 1"), None);
        assert_eq!(parse_serve_commit_line("commit 7 ops 1,x"), None);
        assert_eq!(parse_serve_commit_line("op 5"), None);
    }

    #[test]
    fn keys_map_to_their_sessions() {
        assert_eq!(session_of(b"s0-k001", 4), Some(0));
        assert_eq!(session_of(b"s3-k999", 4), Some(3));
        assert_eq!(session_of(b"s4-k000", 4), None, "out of range");
        assert_eq!(session_of(b"s12-k000", 16), Some(12));
        assert_eq!(session_of(b"key-0001", 4), None);
        assert_eq!(session_of(b"sx-k0", 4), None);
    }

    /// Builds a store by running the seeded session streams through a
    /// real `ServeKv` (sequentially, so the test is deterministic),
    /// closes it cleanly, and the judge must accept it.
    #[test]
    fn judgement_on_a_cleanly_closed_serve_store() {
        let dir = std::env::temp_dir().join(format!("picl-serve-judge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.store");
        let _ = std::fs::remove_file(&path);
        let (seed, sessions, ops_per_session, key_space) = (21u64, 3usize, 80u64, 10u64);
        let cfg = EngineConfig::default();
        type CommitLog = Vec<(u64, Vec<u64>)>;
        let commits: Arc<Mutex<CommitLog>> = Arc::new(Mutex::new(Vec::new()));
        {
            let g = Geometry {
                lines: cfg.lines,
                log_blocks: cfg.log_blocks,
            };
            let medium = FileMedium::open(&path, g.total_len()).unwrap();
            let (mut kv, _) =
                ServeKv::open(Arc::new(medium), cfg.clone(), Telemetry::off(), 7, sessions)
                    .unwrap();
            let sink = Arc::clone(&commits);
            kv.set_commit_hook(Box::new(move |eid, counts| {
                sink.lock().unwrap().push((eid, counts.to_vec()));
            }));
            for sid in 0..sessions {
                for op in session_ops(seed, sid, ops_per_session, key_space) {
                    match &op {
                        Op::Put(k, v) => kv.put(sid, k, v).map(|_| ()).unwrap(),
                        Op::Delete(k) => kv.delete(sid, k).map(|_| ()).unwrap(),
                        Op::Get(k) => kv.get(sid, k).map(|_| ()).unwrap(),
                    }
                }
            }
            kv.commit().unwrap();
            kv.close().unwrap();
        }
        let commits = commits.lock().unwrap().clone();
        assert!(!commits.is_empty(), "the run must cross epoch boundaries");
        let observed = commits.last().unwrap().0;
        let j = judge_serve_recovery(
            &path,
            seed,
            sessions,
            ops_per_session,
            key_space,
            1,
            &commits,
        )
        .unwrap();
        assert_eq!(j.recovered_to, observed, "clean close loses nothing");
        assert!(j.consistent, "verdicts: {:?}", j.sessions_consistent);
        assert!(j.rpo_ok);

        // The oracle is not vacuous: an unsatisfiable lower bound
        // (claiming a session ran further than its whole stream) must
        // fail that session.
        let mut impossible = commits.clone();
        if let Some((_, counts)) = impossible.last_mut() {
            counts[0] = ops_per_session + 1;
        }
        let j2 = judge_serve_recovery(
            &path,
            seed,
            sessions,
            ops_per_session,
            key_space,
            1,
            &impossible,
        )
        .unwrap();
        assert!(
            !j2.sessions_consistent[0],
            "an unsatisfiable lower bound must fail"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// The same judge, but with the session streams running on real
    /// concurrent threads against the sharded write path — the
    /// interleaving is nondeterministic, group commits fire from
    /// whichever writer trips the cadence, and the hook's lower bounds
    /// must still let every session's recovered prefix be judged
    /// consistent.
    #[test]
    fn judgement_on_a_concurrently_written_serve_store() {
        let dir = std::env::temp_dir().join(format!("picl-serve-judge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("concurrent.store");
        let _ = std::fs::remove_file(&path);
        let (seed, sessions, ops_per_session, key_space) = (33u64, 4usize, 120u64, 12u64);
        let cfg = EngineConfig::default();
        type CommitLog = Vec<(u64, Vec<u64>)>;
        let commits: Arc<Mutex<CommitLog>> = Arc::new(Mutex::new(Vec::new()));
        {
            let g = Geometry {
                lines: cfg.lines,
                log_blocks: cfg.log_blocks,
            };
            let medium = FileMedium::open(&path, g.total_len()).unwrap();
            let (mut kv, _) =
                ServeKv::open(Arc::new(medium), cfg.clone(), Telemetry::off(), 7, sessions)
                    .unwrap();
            let sink = Arc::clone(&commits);
            kv.set_commit_hook(Box::new(move |eid, counts| {
                sink.lock().unwrap().push((eid, counts.to_vec()));
            }));
            std::thread::scope(|s| {
                for sid in 0..sessions {
                    let kv = &kv;
                    s.spawn(move || {
                        for op in session_ops(seed, sid, ops_per_session, key_space) {
                            match &op {
                                Op::Put(k, v) => kv.put(sid, k, v).unwrap(),
                                Op::Delete(k) => {
                                    kv.delete(sid, k).unwrap();
                                }
                                Op::Get(k) => {
                                    kv.get(sid, k).unwrap();
                                }
                            }
                        }
                    });
                }
            });
            kv.commit().unwrap();
            kv.close().unwrap();
        }
        let commits = commits.lock().unwrap().clone();
        assert!(!commits.is_empty(), "the run must cross epoch boundaries");
        for pair in commits.windows(2) {
            assert!(pair[0].0 < pair[1].0, "commit eids must be ordered");
            for (a, b) in pair[0].1.iter().zip(&pair[1].1) {
                assert!(a <= b, "a session's lower bound regressed");
            }
        }
        let j = judge_serve_recovery(
            &path,
            seed,
            sessions,
            ops_per_session,
            key_space,
            1,
            &commits,
        )
        .unwrap();
        assert!(j.consistent, "verdicts: {:?}", j.sessions_consistent);
        assert!(j.rpo_ok);
        let _ = std::fs::remove_file(&path);
    }
}
