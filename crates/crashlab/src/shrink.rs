//! The shrinker: binary-searches the minimal instruction budget that
//! still reproduces a consistency failure.
//!
//! Crash trials are monotone in a useful-enough way for bisection: a
//! scheme that loses data by instant `t` usually also loses it at many
//! earlier instants once the first uncommitted in-place write lands.
//! Bisection therefore finds *a* minimal failing instant in
//! `O(log budget)` trials. When the failure is not monotone the search
//! still ends at a verified-failing instant (never a passing one), just
//! not necessarily the global minimum — which is all a reproducer needs.

use crate::oracle::{TrialOutcome, TrialSpec};

/// A shrunk failure: the smallest crash instant bisection could verify.
#[derive(Debug, Clone)]
pub struct ShrunkFailure {
    /// The failing spec, crash instant minimized.
    pub spec: TrialSpec,
    /// The outcome at the minimized instant.
    pub outcome: TrialOutcome,
    /// Trials executed during the search (including the final verify).
    pub trials: usize,
}

impl ShrunkFailure {
    /// The one-line reproducer for the minimized failure.
    pub fn repro_command(&self) -> String {
        self.spec.repro_command()
    }
}

/// Minimizes the crash instant of a known-failing `spec`.
///
/// `spec` must already fail (the caller observed it); if it somehow
/// passes on re-execution the original spec and outcome are returned
/// unshrunk so the report never cites a non-reproducing line.
pub fn shrink_failure(spec: &TrialSpec, observed: TrialOutcome) -> ShrunkFailure {
    let fails = |s: &TrialSpec| {
        let outcome = s.execute();
        let failed = !outcome.passed(true);
        (failed, outcome)
    };

    let mut trials = 0usize;
    let mut best_at = spec.point.at();
    let mut best_outcome = observed;

    // Invariant: `best_at` fails. Search [lo, best_at) for a smaller
    // failing instant.
    let mut lo = 1u64;
    let mut hi = best_at;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let candidate = spec.with_crash_at(mid);
        trials += 1;
        let (failed, outcome) = fails(&candidate);
        if failed {
            best_at = mid;
            best_outcome = outcome;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }

    // Re-verify the final instant so the emitted reproducer is known-good
    // even if the failure region was non-contiguous.
    let final_spec = spec.with_crash_at(best_at);
    trials += 1;
    let (failed, outcome) = fails(&final_spec);
    if failed {
        ShrunkFailure {
            spec: final_spec,
            outcome,
            trials,
        }
    } else {
        ShrunkFailure {
            spec: *spec,
            outcome: best_outcome,
            trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::CrashPoint;
    use crate::scheme::LabScheme;
    use picl_sim::SchemeKind;
    use picl_trace::spec::SpecBenchmark;

    fn broken_spec(at: u64) -> TrialSpec {
        TrialSpec {
            scheme: LabScheme::BrokenNoUndo,
            bench: SpecBenchmark::Gcc,
            epoch_len: 25_000,
            acs_gap: 3,
            seed: 3,
            footprint_scale: 0.05,
            point: CrashPoint::MidEpoch { at },
        }
    }

    #[test]
    fn shrinks_broken_scheme_to_smaller_instant() {
        let spec = broken_spec(150_000);
        let observed = spec.execute();
        assert!(!observed.passed(true), "precondition: spec must fail");
        let shrunk = shrink_failure(&spec, observed);
        assert!(shrunk.spec.point.at() <= 150_000);
        assert!(!shrunk.outcome.passed(true), "shrunk instant must fail");
        assert!(shrunk.trials <= 20, "bisection budget: {}", shrunk.trials);
        assert!(shrunk.repro_command().contains("--crash-at"));
    }

    #[test]
    fn passing_spec_is_returned_unshrunk() {
        // A protected scheme never fails, so every probe passes and the
        // search walks lo up to the original instant; the final verify
        // then fails-to-fail and we fall back to the original spec.
        let spec = TrialSpec {
            scheme: LabScheme::Standard(SchemeKind::Picl),
            ..broken_spec(40_000)
        };
        let observed = spec.execute();
        let shrunk = shrink_failure(&spec, observed);
        assert_eq!(shrunk.spec.point.at(), 40_000);
    }
}
