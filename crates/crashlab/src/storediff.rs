//! The store-vs-simulator differential: one logical workload, two
//! implementations of the same protocol, epoch-level outcomes compared.
//!
//! `picl-store` executes PiCL in software; `picl-sim` models it as
//! hardware. Both emit the shared telemetry vocabulary, so the check is
//! direct: run a seeded KV workload through the store (recording which
//! slot line each operation touched), lower those accesses to a
//! single-core trace, run the simulated PiCL machine over it with the
//! epoch length matched op-for-instruction, and require that every
//! committed epoch logged undo entries for exactly the same set of lines
//! in both worlds.
//!
//! Alignment is exact by construction, not by luck: every trace event
//! accounts for [`INSTRUCTIONS_PER_OP`] instructions, the machine checks
//! the epoch budget after each event, and the budget is
//! `ops_per_epoch × INSTRUCTIONS_PER_OP` — so simulator epoch `N` spans
//! precisely the store's operations `(N-1)·ops_per_epoch .. N·ops_per_epoch`.

use std::collections::BTreeMap;
use std::sync::Arc;

use picl_sim::{Machine, SchemeKind};
use picl_store::layout::Geometry;
use picl_store::{generate, CountingMedium, EngineConfig, Kv, Op};
use picl_telemetry::{EventKind, Telemetry};
use picl_trace::event::ScriptedSource;
use picl_trace::{AccessKind, TraceEvent};
use picl_types::hash::FastSet;
use picl_types::{Address, SystemConfig, LINE_BYTES};

use crate::scheme::LabScheme;

/// Instructions each KV operation is worth in the lowered trace (one
/// memory access plus `INSTRUCTIONS_PER_OP - 1` of gap).
pub const INSTRUCTIONS_PER_OP: u64 = 10;

/// Core-private OS lines (epoch-boundary handler traffic) start here;
/// they exist only in the simulator and are excluded from the diff.
const OS_REGION_BASE_LINE: u64 = 1 << 39;

/// Parameters of one store-vs-sim differential run.
#[derive(Debug, Clone, Copy)]
pub struct StoreDiffSpec {
    /// Workload seed.
    pub seed: u64,
    /// Operation count (rounded down to a whole number of epochs for the
    /// comparison).
    pub ops: u64,
    /// Operations per epoch.
    pub ops_per_epoch: u64,
    /// Distinct keys in play.
    pub key_space: u64,
}

impl Default for StoreDiffSpec {
    fn default() -> Self {
        StoreDiffSpec {
            seed: 1,
            ops: 120,
            ops_per_epoch: 8,
            key_space: 12,
        }
    }
}

/// Epoch-by-epoch outcome of the differential.
#[derive(Debug, Clone)]
pub struct StoreDiffReport {
    /// Whole epochs compared.
    pub epochs_compared: u64,
    /// Epoch commits observed in the store's event stream.
    pub store_commits: u64,
    /// Epoch commits observed in the simulator's event stream.
    pub sim_commits: u64,
    /// Per-epoch divergences: `(epoch, lines only the store logged,
    /// lines only the simulator logged)`.
    pub mismatches: Vec<(u64, Vec<u64>, Vec<u64>)>,
}

impl StoreDiffReport {
    /// Whether every compared epoch agreed.
    pub fn matches(&self) -> bool {
        self.mismatches.is_empty() && self.epochs_compared > 0
    }
}

/// Groups undo-entry appends by their `valid_till` epoch, dropping
/// simulator-only OS-region lines.
fn dirty_sets(events: &[picl_telemetry::Event]) -> BTreeMap<u64, FastSet<u64>> {
    let mut sets: BTreeMap<u64, FastSet<u64>> = BTreeMap::new();
    for ev in events {
        if let EventKind::UndoEntryAppended {
            addr, valid_till, ..
        } = ev.kind
        {
            if addr.raw() < OS_REGION_BASE_LINE {
                sets.entry(valid_till.raw()).or_default().insert(addr.raw());
            }
        }
    }
    sets
}

fn commit_count(events: &[picl_telemetry::Event]) -> u64 {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::EpochCommit { .. }))
        .count() as u64
}

/// Runs the workload through `picl-store`, returning its telemetry
/// events and the per-op slot accesses.
fn run_store(
    spec: &StoreDiffSpec,
    ops: &[Op],
) -> (Vec<picl_telemetry::Event>, Vec<picl_store::Access>) {
    let cfg = EngineConfig::default();
    let geometry = Geometry {
        lines: cfg.lines,
        log_blocks: cfg.log_blocks,
    };
    let medium = Arc::new(CountingMedium::new(geometry.total_len()));
    let telemetry = Telemetry::new(0, 1 << 16);
    let (mut kv, _) = Kv::open(medium, cfg, telemetry.clone(), spec.ops_per_epoch)
        .expect("fresh in-memory store must open");
    kv.enable_access_log();
    for op in ops {
        picl_store::apply_to_store(&mut kv, op).expect("in-memory workload cannot fail");
    }
    let accesses = kv.take_access_log();
    kv.close().expect("clean close");
    (telemetry.snapshot().events, accesses)
}

/// Replays the store's access sequence through the simulated PiCL
/// machine, returning its telemetry events.
fn run_sim(spec: &StoreDiffSpec, accesses: &[picl_store::Access]) -> Vec<picl_telemetry::Event> {
    let events: Vec<TraceEvent> = accesses
        .iter()
        .map(|a| TraceEvent {
            gap_instructions: (INSTRUCTIONS_PER_OP - 1) as u32,
            kind: if a.write {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            addr: Address::new(u64::from(a.line) * LINE_BYTES),
        })
        .collect();
    let mut cfg = SystemConfig::paper_single_core();
    cfg.epoch.epoch_len_instructions = spec.ops_per_epoch * INSTRUCTIONS_PER_OP;
    cfg.cores = 1;
    cfg.validate().expect("differential config must be valid");
    let scheme = LabScheme::Standard(SchemeKind::Picl).build(&cfg);
    let source = ScriptedSource::new("storediff", events);
    let mut machine = Machine::new(cfg, scheme, vec![Box::new(source)], "storediff", false);
    let telemetry = machine.enable_telemetry(1 << 16, 5_000);
    machine.run_until(accesses.len() as u64 * INSTRUCTIONS_PER_OP);
    telemetry.snapshot().events
}

/// Runs the full differential: same seeded workload through the store
/// and the simulator, epoch-level undo outcomes diffed.
///
/// # Panics
///
/// Panics on degenerate parameters (`ops_per_epoch == 0`, workload too
/// short for a single epoch).
pub fn run_store_diff(spec: &StoreDiffSpec) -> StoreDiffReport {
    assert!(spec.ops_per_epoch > 0, "ops_per_epoch must be >= 1");
    let whole_ops = spec.ops - spec.ops % spec.ops_per_epoch;
    assert!(whole_ops > 0, "workload shorter than one epoch");
    let ops = generate(spec.seed, whole_ops, spec.key_space);
    let (store_events, accesses) = run_store(spec, &ops);
    assert_eq!(
        accesses.len(),
        ops.len(),
        "the access log records exactly one line per operation"
    );
    let sim_events = run_sim(spec, &accesses);

    let store_sets = dirty_sets(&store_events);
    let sim_sets = dirty_sets(&sim_events);
    let store_commits = commit_count(&store_events);
    let sim_commits = commit_count(&sim_events);
    let epochs_compared = store_commits.min(sim_commits);

    let mut mismatches = Vec::new();
    let empty = FastSet::default();
    for epoch in 1..=epochs_compared {
        let s = store_sets.get(&epoch).unwrap_or(&empty);
        let m = sim_sets.get(&epoch).unwrap_or(&empty);
        if s != m {
            let mut store_only: Vec<u64> = s.difference(m).copied().collect();
            let mut sim_only: Vec<u64> = m.difference(s).copied().collect();
            store_only.sort_unstable();
            sim_only.sort_unstable();
            mismatches.push((epoch, store_only, sim_only));
        }
    }
    StoreDiffReport {
        epochs_compared,
        store_commits,
        sim_commits,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_sim_agree_epoch_for_epoch() {
        let report = run_store_diff(&StoreDiffSpec::default());
        assert!(
            report.matches(),
            "epoch-level divergence: {:?}",
            report.mismatches
        );
        assert_eq!(report.store_commits, report.sim_commits);
        assert_eq!(report.epochs_compared, 120 / 8);
    }

    #[test]
    fn agreement_holds_across_seeds_and_epoch_lengths() {
        for (seed, ops, ope) in [(2, 60, 3), (9, 96, 12), (31, 50, 5)] {
            let report = run_store_diff(&StoreDiffSpec {
                seed,
                ops,
                ops_per_epoch: ope,
                key_space: 10,
            });
            assert!(
                report.matches(),
                "seed {seed} ope {ope}: {:?}",
                report.mismatches
            );
        }
    }

    #[test]
    fn diff_detects_a_perturbed_workload() {
        // Not vacuous: running the sim over a *shifted* access stream
        // must produce at least one epoch mismatch.
        let spec = StoreDiffSpec::default();
        let ops = generate(spec.seed, spec.ops, spec.key_space);
        let (store_events, mut accesses) = run_store(&spec, &ops);
        for a in accesses.iter_mut() {
            a.line += 1; // systematic skew: every access lands one line off
        }
        let sim_events = run_sim(&spec, &accesses);
        let store_sets = dirty_sets(&store_events);
        let sim_sets = dirty_sets(&sim_events);
        assert_ne!(store_sets, sim_sets, "skewed run should diverge");
    }
}
