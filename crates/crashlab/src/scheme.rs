//! The scheme axis of a campaign: every protected scheme, the unprotected
//! baseline as a negative control, and a deliberately sabotaged scheme
//! that validates the oracle itself.

use picl_cache::{
    BoundaryOutcome, ConsistencyScheme, EvictRoute, EvictionEvent, Hierarchy, RecoveryOutcome,
    SchemeStats, StoreDirective, StoreEvent,
};
use picl_nvm::Nvm;
use picl_sim::SchemeKind;
use picl_telemetry::Telemetry;
use picl_types::{Cycle, EpochId, LineAddr, SystemConfig};

/// A scheme a campaign can put under the crash gun.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabScheme {
    /// One of the six evaluated schemes.
    Standard(SchemeKind),
    /// FRM with its recovery pass sabotaged: undo entries are written
    /// during execution but *never applied* after the crash. Memory is
    /// left holding uncommitted in-place updates, so a sound oracle must
    /// flag every crash under write pressure. Exists to prove the
    /// campaign's consistency check is not vacuous.
    BrokenNoUndo,
}

impl LabScheme {
    /// The five protected schemes (what `--schemes all` means; `Ideal`
    /// is unprotected and only useful as a negative control).
    pub const PROTECTED: [LabScheme; 5] = [
        LabScheme::Standard(SchemeKind::Journaling),
        LabScheme::Standard(SchemeKind::Shadow),
        LabScheme::Standard(SchemeKind::Frm),
        LabScheme::Standard(SchemeKind::ThyNvm),
        LabScheme::Standard(SchemeKind::Picl),
    ];

    /// Instantiates the scheme for `cfg`.
    pub fn build(self, cfg: &SystemConfig) -> Box<dyn ConsistencyScheme + Send> {
        match self {
            LabScheme::Standard(kind) => kind.build(cfg),
            LabScheme::BrokenNoUndo => Box::new(NoUndoRecovery {
                inner: SchemeKind::Frm.build(cfg),
            }),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LabScheme::Standard(kind) => kind.name(),
            LabScheme::BrokenNoUndo => "broken-noundo",
        }
    }

    /// Whether a crash at any instant must recover exactly. False only for
    /// the unprotected baseline; the sabotaged scheme *claims* protection
    /// (it is FRM), so it is judged — and caught — under the protected
    /// contract.
    pub fn expects_consistency(self) -> bool {
        !matches!(self, LabScheme::Standard(SchemeKind::Ideal))
    }

    /// Parses a scheme name as given on the command line.
    pub fn parse(name: &str) -> Option<LabScheme> {
        if name.eq_ignore_ascii_case("broken-noundo") || name.eq_ignore_ascii_case("broken") {
            return Some(LabScheme::BrokenNoUndo);
        }
        SchemeKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
            .map(LabScheme::Standard)
    }
}

impl std::fmt::Display for LabScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// FRM with recovery sabotaged: delegates the entire execution path (undo
/// logging, stalls, commits) but skips undo application on crash, merely
/// *claiming* the inner scheme's persisted epoch.
struct NoUndoRecovery {
    inner: Box<dyn ConsistencyScheme + Send>,
}

impl ConsistencyScheme for NoUndoRecovery {
    fn name(&self) -> &'static str {
        "broken-noundo"
    }
    fn system_eid(&self) -> EpochId {
        self.inner.system_eid()
    }
    fn persisted_eid(&self) -> EpochId {
        self.inner.persisted_eid()
    }
    fn on_store(&mut self, ev: &StoreEvent, mem: &mut Nvm, now: Cycle) -> StoreDirective {
        self.inner.on_store(ev, mem, now)
    }
    fn on_dirty_eviction(&mut self, ev: &EvictionEvent, mem: &mut Nvm, now: Cycle) -> EvictRoute {
        self.inner.on_dirty_eviction(ev, mem, now)
    }
    fn forward_read(&mut self, addr: LineAddr, mem: &mut Nvm, now: Cycle) -> Option<(u64, Cycle)> {
        self.inner.forward_read(addr, mem, now)
    }
    fn wants_early_commit(&self) -> bool {
        self.inner.wants_early_commit()
    }
    fn on_epoch_boundary(
        &mut self,
        hier: &mut Hierarchy,
        mem: &mut Nvm,
        now: Cycle,
    ) -> BoundaryOutcome {
        self.inner.on_epoch_boundary(hier, mem, now)
    }
    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        // The sabotage is in recovery, not execution: the auditor must see
        // the inner scheme's honest event stream to certify the run phase.
        self.inner.attach_telemetry(telemetry);
    }
    fn crash_recover(&mut self, _mem: &mut Nvm, now: Cycle) -> RecoveryOutcome {
        // The sabotage: claim the checkpoint without patching memory.
        RecoveryOutcome {
            recovered_to: self.inner.persisted_eid(),
            entries_applied: 0,
            completed_at: now,
        }
    }
    fn stats(&self) -> SchemeStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_name() {
        for scheme in LabScheme::PROTECTED {
            assert_eq!(LabScheme::parse(scheme.name()), Some(scheme));
        }
        assert_eq!(LabScheme::parse("broken"), Some(LabScheme::BrokenNoUndo));
        assert_eq!(
            LabScheme::parse("ideal"),
            Some(LabScheme::Standard(SchemeKind::Ideal))
        );
        assert_eq!(LabScheme::parse("bogus"), None);
    }

    #[test]
    fn consistency_expectations() {
        for scheme in LabScheme::PROTECTED {
            assert!(scheme.expects_consistency(), "{scheme}");
        }
        assert!(
            LabScheme::BrokenNoUndo.expects_consistency(),
            "the sabotaged scheme must be judged under the protected contract"
        );
        assert!(!LabScheme::Standard(SchemeKind::Ideal).expects_consistency());
    }

    #[test]
    fn broken_scheme_builds_and_claims_without_patching() {
        use picl_types::config::NvmConfig;
        use picl_types::time::ClockDomain;

        let cfg = SystemConfig::paper_single_core();
        let mut scheme = LabScheme::BrokenNoUndo.build(&cfg);
        assert_eq!(scheme.name(), "broken-noundo");
        let mut mem = Nvm::new(NvmConfig::paper_nvm(), ClockDomain::from_mhz(2000));
        let before = mem.state().clone();
        let outcome = scheme.crash_recover(&mut mem, Cycle(10));
        assert_eq!(outcome.entries_applied, 0);
        assert!(before.diff(mem.state()).is_empty(), "memory was patched");
    }
}
