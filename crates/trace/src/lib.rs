//! Synthetic memory-trace generation.
//!
//! The paper profiles SPEC CPU2006 through Pin-based SimPoint traces. Those
//! binaries and traces are proprietary, so this crate substitutes
//! parameterized synthetic generators (see DESIGN.md §2): each of the 29
//! benchmarks named in the paper's figures is modeled by a
//! [`spec::Profile`] capturing the properties that drive the evaluation —
//! memory intensity, write fraction, footprint, and the mix of sequential /
//! hot-set / uniform-random accesses.
//!
//! * [`event`] — the trace vocabulary: [`TraceEvent`] and the object-safe
//!   [`TraceSource`] trait the simulator consumes.
//! * [`generators`] — reusable building blocks (streaming, strided,
//!   pointer-chase, hot/cold, phased).
//! * [`spec`] — the 29 SPEC2k6-like profiles and their generator.
//! * [`mixes`] — Table V's eight-program multiprogram mixes W0–W7.
//! * [`mod@file`] — a compact binary trace format for record/replay.
//!
//! # Example
//!
//! ```
//! use picl_trace::{spec::SpecBenchmark, TraceSource};
//!
//! let mut src = SpecBenchmark::Mcf.trace(42);
//! let ev = src.next_event();
//! assert!(ev.gap_instructions < 10_000);
//! ```

pub mod event;
pub mod file;
pub mod generators;
pub mod mixes;
pub mod spec;

pub use event::{AccessKind, EventBatch, TraceEvent, TraceSource};
