//! Trace recording and replay.
//!
//! The paper's methodology is trace-driven: workloads are captured once
//! and replayed deterministically. This module provides the equivalent
//! plumbing — a compact binary format for memory traces, so captured or
//! externally produced traces can be replayed through the simulator
//! instead of (or alongside) the synthetic generators.
//!
//! # Format (`PICLTRC1`)
//!
//! A 12-byte header — 8-byte magic `b"PICLTRC1"` and a little-endian `u32`
//! record count — followed by fixed 13-byte records:
//!
//! | bytes | field |
//! |---|---|
//! | 0..4 | gap_instructions, `u32` LE |
//! | 4 | kind: 0 = load, 1 = store |
//! | 5..13 | byte address, `u64` LE |
//!
//! # Example
//!
//! ```
//! use picl_trace::file::{record, RecordedTrace};
//! use picl_trace::spec::SpecBenchmark;
//! use picl_trace::TraceSource;
//!
//! let mut source = SpecBenchmark::Gcc.trace(1);
//! let bytes = record(&mut source, 100);
//! let mut replay = RecordedTrace::from_bytes(&bytes, "gcc").unwrap();
//! let first = replay.next_event();
//! assert!(first.gap_instructions < 100);
//! ```

use std::io::{self, Read, Write};

use picl_types::Address;

use crate::event::{AccessKind, TraceEvent, TraceSource};

/// File magic for version 1 of the format.
pub const MAGIC: &[u8; 8] = b"PICLTRC1";

/// Size of one record in bytes.
pub const RECORD_BYTES: usize = 13;

/// Captures `count` events from a source into the serialized format.
pub fn record(source: &mut dyn TraceSource, count: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + count as usize * RECORD_BYTES);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&count.to_le_bytes());
    for _ in 0..count {
        let ev = source.next_event();
        out.extend_from_slice(&ev.gap_instructions.to_le_bytes());
        out.push(match ev.kind {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
        });
        out.extend_from_slice(&ev.addr.raw().to_le_bytes());
    }
    out
}

/// Writes a captured trace to any writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut w: W, source: &mut dyn TraceSource, count: u32) -> io::Result<()> {
    w.write_all(&record(source, count))
}

/// A parse failure when loading a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The payload is shorter than the header's record count promises.
    Truncated {
        /// Records promised by the header.
        expected: u32,
        /// Records actually present.
        found: u32,
    },
    /// A record's kind byte was neither 0 nor 1.
    BadKind(u8),
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::BadMagic => write!(f, "not a PICLTRC1 trace file"),
            ParseTraceError::Truncated { expected, found } => {
                write!(
                    f,
                    "trace truncated: header promises {expected} records, found {found}"
                )
            }
            ParseTraceError::BadKind(k) => write!(f, "invalid access kind byte {k:#x}"),
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// A fully loaded trace that replays (cyclically) as a [`TraceSource`].
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    label: String,
    events: Vec<TraceEvent>,
    pos: usize,
}

impl RecordedTrace {
    /// Parses a serialized trace.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on a malformed payload.
    pub fn from_bytes(bytes: &[u8], label: impl Into<String>) -> Result<Self, ParseTraceError> {
        if bytes.len() < 12 || &bytes[..8] != MAGIC {
            return Err(ParseTraceError::BadMagic);
        }
        let expected = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let payload = &bytes[12..];
        let found = (payload.len() / RECORD_BYTES) as u32;
        if found < expected {
            return Err(ParseTraceError::Truncated { expected, found });
        }
        let mut events = Vec::with_capacity(expected as usize);
        for i in 0..expected as usize {
            let r = &payload[i * RECORD_BYTES..(i + 1) * RECORD_BYTES];
            let gap = u32::from_le_bytes(r[0..4].try_into().expect("4 bytes"));
            let kind = match r[4] {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                k => return Err(ParseTraceError::BadKind(k)),
            };
            let addr = u64::from_le_bytes(r[5..13].try_into().expect("8 bytes"));
            events.push(TraceEvent {
                gap_instructions: gap,
                kind,
                addr: Address::new(addr),
            });
        }
        if events.is_empty() {
            return Err(ParseTraceError::Truncated {
                expected: 1,
                found: 0,
            });
        }
        Ok(RecordedTrace {
            label: label.into(),
            events,
            pos: 0,
        })
    }

    /// Reads and parses a trace from any reader.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] wrapping either the I/O failure or the
    /// parse failure.
    pub fn from_reader<R: Read>(mut r: R, label: impl Into<String>) -> io::Result<Self> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes, label).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Number of recorded events (one replay cycle).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events (never true for parsed traces).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSource for RecordedTrace {
    fn next_event(&mut self) -> TraceEvent {
        let ev = self.events[self.pos];
        self.pos = (self.pos + 1) % self.events.len();
        ev
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBenchmark;

    #[test]
    fn round_trip_preserves_events() {
        let mut original = SpecBenchmark::Mcf.trace(9);
        let mut reference = SpecBenchmark::Mcf.trace(9);
        let bytes = record(&mut original, 500);
        let mut replay = RecordedTrace::from_bytes(&bytes, "mcf").unwrap();
        assert_eq!(replay.len(), 500);
        for i in 0..500 {
            assert_eq!(replay.next_event(), reference.next_event(), "record {i}");
        }
    }

    #[test]
    fn replay_cycles() {
        let mut src = SpecBenchmark::Gcc.trace(1);
        let bytes = record(&mut src, 3);
        let mut replay = RecordedTrace::from_bytes(&bytes, "gcc").unwrap();
        let first = replay.next_event();
        replay.next_event();
        replay.next_event();
        assert_eq!(replay.next_event(), first, "must wrap around");
        assert_eq!(replay.label(), "gcc");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = RecordedTrace::from_bytes(b"NOTATRACE...", "x").unwrap_err();
        assert_eq!(err, ParseTraceError::BadMagic);
        assert!(err.to_string().contains("PICLTRC1"));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut src = SpecBenchmark::Gcc.trace(1);
        let mut bytes = record(&mut src, 10);
        bytes.truncate(12 + 5 * RECORD_BYTES);
        let err = RecordedTrace::from_bytes(&bytes, "x").unwrap_err();
        assert_eq!(
            err,
            ParseTraceError::Truncated {
                expected: 10,
                found: 5
            }
        );
    }

    #[test]
    fn bad_kind_rejected() {
        let mut src = SpecBenchmark::Gcc.trace(1);
        let mut bytes = record(&mut src, 1);
        bytes[12 + 4] = 7; // corrupt the kind byte
        assert_eq!(
            RecordedTrace::from_bytes(&bytes, "x").unwrap_err(),
            ParseTraceError::BadKind(7)
        );
    }

    #[test]
    fn empty_trace_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(RecordedTrace::from_bytes(&bytes, "x").is_err());
    }

    #[test]
    fn io_round_trip() {
        let mut src = SpecBenchmark::Lbm.trace(4);
        let mut buf = Vec::new();
        write_trace(&mut buf, &mut src, 50).unwrap();
        let replay = RecordedTrace::from_reader(buf.as_slice(), "lbm").unwrap();
        assert_eq!(replay.len(), 50);
    }
}
