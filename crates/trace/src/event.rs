//! Trace events and the source abstraction.

use picl_types::Address;

/// Load or store, from the core's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load; the core stalls until data returns.
    Load,
    /// A store; absorbed by the store buffer, off the critical path
    /// (§IV-A: "stores are not on the critical path").
    Store,
}

/// One trace record: run `gap_instructions` non-memory instructions, then
/// perform one memory access.
///
/// A trace of such records plus a CPI-1 core model reproduces the paper's
/// trace-driven methodology (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Non-memory instructions retired before the access (CPI 1 each).
    pub gap_instructions: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Byte address accessed.
    pub addr: Address,
}

impl TraceEvent {
    /// Total instructions this event accounts for (the gap plus the memory
    /// instruction itself).
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap_instructions) + 1
    }

    /// Whether this event is a store.
    pub fn is_store(&self) -> bool {
        self.kind == AccessKind::Store
    }
}

/// A flat struct-of-arrays buffer of decoded trace events.
///
/// The simulator consumes events in batches: a source decodes a run of
/// events into one of these (see [`TraceSource::fill`]), and the machine
/// drains the parallel arrays with plain indexed loads instead of paying a
/// virtual `next_event` call per event. The arrays are parallel by index;
/// event `i` is (`gaps[i]`, `store_flags[i]`, `addrs[i]`).
#[derive(Debug, Clone, Default)]
pub struct EventBatch {
    gaps: Vec<u32>,
    store_flags: Vec<u8>,
    addrs: Vec<u64>,
}

impl EventBatch {
    /// Creates an empty batch with room for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        EventBatch {
            gaps: Vec::with_capacity(n),
            store_flags: Vec::with_capacity(n),
            addrs: Vec::with_capacity(n),
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// Whether the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    /// Drops all buffered events, keeping the allocations.
    pub fn clear(&mut self) {
        self.gaps.clear();
        self.store_flags.clear();
        self.addrs.clear();
    }

    /// Appends one event.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        self.gaps.push(ev.gap_instructions);
        self.store_flags.push(ev.is_store() as u8);
        self.addrs.push(ev.addr.raw());
    }

    /// The gap (non-memory instructions) of event `i`.
    #[inline]
    pub fn gap(&self, i: usize) -> u32 {
        self.gaps[i]
    }

    /// Whether event `i` is a store.
    #[inline]
    pub fn is_store(&self, i: usize) -> bool {
        self.store_flags[i] != 0
    }

    /// The byte address of event `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> Address {
        Address::new(self.addrs[i])
    }

    /// Reconstructs event `i` as a [`TraceEvent`].
    #[inline]
    pub fn get(&self, i: usize) -> TraceEvent {
        TraceEvent {
            gap_instructions: self.gaps[i],
            kind: if self.store_flags[i] != 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            addr: Address::new(self.addrs[i]),
        }
    }
}

/// An endless, deterministic stream of trace events.
///
/// Object-safe so the simulator can run heterogeneous workload mixes and so
/// applications can drive the simulator with custom scripted workloads (see
/// the `crash_recovery` example).
pub trait TraceSource {
    /// Produces the next event. Sources are infinite; the simulator decides
    /// when a run ends (instruction budget).
    fn next_event(&mut self) -> TraceEvent;

    /// A short human-readable label for reports.
    fn label(&self) -> &str;

    /// Decodes the next `n` events into `batch`, replacing its contents.
    ///
    /// The default body loops over [`next_event`](Self::next_event); because
    /// it is monomorphized per implementing type, the inner calls dispatch
    /// statically even when the source itself is held as `dyn TraceSource`,
    /// so a batched caller pays one virtual call per `n` events rather than
    /// per event.
    fn fill(&mut self, batch: &mut EventBatch, n: usize) {
        batch.clear();
        for _ in 0..n {
            batch.push(self.next_event());
        }
    }
}

/// A scripted, finite-then-repeating source built from an explicit event
/// list; mainly for tests and examples.
#[derive(Debug, Clone)]
pub struct ScriptedSource {
    label: String,
    events: Vec<TraceEvent>,
    pos: usize,
}

impl ScriptedSource {
    /// Creates a source that cycles through `events` forever.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty.
    pub fn new(label: impl Into<String>, events: Vec<TraceEvent>) -> Self {
        assert!(
            !events.is_empty(),
            "scripted source needs at least one event"
        );
        ScriptedSource {
            label: label.into(),
            events,
            pos: 0,
        }
    }
}

impl TraceSource for ScriptedSource {
    fn next_event(&mut self) -> TraceEvent {
        let ev = self.events[self.pos];
        self.pos = (self.pos + 1) % self.events.len();
        ev
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(gap: u32, kind: AccessKind, addr: u64) -> TraceEvent {
        TraceEvent {
            gap_instructions: gap,
            kind,
            addr: Address::new(addr),
        }
    }

    #[test]
    fn event_instruction_accounting() {
        assert_eq!(ev(9, AccessKind::Load, 0).instructions(), 10);
        assert_eq!(ev(0, AccessKind::Store, 0).instructions(), 1);
        assert!(ev(0, AccessKind::Store, 0).is_store());
        assert!(!ev(0, AccessKind::Load, 0).is_store());
    }

    #[test]
    fn scripted_source_cycles() {
        let mut s = ScriptedSource::new(
            "t",
            vec![ev(1, AccessKind::Load, 64), ev(2, AccessKind::Store, 128)],
        );
        assert_eq!(s.next_event().addr.raw(), 64);
        assert_eq!(s.next_event().addr.raw(), 128);
        assert_eq!(s.next_event().addr.raw(), 64);
        assert_eq!(s.label(), "t");
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn empty_script_panics() {
        let _ = ScriptedSource::new("t", vec![]);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn TraceSource> =
            Box::new(ScriptedSource::new("x", vec![ev(0, AccessKind::Load, 0)]));
        assert_eq!(boxed.next_event().gap_instructions, 0);
    }

    #[test]
    fn fill_matches_next_event_stream() {
        let events = vec![
            ev(1, AccessKind::Load, 64),
            ev(2, AccessKind::Store, 128),
            ev(0, AccessKind::Load, 192),
        ];
        let mut a = ScriptedSource::new("a", events.clone());
        let mut b: Box<dyn TraceSource> = Box::new(ScriptedSource::new("b", events));
        let mut batch = EventBatch::with_capacity(8);
        b.fill(&mut batch, 8);
        assert_eq!(batch.len(), 8);
        for i in 0..8 {
            let want = a.next_event();
            assert_eq!(batch.get(i), want);
            assert_eq!(batch.gap(i), want.gap_instructions);
            assert_eq!(batch.is_store(i), want.is_store());
            assert_eq!(batch.addr(i), want.addr);
        }
        // Refill replaces, reusing allocations.
        b.fill(&mut batch, 2);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        batch.clear();
        assert!(batch.is_empty());
    }
}
