//! Trace events and the source abstraction.

use picl_types::Address;

/// Load or store, from the core's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load; the core stalls until data returns.
    Load,
    /// A store; absorbed by the store buffer, off the critical path
    /// (§IV-A: "stores are not on the critical path").
    Store,
}

/// One trace record: run `gap_instructions` non-memory instructions, then
/// perform one memory access.
///
/// A trace of such records plus a CPI-1 core model reproduces the paper's
/// trace-driven methodology (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Non-memory instructions retired before the access (CPI 1 each).
    pub gap_instructions: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Byte address accessed.
    pub addr: Address,
}

impl TraceEvent {
    /// Total instructions this event accounts for (the gap plus the memory
    /// instruction itself).
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap_instructions) + 1
    }

    /// Whether this event is a store.
    pub fn is_store(&self) -> bool {
        self.kind == AccessKind::Store
    }
}

/// An endless, deterministic stream of trace events.
///
/// Object-safe so the simulator can run heterogeneous workload mixes and so
/// applications can drive the simulator with custom scripted workloads (see
/// the `crash_recovery` example).
pub trait TraceSource {
    /// Produces the next event. Sources are infinite; the simulator decides
    /// when a run ends (instruction budget).
    fn next_event(&mut self) -> TraceEvent;

    /// A short human-readable label for reports.
    fn label(&self) -> &str;
}

/// A scripted, finite-then-repeating source built from an explicit event
/// list; mainly for tests and examples.
#[derive(Debug, Clone)]
pub struct ScriptedSource {
    label: String,
    events: Vec<TraceEvent>,
    pos: usize,
}

impl ScriptedSource {
    /// Creates a source that cycles through `events` forever.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty.
    pub fn new(label: impl Into<String>, events: Vec<TraceEvent>) -> Self {
        assert!(
            !events.is_empty(),
            "scripted source needs at least one event"
        );
        ScriptedSource {
            label: label.into(),
            events,
            pos: 0,
        }
    }
}

impl TraceSource for ScriptedSource {
    fn next_event(&mut self) -> TraceEvent {
        let ev = self.events[self.pos];
        self.pos = (self.pos + 1) % self.events.len();
        ev
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(gap: u32, kind: AccessKind, addr: u64) -> TraceEvent {
        TraceEvent {
            gap_instructions: gap,
            kind,
            addr: Address::new(addr),
        }
    }

    #[test]
    fn event_instruction_accounting() {
        assert_eq!(ev(9, AccessKind::Load, 0).instructions(), 10);
        assert_eq!(ev(0, AccessKind::Store, 0).instructions(), 1);
        assert!(ev(0, AccessKind::Store, 0).is_store());
        assert!(!ev(0, AccessKind::Load, 0).is_store());
    }

    #[test]
    fn scripted_source_cycles() {
        let mut s = ScriptedSource::new(
            "t",
            vec![ev(1, AccessKind::Load, 64), ev(2, AccessKind::Store, 128)],
        );
        assert_eq!(s.next_event().addr.raw(), 64);
        assert_eq!(s.next_event().addr.raw(), 128);
        assert_eq!(s.next_event().addr.raw(), 64);
        assert_eq!(s.label(), "t");
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn empty_script_panics() {
        let _ = ScriptedSource::new("t", vec![]);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn TraceSource> =
            Box::new(ScriptedSource::new("x", vec![ev(0, AccessKind::Load, 0)]));
        assert_eq!(boxed.next_event().gap_instructions, 0);
    }
}
